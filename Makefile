# Development entry points. Everything runs from the repository root
# with src/ on the path; no installation required.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-fast test-fleet test-exec bench bench-tiny bench-cache bench-service bench-wire bench-fleet bench-exec bench-obs obs serve serve-fleet worker docs-check examples check

## tier-1 test suite (the gate every change must keep green)
test:
	$(PYTHON) -m pytest -x -q

## same, skipping simulation-heavy tests marked `slow`
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

## fleet harness only: ring/queue/sharded-cache/failure-storm tests
## (FLEET_SLOW=1 includes the `slow`-marked storm scenarios)
test-fleet:
	$(PYTHON) -m pytest -x -q tests/fleet $(if $(FLEET_SLOW),,-m "not slow")

## execution layer only: backend conformance, executor, recovery, YAML DSL
test-exec:
	$(PYTHON) -m pytest -x -q tests/exec tests/io/test_yamlflow.py tests/property/test_exec_properties.py

## regenerate BENCH_generation.json at full scale (idle machine!)
bench:
	$(PYTHON) benchmarks/run_all.py

## seconds-long benchmark smoke run (report shape only, numbers meaningless)
bench-tiny:
	$(PYTHON) benchmarks/run_all.py --tiny --output /tmp/bench_tiny.json

## profile-cache benchmark only: cold vs warm-disk vs in-memory on TPC-H
bench-cache:
	$(PYTHON) benchmarks/bench_profile_cache.py

## service benchmark only: N clients sharing a cache server vs N cold solo runs
bench-service:
	$(PYTHON) benchmarks/bench_service.py

## wire benchmark only: pooled keep-alive + compression vs per-request connections
bench-wire:
	$(PYTHON) benchmarks/bench_wire.py

## fleet benchmark only: C clients vs 1..4 cache shards (near-linear scaling)
bench-fleet:
	$(PYTHON) benchmarks/bench_fleet.py

## execution benchmark only: measured top-k calibration (spearman >= 0.6 gate)
bench-exec:
	$(PYTHON) -m pytest benchmarks/bench_execution.py -s -q

## observability benchmark only: metrics on vs off (<= 3% overhead gate)
bench-obs:
	$(PYTHON) -m pytest benchmarks/bench_obs.py -s -q

## fleet dashboard: scrape /metrics of running servers (OBS_URLS="http://...")
obs:
	$(PYTHON) tools/obs.py $(OBS_URLS)

## run the redesign service (persistent shared cache under .cache/profiles)
serve:
	$(PYTHON) tools/serve.py redesign --cache-dir .cache/profiles

## run a local fleet: 2 shards + job queue + 2 workers + front-end
serve-fleet:
	$(PYTHON) tools/serve.py fleet --shards 2 --fleet-workers 2 --queue .fleet/jobs.sqlite

## add one worker process to the local fleet's queue (WORKER_ARGS for cache URLs etc.)
worker:
	$(PYTHON) tools/worker.py --queue .fleet/jobs.sqlite $(WORKER_ARGS)

## intra-doc links + every ProcessingConfiguration knob documented
docs-check:
	$(PYTHON) tools/docs_check.py

## run every example script end-to-end (regenerates examples/data/ first)
examples:
	$(PYTHON) examples/generate_data.py
	@set -e; for f in examples/*.py; do \
		echo "== $$f"; $(PYTHON) $$f > /dev/null; \
	done

## everything a PR must pass
check: docs-check test
