# Development entry points. Everything runs from the repository root
# with src/ on the path; no installation required.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-fast bench bench-tiny bench-cache bench-service bench-wire serve docs-check examples check

## tier-1 test suite (the gate every change must keep green)
test:
	$(PYTHON) -m pytest -x -q

## same, skipping simulation-heavy tests marked `slow`
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

## regenerate BENCH_generation.json at full scale (idle machine!)
bench:
	$(PYTHON) benchmarks/run_all.py

## seconds-long benchmark smoke run (report shape only, numbers meaningless)
bench-tiny:
	$(PYTHON) benchmarks/run_all.py --tiny --output /tmp/bench_tiny.json

## profile-cache benchmark only: cold vs warm-disk vs in-memory on TPC-H
bench-cache:
	$(PYTHON) benchmarks/bench_profile_cache.py

## service benchmark only: N clients sharing a cache server vs N cold solo runs
bench-service:
	$(PYTHON) benchmarks/bench_service.py

## wire benchmark only: pooled keep-alive + compression vs per-request connections
bench-wire:
	$(PYTHON) benchmarks/bench_wire.py

## run the redesign service (persistent shared cache under .cache/profiles)
serve:
	$(PYTHON) tools/serve.py redesign --cache-dir .cache/profiles

## intra-doc links + every ProcessingConfiguration knob documented
docs-check:
	$(PYTHON) tools/docs_check.py

## run every example script end-to-end (regenerates examples/data/ first)
examples:
	$(PYTHON) examples/generate_data.py
	@set -e; for f in examples/*.py; do \
		echo "== $$f"; $(PYTHON) $$f > /dev/null; \
	done

## everything a PR must pass
check: docs-check test
