#!/usr/bin/env python
"""Execute an ETL flow document from the command line.

Loads a flow from the YAML DSL (``.yaml``/``.yml``, see
``docs/execution.md``) or the native JSON interchange format (``.json``),
compiles it for one of the interchangeable dataframe backends and runs
it on deterministic sampled source data, printing the per-node execution
report::

    PYTHONPATH=src python tools/run_flow.py examples/flow.yaml
    PYTHONPATH=src python tools/run_flow.py flow.json --backend pandas --json

Node failures route through the recovery policy instead of aborting the
run: ``--on-exhaustion skip`` drops the failing branch, ``dead_letter``
records it in the report, and the default ``raise`` stops with a
non-zero exit code.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.exec import (  # noqa: E402
    EXECUTOR_BACKENDS,
    EXHAUSTION_ROUTES,
    ExecutionError,
    FlowExecutor,
    RecoveryPolicy,
    available_backends,
)
from repro.io import load_flow_json, load_flow_yaml  # noqa: E402


def _load_flow(path: Path):
    if path.suffix.lower() in (".yaml", ".yml"):
        return load_flow_yaml(path)
    if path.suffix.lower() == ".json":
        return load_flow_json(path)
    raise ValueError(
        f"unsupported flow document {path.name!r} (use .yaml, .yml or .json)"
    )


def _render(report) -> str:
    lines = [
        f"flow {report.flow_name!r} on backend {report.backend!r}: "
        f"{report.rows_loaded} rows loaded in {report.elapsed_ms:.1f} ms"
    ]
    for run in report.node_runs:
        flags = []
        if run.attempts > 1:
            flags.append(f"attempts={run.attempts}")
        if run.savepoint_used:
            flags.append(f"savepoint={run.savepoint_used}")
        if run.error:
            flags.append(f"error={run.error}")
        suffix = ("  [" + ", ".join(flags) + "]") if flags else ""
        lines.append(
            f"  {run.op_id:28s} {run.status:11s} "
            f"{run.rows_in:6d} -> {run.rows_out:6d} rows{suffix}"
        )
    if report.dead_letters:
        lines.append(f"dead letters: {sorted(report.dead_letters)}")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("flow", type=Path, help="flow document (.yaml/.yml/.json)")
    parser.add_argument(
        "--backend",
        default="local",
        choices=EXECUTOR_BACKENDS,
        help="dataframe backend (default: local; pandas/polars need the "
        "matching extra installed)",
    )
    parser.add_argument(
        "--data-seed", type=int, default=7, help="source sampling seed (default: 7)"
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retries per checkpointed node before the exhaustion route (default: 2)",
    )
    parser.add_argument(
        "--on-exhaustion",
        default="raise",
        choices=EXHAUSTION_ROUTES,
        help="what to do when retries run out (default: raise)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )
    args = parser.parse_args(argv)

    availability = available_backends()
    if not availability.get(args.backend, False):
        installed = sorted(name for name, ok in availability.items() if ok)
        parser.error(
            f"backend {args.backend!r} is not installed in this environment "
            f"(available: {', '.join(installed)})"
        )

    try:
        flow = _load_flow(args.flow)
    except (OSError, ValueError) as exc:
        parser.error(str(exc))

    executor = FlowExecutor(
        backend=args.backend,
        policy=RecoveryPolicy(
            max_retries=args.max_retries, on_exhaustion=args.on_exhaustion
        ),
        data_seed=args.data_seed,
    )
    try:
        report = executor.execute(flow)
    except ExecutionError as exc:
        print(f"execution failed: {exc}", file=sys.stderr)
        return 1

    print(json.dumps(report.to_dict(), indent=2) if args.json else _render(report))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
