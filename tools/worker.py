#!/usr/bin/env python
"""Run one redesign fleet worker process (``make worker``).

A worker drains the durable job queue that a queue-backed redesign
front-end (``tools/serve.py redesign --queue ...`` or the bundled
``tools/serve.py fleet``) fills::

    PYTHONPATH=src python tools/worker.py --queue .fleet/jobs.sqlite \
        --cache-urls http://shard0:8731 http://shard1:8731

Start as many as the hardware allows -- workers coordinate purely
through the queue's lease protocol (see ``docs/fleet.md``), so there is
nothing to configure between them.  Restarting a killed worker under
the same ``--worker-id`` is the crash-recovery story: the queue bumps
its restart counter, any job the dead incarnation held is re-leased
automatically once its lease expires, and the fresh process just keeps
draining.

``--cache-urls`` wires every planning session to the sharded profile
cache tier; ``--cache-url`` (singular) targets one cache server;
neither plans cold.
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - environment guard
    sys.path.insert(0, str(_SRC))

from repro.cache import build_profile_cache  # noqa: E402
from repro.fleet import DEFAULT_LEASE_TIMEOUT, DEFAULT_POLL_INTERVAL, run_worker  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--queue", required=True, help="path of the fleet's SQLite job-queue file"
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        help="stable name in the queue's lease/registry tables (default: random; "
        "reuse a name to restart a crashed worker)",
    )
    parser.add_argument(
        "--cache-urls",
        nargs="+",
        default=None,
        metavar="URL",
        help="shard cache-server URLs: plan against the sharded tier",
    )
    parser.add_argument(
        "--cache-url",
        default=None,
        help="single cache-server URL: plan against the http tier",
    )
    parser.add_argument(
        "--ring-replicas",
        type=int,
        default=None,
        help="virtual ring points per shard (must match the rest of the fleet)",
    )
    parser.add_argument(
        "--auth-token",
        default=None,
        help="bearer token of authenticated cache servers",
    )
    parser.add_argument(
        "--poll-interval",
        type=float,
        default=DEFAULT_POLL_INTERVAL,
        help="idle sleep between lease attempts, seconds",
    )
    parser.add_argument(
        "--lease-timeout",
        type=float,
        default=DEFAULT_LEASE_TIMEOUT,
        help="lease validity requested per job, seconds (heartbeats extend it)",
    )
    parser.add_argument("-v", "--verbose", action="store_true", help="debug logging")
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default=None,
        help="root log level for the repro.* loggers "
        "(default: info, or debug with --verbose)",
    )
    args = parser.parse_args(argv)
    if args.log_level is not None:
        level = getattr(logging, args.log_level.upper())
    else:
        level = logging.DEBUG if args.verbose else logging.INFO
    logging.basicConfig(
        level=level,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    if args.cache_urls and args.cache_url:
        parser.error("--cache-urls and --cache-url are mutually exclusive")

    def cache_factory():
        if args.cache_urls:
            return build_profile_cache(
                tier="sharded",
                urls=tuple(args.cache_urls),
                ring_replicas=args.ring_replicas,
                auth_token=args.auth_token,
            )
        if args.cache_url:
            return build_profile_cache(
                tier="http", url=args.cache_url, auth_token=args.auth_token
            )
        return None

    try:
        run_worker(
            args.queue,
            worker_id=args.worker_id,
            cache_factory=cache_factory,
            poll_interval=args.poll_interval,
            lease_timeout=args.lease_timeout,
        )
    except KeyboardInterrupt:
        print("worker shutting down")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
