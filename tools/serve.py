#!/usr/bin/env python
"""Run the repro service layer from the command line (``make serve``).

Two subcommands, one per server (see ``docs/service.md``):

``cache``
    Serve a profile-cache tier to a fleet of planners::

        PYTHONPATH=src python tools/serve.py cache --cache-dir .cache/profiles
        # clients: ProcessingConfiguration(cache_tier="http", cache_url="http://host:8731")

``redesign``
    Serve the full redesign loop (``POST /plans`` -> ranked
    alternatives), with every worker session sharing one cache tier::

        PYTHONPATH=src python tools/serve.py redesign --workers 4 --cache-dir .cache/profiles

    With ``--queue PATH`` the server plans nothing itself: submissions
    are validated, then enqueued into the durable SQLite job queue for
    external ``tools/worker.py`` processes to drain (the fleet
    front-end role, without the bundled shards and workers of
    ``fleet``).

``fleet``
    Launch a whole scale-out topology in one process (see
    ``docs/fleet.md``): N shard cache servers, the durable job queue, M
    pull-based planner workers wired to the sharded tier, and the
    queue-backed redesign front-end::

        PYTHONPATH=src python tools/serve.py fleet --shards 4 --fleet-workers 4 \
            --queue .fleet/jobs.sqlite

    Extra capacity can join from other processes: ``tools/worker.py
    --queue <same file> --cache-urls <printed shard URLs>``.

All bind ``127.0.0.1`` by default and run until interrupted.  ``--host``
sets the *bind* address: ``0.0.0.0`` listens on every interface (the
printed URL substitutes a connectable address -- the wildcard is a
binding, not a destination).  ``--auth-token TOKEN`` requires clients to
present ``Authorization: Bearer TOKEN`` (``GET /health`` stays open for
load-balancer probes); without it the protocol is unauthenticated.
Either way the wire is plain HTTP -- the token gates access but does not
encrypt; put a TLS terminator in front to cross untrusted networks (see
``docs/service.md``).
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - environment guard
    sys.path.insert(0, str(_SRC))

from repro.cache import DiskProfileCache, ProfileCache, TieredProfileCache  # noqa: E402
from repro.service import CacheServer, RedesignServer  # noqa: E402


def _backend(args: argparse.Namespace):
    """The cache tier behind either server, from the shared CLI knobs."""
    if args.cache_dir is None:
        return ProfileCache()
    disk = DiskProfileCache(args.cache_dir, max_bytes=args.max_bytes)
    if args.tiered:
        return TieredProfileCache(ProfileCache(), disk)
    return disk


def _add_backend_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: loopback; 0.0.0.0 = every interface)",
    )
    parser.add_argument(
        "--auth-token",
        default=None,
        help="require 'Authorization: Bearer TOKEN' on every request "
        "(GET /health excepted); clients set cache_auth_token / auth_token",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="back the store with a persistent DiskProfileCache rooted here "
        "(default: in-memory only)",
    )
    parser.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help="LRU size cap on the disk store (requires --cache-dir)",
    )
    parser.add_argument(
        "--tiered",
        action="store_true",
        help="put an in-memory LRU in front of the disk store (requires --cache-dir)",
    )


def _run_fleet(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """The ``fleet`` subcommand: shards + queue + workers + front-end."""
    from repro.cache import build_profile_cache
    from repro.fleet import FleetWorker, JobQueue

    if args.shards < 1:
        parser.error("--shards must be at least 1")
    if args.fleet_workers < 1:
        parser.error("--fleet-workers must be at least 1")

    def shard_backend(index: int):
        if args.cache_dir is None:
            return ProfileCache()
        # One store per shard: the ring partitions the key space, so
        # shards must not share a directory.
        shard_args = argparse.Namespace(**vars(args))
        shard_args.cache_dir = str(Path(args.cache_dir) / f"shard{index}")
        return _backend(shard_args)

    shards = []
    for index in range(args.shards):
        port = 0 if args.shard_port_base == 0 else args.shard_port_base + index
        shard = CacheServer(
            shard_backend(index),
            host=args.host,
            port=port,
            auth_token=args.auth_token,
        )
        shard.start()
        shards.append(shard)
    shard_urls = tuple(shard.url for shard in shards)

    queue_path = Path(args.queue)
    queue_path.parent.mkdir(parents=True, exist_ok=True)
    queue = JobQueue(queue_path)
    workers = []
    for index in range(args.fleet_workers):
        cache = build_profile_cache(
            tier="sharded",
            urls=shard_urls,
            ring_replicas=args.ring_replicas,
            auth_token=args.auth_token,
        )
        worker = FleetWorker(queue, worker_id=f"worker-{index}", cache=cache)
        worker.start()
        workers.append(worker)

    front = RedesignServer(
        queue=queue, host=args.host, port=args.port, auth_token=args.auth_token
    )

    logger = logging.getLogger("repro.service.fleet")
    logger.info(
        "fleet topology: front-end %s, %d shard(s) [%s], tier=%s, "
        "queue=%s, %d in-process worker(s)",
        front.url,
        len(shard_urls),
        ", ".join(shard_urls),
        "tiered" if args.tiered else ("disk" if args.cache_dir else "memory"),
        queue_path,
        args.fleet_workers,
    )
    print(f"fleet front-end listening on {front.url}")
    for index, url in enumerate(shard_urls):
        print(f"  shard {index}: {url}")
    print(f"  queue: {queue_path} ({args.fleet_workers} in-process workers)")
    print(f"  metrics: {front.url}/metrics (dashboard: tools/obs.py)")
    print(f'  try: RedesignClient("{front.url}").plan(flow)')
    print(
        f"  scale out: PYTHONPATH=src python tools/worker.py --queue {queue_path} "
        f"--cache-urls {' '.join(shard_urls)}"
    )
    try:
        front.serve_forever()
    except KeyboardInterrupt:
        print("shutting down fleet")
    finally:
        front.stop()
        for worker in workers:
            worker.stop()
        for worker in workers:
            if worker.cache is not None:
                worker.cache.close()
        for shard in shards:
            shard.stop()
        queue.close()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-v", "--verbose", action="store_true", help="log every request")
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default=None,
        help="root log level for the repro.* loggers "
        "(default: info, or debug with --verbose)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    cache = commands.add_parser("cache", help="serve a shared profile-cache tier")
    cache.add_argument("--port", type=int, default=8731, help="TCP port (0 = ephemeral)")
    _add_backend_arguments(cache)
    cache.add_argument(
        "--eviction-interval",
        type=float,
        default=None,
        help="sweep the size cap on a background thread every N seconds "
        "instead of on every publish (requires --cache-dir and --max-bytes)",
    )
    cache.add_argument(
        "--max-hot-entries",
        type=int,
        default=8192,
        help="LRU bound on the in-memory hot map of ready-to-send profile "
        "documents (0 = unbounded)",
    )

    redesign = commands.add_parser("redesign", help="serve the redesign loop")
    redesign.add_argument("--port", type=int, default=8732, help="TCP port (0 = ephemeral)")
    redesign.add_argument(
        "--workers", type=int, default=2, help="concurrent planning sessions"
    )
    redesign.add_argument(
        "--queue",
        default=None,
        help="serve as a queue-backed fleet front-end: enqueue plans into this "
        "durable SQLite job queue for external tools/worker.py processes "
        "instead of planning in-process (--workers is then unused)",
    )
    _add_backend_arguments(redesign)

    fleet = commands.add_parser(
        "fleet", help="launch shards + job queue + workers + front-end in one process"
    )
    fleet.add_argument("--port", type=int, default=8732, help="front-end TCP port (0 = ephemeral)")
    fleet.add_argument("--shards", type=int, default=2, help="number of shard cache servers")
    fleet.add_argument(
        "--shard-port-base",
        type=int,
        default=8741,
        help="shard i binds port base+i (0 = all ephemeral)",
    )
    fleet.add_argument(
        "--fleet-workers", type=int, default=2, help="number of in-process planner workers"
    )
    fleet.add_argument(
        "--queue",
        default=".fleet/jobs.sqlite",
        help="path of the durable SQLite job queue (created if missing)",
    )
    fleet.add_argument(
        "--ring-replicas",
        type=int,
        default=None,
        help="virtual ring points per shard (default: the library default)",
    )
    _add_backend_arguments(fleet)

    args = parser.parse_args(argv)
    if args.log_level is not None:
        level = getattr(logging, args.log_level.upper())
    else:
        level = logging.DEBUG if args.verbose else logging.INFO
    logging.basicConfig(
        level=level,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )
    if args.max_bytes is not None and args.cache_dir is None:
        parser.error("--max-bytes requires --cache-dir")
    if args.tiered and args.cache_dir is None:
        parser.error("--tiered requires --cache-dir")

    if args.host in ("0.0.0.0", "") and args.auth_token is None:
        logging.getLogger("repro.service").warning(
            "binding every interface (--host %s) without --auth-token: any "
            "host that can reach this port can read and write the store",
            args.host or '""',
        )

    if args.command == "fleet":
        return _run_fleet(args, parser)

    queue = None
    if args.command == "cache":
        if args.eviction_interval is not None and args.max_bytes is None:
            parser.error("--eviction-interval requires --max-bytes")
        server = CacheServer(
            _backend(args),
            host=args.host,
            port=args.port,
            auth_token=args.auth_token,
            max_hot_entries=args.max_hot_entries or None,
            eviction_interval=args.eviction_interval,
        )
        role = "profile-cache"
        hint = f'ProcessingConfiguration(cache_tier="http", cache_url="{server.url}")'
    elif args.queue is not None:
        from repro.fleet import JobQueue

        if args.cache_dir is not None:
            parser.error(
                "--queue and --cache-dir are mutually exclusive: a queue-backed "
                "front-end plans nothing, its workers own their cache tier "
                "(see tools/worker.py)"
            )
        queue_path = Path(args.queue)
        queue_path.parent.mkdir(parents=True, exist_ok=True)
        queue = JobQueue(queue_path)
        server = RedesignServer(
            queue=queue, host=args.host, port=args.port, auth_token=args.auth_token
        )
        role = "fleet front-end"
        hint = (
            f"drain with: PYTHONPATH=src python tools/worker.py --queue {queue_path}"
        )
    else:
        server = RedesignServer(
            cache=_backend(args),
            workers=args.workers,
            host=args.host,
            port=args.port,
            auth_token=args.auth_token,
        )
        role = "redesign"
        hint = f'RedesignClient("{server.url}").plan(flow)'

    bound = " (bound to every interface)" if args.host in ("0.0.0.0", "") else ""
    print(f"{role} service listening on {server.url}{bound}")
    print(f"  try: {hint}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
        server.stop()
    finally:
        if queue is not None:
            queue.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
