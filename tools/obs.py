#!/usr/bin/env python
"""Fleet observability dashboard (``make obs``).

Polls the ``GET /metrics`` endpoint of one or more repro servers --
cache shards, redesign servers, fleet front-ends -- and renders a
one-screen dashboard of the golden metrics (cache hit rate, p50/p99
plan latency, queue depth, worker liveness) plus any threshold
violations::

    PYTHONPATH=src python tools/obs.py http://127.0.0.1:8732 \
        http://127.0.0.1:8741 http://127.0.0.1:8742

``--json`` emits one combined JSON snapshot (for scripts and CI gates)
instead of the rendered screen; ``--interval N`` re-polls and redraws
every N seconds until interrupted.  Threshold flags (``--min-hit-rate``,
``--max-p99`` ...) tune the golden gates of
:func:`repro.obs.evaluate_golden`; the exit status is the number of
endpoints with violations (0 = all green), so the command doubles as a
health check.  ``/metrics`` is auth-exempt -- no token needed.

See ``docs/observability.md`` for the metric catalog and the runbook.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - environment guard
    sys.path.insert(0, str(_SRC))

from repro.obs import GoldenThresholds, evaluate_golden, golden_metrics  # noqa: E402
from repro.wire import PooledJSONClient  # noqa: E402


def scrape(url: str, timeout: float = 5.0) -> dict:
    """One ``GET /metrics`` payload, or ``{"error": ...}`` on failure."""
    client = PooledJSONClient(url, timeout, keep_alive=False)
    try:
        payload = client.request_json("GET", "/metrics")
        if not isinstance(payload, dict):
            return {"error": f"non-object /metrics payload: {type(payload).__name__}"}
        return payload
    except Exception as exc:  # noqa: BLE001 - a dashboard never crashes on a scrape
        return {"error": f"{type(exc).__name__}: {exc}"}
    finally:
        client.close()


def _format_value(name: str, value: object) -> str:
    if not isinstance(value, (int, float)):
        return str(value)
    if name.endswith("_seconds"):
        return f"{value * 1000.0:.1f}ms" if value < 1.0 else f"{value:.2f}s"
    if name.endswith("_rate"):
        return f"{value * 100.0:.1f}%"
    return f"{value:g}"


#: Golden signals in display order (missing ones are simply skipped).
_GOLDEN_ORDER = (
    "cache_hit_rate",
    "plan_count",
    "plan_p50_seconds",
    "plan_p99_seconds",
    "queue_depth",
    "workers_alive",
)


def render(url: str, payload: dict, thresholds: GoldenThresholds) -> tuple[str, int]:
    """One endpoint's dashboard block; returns (text, violation count)."""
    lines = []
    error = payload.get("error")
    if error is not None:
        lines.append(f"✗ {url}  UNREACHABLE  {error}")
        return "\n".join(lines), 1
    golden = golden_metrics(payload)
    violations = evaluate_golden(payload, thresholds)
    mark = "✗" if violations else "✓"
    kind = payload.get("server", "?")
    lines.append(f"{mark} {url}  [{kind}]")
    shown = [name for name in _GOLDEN_ORDER if name in golden]
    shown += sorted(name for name in golden if name not in _GOLDEN_ORDER)
    if shown:
        lines.append(
            "    "
            + "  ".join(f"{name}={_format_value(name, golden[name])}" for name in shown)
        )
    else:
        lines.append("    (no golden signals yet)")
    for violation in violations:
        lines.append(f"    VIOLATION: {violation.describe()}")
    return "\n".join(lines), len(violations)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("urls", nargs="+", metavar="URL", help="server base URLs to scrape")
    parser.add_argument("--timeout", type=float, default=5.0, help="per-scrape timeout, seconds")
    parser.add_argument(
        "--interval",
        type=float,
        default=None,
        help="re-poll and redraw every N seconds (default: render once and exit)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one combined JSON snapshot (url -> /metrics payload) and exit",
    )
    parser.add_argument("--min-hit-rate", type=float, default=None, help="golden gate: minimum cache hit rate (0..1)")
    parser.add_argument("--max-p50", type=float, default=None, help="golden gate: maximum p50 plan latency, seconds")
    parser.add_argument("--max-p99", type=float, default=None, help="golden gate: maximum p99 plan latency, seconds")
    parser.add_argument("--max-queue-depth", type=float, default=None, help="golden gate: maximum queue depth")
    parser.add_argument("--min-workers", type=float, default=None, help="golden gate: minimum live workers")
    args = parser.parse_args(argv)

    defaults = GoldenThresholds()
    thresholds = GoldenThresholds(
        min_cache_hit_rate=args.min_hit_rate if args.min_hit_rate is not None else defaults.min_cache_hit_rate,
        max_plan_p50_seconds=args.max_p50 if args.max_p50 is not None else defaults.max_plan_p50_seconds,
        max_plan_p99_seconds=args.max_p99 if args.max_p99 is not None else defaults.max_plan_p99_seconds,
        max_queue_depth=args.max_queue_depth if args.max_queue_depth is not None else defaults.max_queue_depth,
        min_workers_alive=args.min_workers if args.min_workers is not None else defaults.min_workers_alive,
    )

    if args.json:
        snapshot = {url: scrape(url, args.timeout) for url in args.urls}
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return sum(1 for payload in snapshot.values() if "error" in payload)

    while True:
        blocks = []
        bad = 0
        for url in args.urls:
            text, violations = render(url, scrape(url, args.timeout), thresholds)
            blocks.append(text)
            bad += 1 if violations else 0
        stamp = time.strftime("%H:%M:%S")
        screen = f"repro fleet dashboard  {stamp}  ({len(args.urls)} endpoint(s))\n\n"
        screen += "\n\n".join(blocks)
        if args.interval is None:
            print(screen)
            return bad
        # Clear and redraw for the watch loop.
        print("\033[2J\033[H" + screen, flush=True)
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return bad


if __name__ == "__main__":
    raise SystemExit(main())
