#!/usr/bin/env python
"""Documentation consistency checks (the ``make docs-check`` target).

Three failure modes the docs surface must never regress into:

1. **Broken intra-repository links.** Every relative link target in
   ``README.md`` and ``docs/*.md`` must exist on disk (external
   ``http(s)://`` links and pure ``#anchor`` fragments are out of
   scope).
2. **Undocumented planner knobs.** Every field of
   :class:`repro.core.configuration.ProcessingConfiguration` must be
   mentioned in ``docs/performance-tuning.md`` — adding a knob without
   writing down when to use it fails the build.
3. **Phantom knobs** (the inverse). Every ``### `name` …`` knob entry
   in the tuning guide must still be a ``ProcessingConfiguration``
   field — renaming or deleting a knob without updating its docs fails
   the build, so the guide can never describe configuration that no
   longer exists.

Exit status is the number of problems found (0 = clean), so the script
doubles as a pre-commit hook.  Run directly::

    PYTHONPATH=src python tools/docs_check.py
"""

from __future__ import annotations

import dataclasses
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
TUNING_DOC = REPO_ROOT / "docs" / "performance-tuning.md"

#: Markdown inline links: ``[text](target)``, ignoring images.
_LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")

#: Knob entries in the tuning guide: ``### `knob_name` — default …``.
_KNOB_HEADING_RE = re.compile(r"^###\s+`([A-Za-z_][A-Za-z0-9_]*)`", re.MULTILINE)


def _rel(path: Path) -> str:
    """Repo-relative display form (plain string for out-of-repo paths)."""
    try:
        return str(path.relative_to(REPO_ROOT))
    except ValueError:
        return str(path)


def broken_links(doc_files: list[Path] | None = None) -> list[str]:
    """Relative link targets that do not exist on disk."""
    problems: list[str] = []
    for doc in DOC_FILES if doc_files is None else doc_files:
        if not doc.exists():
            problems.append(f"{_rel(doc)}: file missing")
            continue
        for target in _LINK_RE.findall(doc.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:  # pure in-page anchor
                continue
            resolved = (doc.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(f"{_rel(doc)}: broken link -> {target}")
    return problems


def _configuration_fields() -> list[str]:
    """Field names of ``ProcessingConfiguration`` (the knob surface)."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.core.configuration import ProcessingConfiguration

    return [field.name for field in dataclasses.fields(ProcessingConfiguration)]


def undocumented_knobs(tuning_doc: Path | None = None) -> list[str]:
    """``ProcessingConfiguration`` fields absent from the tuning guide."""
    doc = TUNING_DOC if tuning_doc is None else tuning_doc
    if not doc.exists():
        return [f"{_rel(doc)}: file missing"]
    text = doc.read_text()
    problems = []
    for name in _configuration_fields():
        if not re.search(rf"`{re.escape(name)}`", text):
            problems.append(
                f"{_rel(doc)}: ProcessingConfiguration."
                f"{name} is not documented (add a `{name}` entry)"
            )
    return problems


def phantom_knobs(tuning_doc: Path | None = None) -> list[str]:
    """Knob headings in the tuning guide that are not configuration fields.

    The inverse of :func:`undocumented_knobs`: scans the ``### `name```
    entry headings and reports any that no longer exist on
    ``ProcessingConfiguration`` (renamed or removed knobs whose
    documentation was left behind).
    """
    doc = TUNING_DOC if tuning_doc is None else tuning_doc
    if not doc.exists():
        return [f"{_rel(doc)}: file missing"]
    fields = set(_configuration_fields())
    problems = []
    for name in _KNOB_HEADING_RE.findall(doc.read_text()):
        if name not in fields:
            problems.append(
                f"{_rel(doc)}: documented knob `{name}` is not a "
                f"ProcessingConfiguration field (remove or rename the entry)"
            )
    return problems


def main() -> int:
    problems = broken_links() + undocumented_knobs() + phantom_knobs()
    for problem in problems:
        print(f"docs-check: {problem}", file=sys.stderr)
    if not problems:
        print(
            f"docs-check: OK ({len(DOC_FILES)} documents, "
            f"{len(_configuration_fields())} knobs documented)"
        )
    return len(problems)


if __name__ == "__main__":
    raise SystemExit(main())
