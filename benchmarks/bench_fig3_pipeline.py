"""FIG3 -- the POIESIS architecture pipeline (Pattern Generation -> Pattern
Application -> Measures Estimation).

Fig. 3 shows the planner taking an initial ETL flow plus configurations
and producing ``ETL Flow 1 ... ETL Flow n``, each with its flow measures.
The benchmark runs each stage separately on the TPC-H flow, prints the
stage outputs (how many patterns were generated, how many alternatives
were produced, and the measures attached to the first few flows) and times
the full pipeline.
"""

import pytest

from repro.core import Planner
from repro.viz.tables import render_table

from conftest import fast_configuration, print_artifact


@pytest.fixture(scope="module")
def planner():
    return Planner(configuration=fast_configuration(pattern_budget=1, max_points_per_pattern=3))


def test_fig3_stage_pattern_generation(benchmark, planner, tpch):
    """Stage 1: generate flow-specific patterns (valid application points)."""
    counts = benchmark(planner.generator.application_point_counts, tpch)
    rows = [{"fcp": name, "valid_application_points": count} for name, count in counts.items()]
    print_artifact("Fig. 3 -- Pattern Generation (points per FCP on tpch_refresh)", render_table(rows))
    assert sum(counts.values()) > 10


def test_fig3_stage_pattern_application(benchmark, planner, tpch):
    """Stage 2: apply patterns in varying positions/combinations -> ETL Flow 1..n."""
    alternatives = benchmark(planner.generate_alternatives, tpch)
    assert alternatives
    assert alternatives[0].label == "ETL Flow 1"
    print_artifact(
        "Fig. 3 -- Pattern Application",
        f"alternative ETL flows produced: {len(alternatives)}\n"
        + "\n".join(f"  {alt.label}: {alt.describe()}" for alt in alternatives[:5]),
    )


def test_fig3_stage_measures_estimation(benchmark, planner, tpch):
    """Stage 3: estimate flow measures for the alternatives."""
    alternatives = planner.generate_alternatives(tpch)[:8]
    evaluated = benchmark(planner.evaluate_alternatives, alternatives)
    assert all(alt.profile is not None for alt in evaluated)
    rows = []
    for alt in evaluated[:5]:
        rows.append(
            {
                "flow": alt.label,
                "patterns": "+".join(alt.pattern_names),
                **{
                    characteristic.value: f"{alt.profile.score(characteristic):6.1f}"
                    for characteristic in planner.configuration.skyline_characteristics
                },
            }
        )
    print_artifact("Fig. 3 -- Measures Estimation (flow measures per alternative)", render_table(rows))


def test_fig3_full_pipeline(benchmark, planner, tpch):
    """The whole Fig. 3 pipeline: initial flow + configurations -> evaluated alternatives."""
    result = benchmark.pedantic(planner.plan, args=(tpch,), rounds=3, iterations=1)
    assert result.alternatives
    assert result.skyline_indices
    print_artifact(
        "Fig. 3 -- full pipeline summary",
        str(result.summary()),
    )
