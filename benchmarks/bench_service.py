"""Fleet-shared cache service: N concurrent clients vs. N cold solo runs.

The service subsystem's claim is about *aggregate* throughput: once one
client has paid for the simulation campaign, every other client sharing
the cache server gets the profiles for the price of an HTTP round-trip
-- no common filesystem required.  This benchmark measures that on the
TPC-H refresh workload with two arms:

* **solo** -- ``clients`` concurrent *processes* (the fleet), each an
  isolated planner with its own cold in-memory cache: the status quo
  for a fleet without the service, every machine pays the full
  simulation campaign.
* **service** -- the same fleet of ``clients`` concurrent processes,
  but every planner uses ``cache_tier="http"`` against one
  :class:`~repro.service.CacheServer` (fronting a disk store) that a
  single run warmed up first.

Both arms are timed wall-to-wall over the whole concurrent batch, so
the reported speedup is exactly what a fleet operator sees; the sum of
per-client times (the aggregate *compute* saved) is reported alongside.
Every arm must produce byte-identical alternatives, profiles and
skylines -- the tier-equivalence guarantee extends over the network.

Hit rates and request latency are read from the server's own ``GET
/metrics`` endpoint (the same snapshot ``tools/obs.py`` renders), not
from client-side objects: the benchmark observes the fleet exactly the
way an operator's dashboard does.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_service.py

or through pytest (``pytest benchmarks/bench_service.py -s``).
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - environment guard
    sys.path.insert(0, str(_SRC))

from repro.cache import DiskProfileCache  # noqa: E402
from repro.core import Planner, ProcessingConfiguration  # noqa: E402
from repro.service import CacheServer  # noqa: E402
from repro.wire import PooledJSONClient  # noqa: E402
from repro.workloads import tpch_refresh_flow  # noqa: E402


def scrape_metrics(url: str, timeout: float = 10.0) -> dict:
    """One ``GET /metrics`` payload from a live server."""
    client = PooledJSONClient(url, timeout, keep_alive=False)
    try:
        return client.request_json("GET", "/metrics")
    finally:
        client.close()


def hit_counts(payload: dict) -> tuple[int, int]:
    """``(cache.hits, cache.misses)`` counters of one ``/metrics`` payload."""
    counters = payload.get("metrics", {}).get("counters", {})
    return counters.get("cache.hits", 0), counters.get("cache.misses", 0)


def hit_rate_between(before: dict, after: dict) -> float:
    """The server-observed hit rate of the lookups between two scrapes."""
    hits = hit_counts(after)[0] - hit_counts(before)[0]
    misses = hit_counts(after)[1] - hit_counts(before)[1]
    return hits / (hits + misses) if hits + misses else 0.0


def _run_fleet_client(index: int, flow, configuration, queue) -> None:
    """One fleet member: plan once, report (index, seconds, fingerprint).

    Runs in a forked child process so the fleet members genuinely
    execute in parallel (separate interpreters, like separate machines);
    falls back to threads on platforms without ``fork``.
    """
    planner = Planner(configuration=configuration)
    t0 = time.perf_counter()
    result = planner.plan(flow)
    seconds = time.perf_counter() - t0
    queue.put((index, seconds, result.fingerprint()))


def _run_fleet(flow, configuration, clients: int) -> dict:
    """Run ``clients`` concurrent planners; wall-clock + per-client details."""
    try:
        ctx = multiprocessing.get_context("fork")
        make = lambda index, queue: ctx.Process(  # noqa: E731
            target=_run_fleet_client, args=(index, flow, configuration, queue)
        )
        queue = ctx.SimpleQueue()
    except ValueError:  # pragma: no cover - non-fork platform fallback
        import queue as queue_module

        queue = queue_module.SimpleQueue()
        make = lambda index, queue=queue: threading.Thread(  # noqa: E731
            target=_run_fleet_client, args=(index, flow, configuration, queue)
        )
    members = [make(index, queue) for index in range(clients)]
    t0 = time.perf_counter()
    for member in members:
        member.start()
    collected = [queue.get() for _ in range(clients)]
    wall = time.perf_counter() - t0
    for member in members:
        member.join()
    collected.sort()
    return {
        "wall_seconds": wall,
        "client_seconds": [seconds for _, seconds, _ in collected],
        "fingerprints": [fingerprint for _, _, fingerprint in collected],
    }


def run_service_bench(
    flow=None,
    *,
    scale: float = 0.05,
    pattern_budget: int = 2,
    max_points_per_pattern: int = 2,
    simulation_runs: int = 5,
    max_alternatives: int = 80,
    clients: int = 4,
    cache_dir: str | None = None,
) -> dict:
    """Time both fleet arms and return a comparison report.

    ``cache_dir`` defaults to a throwaway temporary directory (removed
    afterwards); pass an explicit one to inspect the server's store.
    """
    if clients < 2:
        raise ValueError("clients must be at least 2 (the benchmark is about sharing)")
    if flow is None:
        flow = tpch_refresh_flow(scale=scale)
    base = dict(
        pattern_budget=pattern_budget,
        max_points_per_pattern=max_points_per_pattern,
        simulation_runs=simulation_runs,
        max_alternatives=max_alternatives,
    )
    owns_dir = cache_dir is None
    cache_dir = cache_dir or tempfile.mkdtemp(prefix="repro-service-bench-")
    fingerprints: set[tuple] = set()

    try:
        # --- solo arm: a fleet of isolated cold planners ---------------
        solo = _run_fleet(flow, ProcessingConfiguration(**base), clients)
        fingerprints.update(solo["fingerprints"])

        # --- service arm: the same fleet sharing one warm cache server -
        with CacheServer(DiskProfileCache(cache_dir)) as server:
            http = ProcessingConfiguration(**base, cache_tier="http", cache_url=server.url)
            t0 = time.perf_counter()
            warm_result = Planner(configuration=http).plan(flow)
            warm_seconds = time.perf_counter() - t0
            fingerprints.add(warm_result.fingerprint())

            # Hit rate and latency come from the server's own /metrics
            # (what an operator's dashboard sees), not client internals.
            before = scrape_metrics(server.url)
            service = _run_fleet(flow, http, clients)
            after = scrape_metrics(server.url)
            fingerprints.update(service["fingerprints"])
            fleet_hit_rate = hit_rate_between(before, after)
            histograms = after.get("metrics", {}).get("histograms", {})
            request_seconds = histograms.get("service.request_seconds", {})
            server_golden = after.get("golden", {})
            server_entries = after.get("entries", 0)

        return {
            "workload": flow.name,
            "clients": clients,
            "pattern_budget": pattern_budget,
            "simulation_runs": simulation_runs,
            "alternatives": len(warm_result.alternatives),
            "solo_seconds": solo["client_seconds"],
            "solo_seconds_total": sum(solo["client_seconds"]),
            "solo_seconds_wall": solo["wall_seconds"],
            "warm_run_seconds": warm_seconds,
            "service_seconds": service["client_seconds"],
            "service_seconds_total": sum(service["client_seconds"]),
            "service_seconds_wall": service["wall_seconds"],
            "speedup_service_vs_solo": solo["wall_seconds"] / service["wall_seconds"],
            "compute_saved_vs_solo": sum(solo["client_seconds"])
            / max(sum(service["client_seconds"]), 1e-9),
            "fleet_hit_rate": fleet_hit_rate,
            "server_golden": server_golden,
            "request_seconds": request_seconds,
            "server_entries": server_entries,
            "identical_results": len(fingerprints) == 1,
        }
    finally:
        if owns_dir:
            shutil.rmtree(cache_dir, ignore_errors=True)


def _render_report(report: dict) -> str:
    clients = report["clients"]
    lines = [
        f"workload: {report['workload']}  "
        f"({report['alternatives']} alternatives, budget {report['pattern_budget']}, "
        f"{report['simulation_runs']} simulation runs, {clients} concurrent clients)",
        f"solo fleet (cold, isolated):    {report['solo_seconds_wall']:8.3f} s wall "
        f"({report['solo_seconds_total']:.3f} s summed compute)",
        f"service fleet (shared, warm):   {report['service_seconds_wall']:8.3f} s wall "
        f"({report['service_seconds_total']:.3f} s summed compute)",
        f"aggregate speedup service vs solo: {report['speedup_service_vs_solo']:.2f}x wall, "
        f"{report['compute_saved_vs_solo']:.2f}x compute   "
        f"identical results: {report['identical_results']}",
        f"from /metrics: fleet hit rate {report['fleet_hit_rate'] * 100.0:.0f}%   "
        f"server: {report['server_entries']} entries, request latency "
        f"p50 {report['request_seconds'].get('p50', 0.0) * 1000.0:.1f} ms / "
        f"p99 {report['request_seconds'].get('p99', 0.0) * 1000.0:.1f} ms "
        f"over {report['request_seconds'].get('count', 0)} requests",
    ]
    return "\n".join(lines)


def test_shared_cache_server_beats_cold_solo_runs():
    """4 warm concurrent clients must beat 4 cold solo runs >= 1.5x, identically."""
    report = run_service_bench()
    print()
    print("=" * 78)
    print("ARTIFACT: fleet-shared cache service, solo vs service arms (TPC-H)")
    print("=" * 78)
    print(_render_report(report))
    assert report["identical_results"], "the network tier changed the planning results"
    assert report["speedup_service_vs_solo"] >= 1.5, (
        f"service speedup {report['speedup_service_vs_solo']:.2f}x below the 1.5x bar"
    )
    # the warm fleet is served entirely by the server (observed via /metrics)
    assert report["fleet_hit_rate"] == 1.0
    assert report["request_seconds"].get("count", 0) > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--pattern-budget", type=int, default=2)
    parser.add_argument("--max-points-per-pattern", type=int, default=2)
    parser.add_argument("--simulation-runs", type=int, default=5)
    parser.add_argument("--max-alternatives", type=int, default=80)
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--cache-dir", default=None, help="persist the server store here (kept)")
    parser.add_argument("--json", action="store_true", help="emit the raw report as JSON")
    args = parser.parse_args(argv)
    report = run_service_bench(
        scale=args.scale,
        pattern_budget=args.pattern_budget,
        max_points_per_pattern=args.max_points_per_pattern,
        simulation_runs=args.simulation_runs,
        max_alternatives=args.max_alternatives,
        clients=args.clients,
        cache_dir=args.cache_dir,
    )
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(_render_report(report))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
