"""FIG5 -- relative change of measures for a selected flow vs. the initial flow.

Fig. 5 shows, for one selected alternative, a bar per quality
characteristic giving the relative change of its (composite) measure
against the initial flow; clicking a bar expands the composite into its
detailed metrics.  The benchmark selects the skyline flow with the best
performance score on the TPC-H workload, regenerates the bar-chart rows
and the drill-down, checks their consistency, and times the comparison
computation.
"""

import pytest

from repro.core import Planner
from repro.core.comparison import compare_profiles
from repro.quality.framework import QualityCharacteristic
from repro.viz.bars import build_bar_data, render_bar_chart, render_drilldown

from conftest import fast_configuration, print_artifact


@pytest.fixture(scope="module")
def planning_result(tpch):
    planner = Planner(
        configuration=fast_configuration(pattern_budget=2, max_points_per_pattern=2,
                                         simulation_runs=2)
    )
    return planner.plan(tpch)


@pytest.fixture(scope="module")
def selected(planning_result):
    return planning_result.best_for(QualityCharacteristic.PERFORMANCE)


def test_fig5_relative_change_bars(benchmark, planning_result, selected):
    """Regenerate the composite bar chart for the selected flow."""
    comparison = benchmark(
        compare_profiles, selected.profile, planning_result.baseline_profile
    )
    rows = build_bar_data(comparison)
    assert rows
    print_artifact(
        f"Fig. 5 -- relative change of measures ({selected.label}: {selected.describe()})",
        render_bar_chart(comparison),
    )
    # the flow selected for its performance score must improve performance
    assert comparison.change(QualityCharacteristic.PERFORMANCE) >= 0


def test_fig5_drilldown_expands_composites(benchmark, planning_result, selected):
    """Clicking a bar expands the composite measure into detailed metrics."""
    comparison = planning_result.comparison(selected)

    def drill():
        return {
            characteristic: comparison.expand(characteristic)
            for characteristic in comparison.characteristic_changes
        }

    details = benchmark(drill)
    body = []
    for characteristic in (QualityCharacteristic.PERFORMANCE, QualityCharacteristic.RELIABILITY):
        body.append(render_drilldown(comparison, characteristic))
        assert details[characteristic], characteristic
    print_artifact("Fig. 5 -- drill-down into detailed measures", "\n".join(body))

    # consistency: every detailed change belongs to the characteristic it is listed under
    for characteristic, changes in details.items():
        for change in changes:
            assert change.characteristic is characteristic


def test_fig5_comparisons_for_whole_skyline(benchmark, planning_result):
    """The measures view is available for every presented (skyline) flow."""
    def compare_all():
        return [planning_result.comparison(alt) for alt in planning_result.skyline]

    comparisons = benchmark(compare_all)
    assert len(comparisons) == len(planning_result.skyline)
    improved = sum(1 for c in comparisons if c.improved_characteristics())
    # every skyline flow improves at least one characteristic vs. the baseline
    assert improved == len(comparisons)
