"""FIG6 -- the palette of available Flow Component Patterns.

Fig. 6 lists the FCPs the palette currently includes together with the
quality attribute each is intended to improve.  The benchmark regenerates
that table from the pattern registry, verifies the five paper rows, and
times the enumeration of valid application points for the whole palette on
the TPC-DS flow (the operation behind "the palette of patterns to be
added to the flow").
"""

import pytest

from repro.patterns.registry import default_palette, figure6_palette
from repro.viz.tables import palette_table, render_table

from conftest import print_artifact

FIG6_EXPECTED = {
    "RemoveDuplicateEntries": "Data Quality",
    "FilterNullValues": "Data Quality",
    "CrosscheckSources": "Data Quality",
    "ParallelizeTask": "Performance",
    "AddCheckpoint": "Reliability",
}


def test_fig6_palette_table(benchmark, tpcds):
    """Regenerate the Fig. 6 table and time palette-wide point enumeration."""
    rows = palette_table(figure6_palette())
    regenerated = {row["fcp"]: row["related_quality_attribute"] for row in rows}
    assert regenerated == FIG6_EXPECTED

    extended = palette_table(default_palette())
    print_artifact(
        "Fig. 6 -- available FCPs (paper palette + graph-level extensions)",
        render_table(rows) + "\nExtended palette:\n" + render_table(extended),
    )

    palette = figure6_palette()

    def enumerate_points():
        return {pattern.name: len(pattern.find_application_points(tpcds)) for pattern in palette}

    counts = benchmark(enumerate_points)
    # every Fig. 6 pattern finds at least one valid application point on TPC-DS
    assert all(count >= 1 for count in counts.values()), counts


def test_fig6_custom_pattern_extension(benchmark):
    """Users can extend the palette with their own patterns (demo part P3)."""
    from repro.etl.operations import OperationKind
    from repro.patterns.custom import CustomPatternSpec
    from repro.quality.framework import QualityCharacteristic

    def extend():
        palette = default_palette()
        palette.register_custom(
            CustomPatternSpec(
                name="MaskSensitiveData",
                description="mask PII before loading",
                operation_kind=OperationKind.CLEANSE,
                improves=(QualityCharacteristic.SECURITY,),
            )
        )
        return palette

    palette = benchmark(extend)
    assert "MaskSensitiveData" in palette
    rows = palette_table(palette)
    assert any(row["fcp"] == "MaskSensitiveData" for row in rows)
