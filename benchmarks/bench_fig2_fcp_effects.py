"""FIG2 -- regenerate the Fig. 2 pattern-generation examples on the purchases flow.

Fig. 2 shows how different quality goals produce different Flow Component
Patterns on the ``S_Purchases`` flow: (a) improved performance through
horizontal partitioning / parallelism inside the computation-intensive
derive task, and (b) improved reliability through a savepoint (checkpoint)
added to the sub-process.  The benchmark applies each pattern at its best
heuristic placement, estimates the measures before and after, prints the
regenerated comparison rows and checks the expected directions:

* performance patterns lower the process cycle time;
* the reliability pattern raises the success rate and lowers the lost work,
  at a small cycle-time cost;
* data-quality patterns lower the defect rates of the loaded data.
"""

import pytest

from repro.patterns.data_quality import FilterNullValues
from repro.patterns.performance import HorizontalPartitionTask, ParallelizeTask
from repro.patterns.reliability import AddCheckpoint
from repro.quality.estimator import EstimationSettings, QualityEstimator
from repro.viz.tables import render_table

from conftest import print_artifact

_ESTIMATOR = QualityEstimator(settings=EstimationSettings(simulation_runs=5, seed=11))


def _best_application(pattern, flow):
    points = pattern.find_application_points(flow)
    assert points, f"{pattern.name} found no valid application point"
    best = max(points, key=lambda p: p.fitness)
    return pattern.apply(flow, best), best


def _row(label, profile):
    return {
        "flow": label,
        "cycle_time_ms": f"{profile.value('process_cycle_time_ms').value:10.1f}",
        "success_rate": f"{profile.value('success_rate').value:5.2f}",
        "lost_work_ms": f"{profile.value('mean_lost_work_ms').value:8.1f}",
        "null_rate": f"{profile.value('null_rate').value:6.4f}",
        "error_rate": f"{profile.value('error_rate').value:6.4f}",
    }


@pytest.fixture(scope="module")
def baseline_profile(purchases):
    return _ESTIMATOR.evaluate(purchases)


def test_fig2a_improved_performance(benchmark, purchases, baseline_profile):
    """Fig. 2a: parallelism / horizontal partitioning lower the cycle time."""
    parallel_flow, point = _best_application(ParallelizeTask(degree=4), purchases)
    partition_flow, _ = _best_application(HorizontalPartitionTask(partitions=2), purchases)

    parallel_profile = benchmark(_ESTIMATOR.evaluate, parallel_flow)
    partition_profile = _ESTIMATOR.evaluate(partition_flow)

    rows = [
        _row("initial S_Purchases", baseline_profile),
        _row("ParallelizeTask (Fig. 2a)", parallel_profile),
        _row("HorizontalPartitionTask (Fig. 2a)", partition_profile),
    ]
    print_artifact("Fig. 2a -- improved performance", render_table(rows))

    base_cycle = baseline_profile.value("process_cycle_time_ms").value
    assert parallel_profile.value("process_cycle_time_ms").value < base_cycle
    assert partition_profile.value("process_cycle_time_ms").value < base_cycle
    # the pattern was generated on the computation-intensive derive task
    assert "derive" in point.node_id


def test_fig2b_improved_reliability(benchmark, purchases, baseline_profile):
    """Fig. 2b: the savepoint raises reliability at a small performance cost."""
    checkpoint_flow, _ = _best_application(AddCheckpoint(), purchases)
    checkpoint_profile = benchmark(_ESTIMATOR.evaluate, checkpoint_flow)

    rows = [
        _row("initial S_Purchases", baseline_profile),
        _row("AddCheckpoint (Fig. 2b)", checkpoint_profile),
    ]
    print_artifact("Fig. 2b -- improved reliability", render_table(rows))

    assert checkpoint_profile.value("success_rate").value >= baseline_profile.value(
        "success_rate"
    ).value
    assert checkpoint_profile.value("mean_lost_work_ms").value <= baseline_profile.value(
        "mean_lost_work_ms"
    ).value
    assert checkpoint_profile.value("recovery_coverage").value > 0
    # persisting the savepoint costs a little extra cycle time (bounded)
    base_cycle = baseline_profile.value("process_cycle_time_ms").value
    assert checkpoint_profile.value("process_cycle_time_ms").value <= base_cycle * 1.5


def test_fig2_data_quality_goal(benchmark, purchases, baseline_profile):
    """The data-quality goal generates cleansing FCPs close to the sources."""
    cleansed_flow, point = _best_application(FilterNullValues(), purchases)
    cleansed_profile = benchmark(_ESTIMATOR.evaluate, cleansed_flow)

    rows = [
        _row("initial S_Purchases", baseline_profile),
        _row("FilterNullValues", cleansed_profile),
    ]
    print_artifact("Fig. 2 (data-quality goal) -- crosschecking / cleansing", render_table(rows))

    assert cleansed_profile.value("null_rate").value < baseline_profile.value("null_rate").value
    # placed on an edge leaving one of the two purchase sources
    assert purchases.operation(point.edge[0]).kind.is_source
