"""Execute-what-you-planned: measured top-k calibration of the simulator.

The planner ranks alternatives by *simulated* measures; this benchmark
closes the loop (see ``docs/execution.md``).  It plans the dirty-source
TPC-H calibration workload with the data-quality/reliability palette,
executes the top-k skyline alternatives on sampled data with the
``local`` dataframe backend, and scores the simulator with Spearman rank
correlation between the simulated ``process_cycle_time_ms`` ranking and
the measured wall-time ranking.

Two claims are asserted by the ``slow``-marked pytest entry:

* rank agreement: Spearman >= 0.6 over the executed top-k (the
  simulator orders real executions mostly like reality does), and
* plan identity: executing alternatives never mutates the planning
  result -- the plans stay byte-identical to the non-executing path
  (checked via :meth:`~repro.core.planner.PlanningResult.fingerprint`).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_execution.py

or through pytest (``pytest benchmarks/bench_execution.py -s``).  The
test suite smoke-runs :func:`run_execution_bench` at tiny scale via
``benchmarks/run_all.py``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - environment guard
    sys.path.insert(0, str(_SRC))

from repro.core.planner import Planner  # noqa: E402
from repro.exec import execute_top_k  # noqa: E402
from repro.workloads import calibration_configuration, calibration_flow  # noqa: E402

#: The agreement floor asserted on the full-scale run.
SPEARMAN_FLOOR = 0.6


def run_execution_bench(
    *,
    scale: float = 0.05,
    defect_boost: float = 8.0,
    pattern_budget: int = 2,
    config_seed: int = 11,
    data_seed: int = 7,
    k: int = 6,
    repeats: int = 3,
    backend: str = "local",
) -> dict:
    """Plan, execute the top-k skyline designs, and score the ranking."""
    flow = calibration_flow(scale=scale, defect_boost=defect_boost)
    planner = Planner(
        configuration=calibration_configuration(
            pattern_budget=pattern_budget, seed=config_seed
        )
    )

    planning_started = time.perf_counter()
    result = planner.plan(flow)
    planning_seconds = time.perf_counter() - planning_started
    fingerprint_before = result.fingerprint()

    execution_started = time.perf_counter()
    calibration = execute_top_k(
        result,
        backend=backend,
        k=k,
        repeats=repeats,
        data_seed=data_seed,
        pool="skyline",
    )
    execution_seconds = time.perf_counter() - execution_started

    return {
        "workload": flow.name,
        "flow_operations": flow.node_count,
        "flow_transitions": flow.edge_count,
        "scale": scale,
        "defect_boost": defect_boost,
        "pattern_budget": pattern_budget,
        "config_seed": config_seed,
        "alternatives": len(result.alternatives),
        "skyline_size": len(result.skyline_indices),
        "planning_seconds": planning_seconds,
        "execution_seconds": execution_seconds,
        "spearman": calibration.spearman,
        "identical_plans": result.fingerprint() == fingerprint_before,
        "calibration": calibration.to_dict(),
    }


def _render_report(report: dict) -> str:
    calibration = report["calibration"]
    lines = [
        f"workload: {report['workload']}  ({report['flow_operations']} operations, "
        f"defect_boost={report['defect_boost']}, budget={report['pattern_budget']})",
        f"planned {report['alternatives']} alternatives "
        f"({report['skyline_size']} on the skyline) in "
        f"{report['planning_seconds']:.2f} s; executed top-{len(calibration['runs'])} "
        f"x{calibration['repeats']} on backend {calibration['backend']!r} in "
        f"{report['execution_seconds']:.2f} s",
        f"{'alternative':<16} {'simulated':>12} {'measured':>12} "
        f"{'rows loaded':>12} {'recovered':>10}",
    ]
    for run in calibration["runs"]:
        lines.append(
            f"{run['label']:<16} {run['simulated']:>10.1f} ms {run['measured_ms']:>10.1f} ms "
            f"{run['rows_loaded']:>12} {run['recovered_nodes']:>10}"
        )
    lines.append(
        f"simulated ranking: {' > '.join(calibration['simulated_ranking'])}"
    )
    lines.append(
        f"measured ranking:  {' > '.join(calibration['measured_ranking'])}"
    )
    lines.append(
        f"spearman: {report['spearman']:.3f} (floor {SPEARMAN_FLOOR})   "
        f"identical plans: {report['identical_plans']}"
    )
    return "\n".join(lines)


@pytest.mark.slow
def test_execution_rank_correlation():
    """The simulator's top-k ranking must track measured wall time."""
    report = run_execution_bench()
    print()
    print("=" * 78)
    print("ARTIFACT: simulated vs measured top-k ranking (dirty-source TPC-H)")
    print("=" * 78)
    print(_render_report(report))
    assert report["identical_plans"], "executing the top-k mutated the planning result"
    assert report["spearman"] >= SPEARMAN_FLOOR, (
        f"simulated/measured rank agreement too low: spearman "
        f"{report['spearman']:.3f} < {SPEARMAN_FLOOR} "
        f"(simulated {report['calibration']['simulated_ranking']}, "
        f"measured {report['calibration']['measured_ranking']})"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--defect-boost", type=float, default=8.0)
    parser.add_argument("--pattern-budget", type=int, default=2)
    parser.add_argument("--config-seed", type=int, default=11)
    parser.add_argument("--data-seed", type=int, default=7)
    parser.add_argument("--k", type=int, default=6)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--backend", default="local")
    parser.add_argument("--json", action="store_true", help="emit the raw report as JSON")
    args = parser.parse_args(argv)
    report = run_execution_bench(
        scale=args.scale,
        defect_boost=args.defect_boost,
        pattern_budget=args.pattern_budget,
        config_seed=args.config_seed,
        data_seed=args.data_seed,
        k=args.k,
        repeats=args.repeats,
        backend=args.backend,
    )
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(_render_report(report))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
