"""DEMO4 -- the end-to-end demo walkthrough (parts P1-P3) plus model import.

The demonstration loads the logical representation of the TPC-H / TPC-DS
processes in xLM format, configures the processing parameters, generates
and evaluates the alternatives, lets the user inspect the skyline and the
measures, select a design, extend the palette with custom patterns, and
iterate.  This benchmark scripts that whole session (xLM and PDI
round-trips included) and times the import path and the full iteration.
"""

import pytest

from repro.core import Planner, ProcessingConfiguration, RedesignSession
from repro.etl.operations import OperationKind
from repro.io.pdi import flow_from_pdi, flow_to_pdi
from repro.io.xlm import flow_from_xlm, flow_to_xlm
from repro.patterns.custom import CustomPatternSpec
from repro.patterns.registry import default_palette
from repro.quality.framework import QualityCharacteristic
from repro.viz.report import planning_report

from conftest import fast_configuration, print_artifact


def test_demo4_xlm_import(benchmark, tpch):
    """P0: load the logical representation of the process in xLM format."""
    document = flow_to_xlm(tpch)
    imported = benchmark(flow_from_xlm, document)
    assert imported.structurally_equal(tpch)
    print_artifact(
        "DEMO4 -- xLM import of tpch_refresh",
        f"document size: {len(document)} characters, "
        f"operators: {imported.node_count}, transitions: {imported.edge_count}",
    )


def test_demo4_pdi_import(benchmark, tpcds):
    """P0 (variant): load the process from Pentaho Data Integration format."""
    document = flow_to_pdi(tpcds)
    imported = benchmark(flow_from_pdi, document)
    assert imported.structurally_equal(tpcds)


def test_demo4_full_session(benchmark, tpch):
    """P1+P2+P3: configure, plan, inspect, extend the palette, select, iterate."""

    def run_session():
        # P2: configure the palette (restrict patterns) and the policy.
        palette = default_palette()
        # P3: define a custom pattern and add it to the palette for future use.
        palette.register_custom(
            CustomPatternSpec(
                name="AuditTrail",
                description="persist an audit copy of the cleansed data",
                operation_kind=OperationKind.LOAD_FILE,
                improves=(QualityCharacteristic.RELIABILITY,),
                cost_per_tuple=0.003,
                prefer_near_sources=False,
            )
        )
        configuration = fast_configuration(
            pattern_budget=1,
            max_points_per_pattern=2,
            goal_priorities={
                QualityCharacteristic.PERFORMANCE: 1.0,
                QualityCharacteristic.RELIABILITY: 0.6,
                QualityCharacteristic.DATA_QUALITY: 0.4,
            },
        )
        # import the model as the demo does
        session = RedesignSession(
            flow_from_xlm(flow_to_xlm(tpch)),
            planner=Planner(palette=palette, configuration=configuration),
        )
        # two iteration cycles with selection of the best performance design
        session.iterate()
        session.select_best(QualityCharacteristic.PERFORMANCE)
        session.iterate()
        session.select_best(QualityCharacteristic.RELIABILITY)
        return session

    session = benchmark.pedantic(run_session, rounds=1, iterations=1)
    assert session.iteration_count == 2
    assert len(session.current_flow.applied_patterns) >= 2

    last_result = session.iterations[-1].result
    print_artifact(
        "DEMO4 -- second iteration report (after adopting the first selection)",
        planning_report(last_result, max_listed=5),
    )
    history = session.history()
    assert all(record["selected"] for record in history)
