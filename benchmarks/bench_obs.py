"""Instrumentation overhead: metrics on vs. metrics off, warm campaign.

The observability layer's contract is that it is effectively free when
disabled (``metrics_enabled=False`` costs one attribute check per
instrumentation site) and *cheap* when enabled -- the planner, the
evaluator and the cache tiers record counters and histogram samples on
their hot paths, and none of that may change what gets planned or
meaningfully slow it down.

This benchmark runs the same warm TPC-H re-planning campaign through
two planners -- one with metrics off (the default), one recording into
a live :class:`repro.obs.MetricsRegistry` -- interleaving the timed
runs so machine drift hits both arms equally, and reports:

* the best (min) warm re-plan time per arm and the overhead fraction
  ``(on - off) / off``;
* proof the instrumented arm actually recorded (plan-span counts in the
  registry match the number of plans);
* byte-identical plan fingerprints across both arms: observability
  must never change planning results.

The headline gate (asserted at benchmark scale): overhead <= 3%.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_obs.py

or through pytest (``pytest benchmarks/bench_obs.py -s``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - environment guard
    sys.path.insert(0, str(_SRC))

from repro.core import Planner, ProcessingConfiguration  # noqa: E402
from repro.obs import MetricsRegistry  # noqa: E402
from repro.workloads import tpch_refresh_flow  # noqa: E402

#: The acceptance bar: enabling metrics may cost at most this fraction
#: of warm re-plan time.
MAX_OVERHEAD_FRACTION = 0.03


def run_obs_bench(
    flow=None,
    *,
    scale: float = 0.05,
    pattern_budget: int = 2,
    max_points_per_pattern: int = 2,
    simulation_runs: int = 5,
    max_alternatives: int = 80,
    repeats: int = 5,
) -> dict:
    """Time warm re-plans with metrics off vs. on; return the comparison.

    Both planners first pay one untimed cold campaign (fills the profile
    cache), then ``repeats`` warm re-plans are timed per arm, strictly
    interleaved (off, on, off, on, ...) so drift cancels.  The headline
    overhead compares the *best* time per arm -- the steady-state cost,
    with scheduler noise suppressed.
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    if flow is None:
        flow = tpch_refresh_flow(scale=scale)
    base = dict(
        pattern_budget=pattern_budget,
        max_points_per_pattern=max_points_per_pattern,
        simulation_runs=simulation_runs,
        max_alternatives=max_alternatives,
    )
    registry = MetricsRegistry()
    arms = {
        "off": Planner(configuration=ProcessingConfiguration(**base)),
        "on": Planner(
            configuration=ProcessingConfiguration(
                **base, metrics_enabled=True, metrics_registry=registry
            )
        ),
    }

    fingerprints: set = set()
    plans = {name: 0 for name in arms}

    def plan_once(name: str) -> float:
        t0 = time.perf_counter()
        result = arms[name].plan(flow)
        seconds = time.perf_counter() - t0
        fingerprints.add(result.fingerprint())
        plans[name] += 1
        return seconds

    cold_seconds = {name: plan_once(name) for name in arms}
    timed: dict[str, list[float]] = {name: [] for name in arms}
    for _ in range(repeats):
        for name in arms:
            timed[name].append(plan_once(name))

    off_best = min(timed["off"])
    on_best = min(timed["on"])
    snapshot = registry.snapshot()
    plan_spans = snapshot["histograms"].get("planner.plan_seconds", {})
    return {
        "workload": flow.name,
        "pattern_budget": pattern_budget,
        "simulation_runs": simulation_runs,
        "repeats": repeats,
        "cold_seconds": cold_seconds,
        "off_seconds": timed["off"],
        "on_seconds": timed["on"],
        "off_best_seconds": off_best,
        "on_best_seconds": on_best,
        "overhead_fraction": (on_best - off_best) / off_best,
        "max_overhead_fraction": MAX_OVERHEAD_FRACTION,
        "identical_results": len(fingerprints) == 1,
        "plans_per_arm": plans["on"],
        "plan_spans_recorded": plan_spans.get("count", 0),
        "metric_points": {
            "counters": len(snapshot["counters"]),
            "gauges": len(snapshot["gauges"]),
            "histograms": len(snapshot["histograms"]),
        },
    }


def _render_report(report: dict) -> str:
    lines = [
        f"workload: {report['workload']}  "
        f"(budget {report['pattern_budget']}, "
        f"{report['simulation_runs']} simulation runs, "
        f"{report['repeats']} warm re-plans per arm, interleaved)",
        f"metrics off: best {report['off_best_seconds'] * 1000.0:8.1f} ms warm re-plan",
        f"metrics on:  best {report['on_best_seconds'] * 1000.0:8.1f} ms warm re-plan  "
        f"({report['plan_spans_recorded']} plan spans, "
        f"{report['metric_points']['histograms']} histograms, "
        f"{report['metric_points']['counters']} counters recorded)",
        f"instrumentation overhead: {report['overhead_fraction'] * 100.0:+.2f}% "
        f"(gate: <= {report['max_overhead_fraction'] * 100.0:.0f}%)   "
        f"identical results: {report['identical_results']}",
    ]
    return "\n".join(lines)


def test_metrics_overhead_within_gate():
    """Metrics-on must stay within 3% of metrics-off, byte-identically."""
    report = run_obs_bench()
    print()
    print("=" * 78)
    print("ARTIFACT: observability overhead, metrics on vs off (TPC-H, warm)")
    print("=" * 78)
    print(_render_report(report))
    assert report["identical_results"], "enabling metrics changed the planning results"
    assert report["plan_spans_recorded"] == report["plans_per_arm"], (
        "the instrumented arm did not record one plan span per plan"
    )
    assert report["overhead_fraction"] <= MAX_OVERHEAD_FRACTION, (
        f"instrumentation overhead {report['overhead_fraction'] * 100.0:.2f}% "
        f"exceeds the {MAX_OVERHEAD_FRACTION * 100.0:.0f}% gate"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--pattern-budget", type=int, default=2)
    parser.add_argument("--max-points-per-pattern", type=int, default=2)
    parser.add_argument("--simulation-runs", type=int, default=5)
    parser.add_argument("--max-alternatives", type=int, default=80)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--json", action="store_true", help="emit the raw report as JSON")
    args = parser.parse_args(argv)
    report = run_obs_bench(
        scale=args.scale,
        pattern_budget=args.pattern_budget,
        max_points_per_pattern=args.max_points_per_pattern,
        simulation_runs=args.simulation_runs,
        max_alternatives=args.max_alternatives,
        repeats=args.repeats,
    )
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(_render_report(report))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
