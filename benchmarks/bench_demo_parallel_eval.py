"""DEMO2 -- concurrent evaluation of many alternative flows.

Section 3: "the processing and analysis of the alternative process designs
is a process intensive task, mainly due to the large number of alternative
flows that have to be concurrently evaluated. Therefore, we employ Amazon
Cloud elastic infrastructures, by launching processing nodes that run in
the background and enable system responsiveness."  The reproduction
substitutes a local worker pool; this benchmark compares sequential and
parallel measure estimation over a batch of alternatives and reports the
throughput of each backend.
"""

import pytest

from repro.core import Planner
from repro.core.evaluator import ParallelEvaluator
from repro.quality.estimator import EstimationSettings, QualityEstimator
from repro.viz.tables import render_table

from conftest import fast_configuration, print_artifact


@pytest.fixture(scope="module")
def batch(tpch):
    """A batch of unevaluated alternatives from the TPC-H flow."""
    planner = Planner(configuration=fast_configuration(pattern_budget=2, max_points_per_pattern=2))
    alternatives = planner.generate_alternatives(tpch)
    assert len(alternatives) >= 60
    return alternatives[:60]


def _estimator() -> QualityEstimator:
    return QualityEstimator(settings=EstimationSettings(simulation_runs=1, seed=7))


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_demo2_evaluation_throughput(benchmark, batch, workers):
    """Throughput of measure estimation with 1, 2 and 4 workers."""
    evaluator = ParallelEvaluator(estimator=_estimator(), workers=workers, backend="thread")

    def evaluate():
        # fresh copies so that the profile assignment does not short-circuit work
        return evaluator.evaluate([type(alt)(flow=alt.flow) for alt in batch])

    evaluated = benchmark.pedantic(evaluate, rounds=2, iterations=1)
    assert all(alt.profile is not None for alt in evaluated)


def test_demo2_parallel_results_match_sequential(benchmark, batch):
    """Concurrent evaluation must not change the estimated measures."""
    sequential = ParallelEvaluator(estimator=_estimator(), workers=1).evaluate(
        [type(alt)(flow=alt.flow) for alt in batch[:20]]
    )
    parallel = ParallelEvaluator(estimator=_estimator(), workers=4).evaluate(
        [type(alt)(flow=alt.flow) for alt in batch[:20]]
    )

    def compare():
        mismatches = 0
        for s, p in zip(sequential, parallel):
            if s.profile.scores != p.profile.scores:
                mismatches += 1
        return mismatches

    assert benchmark(compare) == 0

    rows = [
        {
            "flow": s.flow.name[:48],
            "performance": f"{list(s.profile.scores.values())[0]:.2f}",
        }
        for s in sequential[:5]
    ]
    print_artifact("DEMO2 -- identical estimates from sequential and parallel evaluation", render_table(rows))
