"""Wire-path overhaul: pooled+compressed HTTP tier vs the per-request path.

The wire overhaul claims that a planning campaign against a *remote*
cache server is dominated by transport costs the old client paid per
request: a fresh TCP connection for every round-trip and uncompressed
multi-kilobyte profile documents.  This benchmark measures exactly that
delta on a warm campaign, with the network made honest by an
artificial-latency loopback proxy (loopback TCP is too fast to show
what a real link does):

* **per-request** -- the PR 5 wire behaviour, reproduced by
  ``HTTPProfileCache(pool=False, compression=False)``: one TCP
  connection per request (each paying the proxy's connect latency), raw
  JSON bodies (each paying the proxy's bandwidth throttle in full).
* **pooled** -- the overhauled default: per-thread persistent
  keep-alive connections (the connect latency is paid once per thread)
  and transparent gzip of large bodies (the throttle sees ~10x fewer
  bytes).

Both arms run the same warm campaign against the same server through
the same proxy and must produce byte-identical planning results -- the
tier-equivalence guarantee is not negotiable for a transport change.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_wire.py

or through pytest (``pytest benchmarks/bench_wire.py -s``).
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
import threading
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - environment guard
    sys.path.insert(0, str(_SRC))

from repro.cache import ProfileCache  # noqa: E402
from repro.cache.http import HTTPProfileCache  # noqa: E402
from repro.core import Planner, ProcessingConfiguration  # noqa: E402
from repro.service import CacheServer  # noqa: E402
from repro.workloads import tpch_refresh_flow  # noqa: E402


class LatencyProxy:
    """A TCP proxy that charges for connections and for bytes.

    Every *accepted* connection sleeps ``connect_latency`` seconds
    before the upstream dial (the handshake cost of a real link), and
    every chunk relayed in either direction sleeps ``len/bandwidth``
    (a symmetric bandwidth throttle, bytes per second).  That makes
    loopback behave like the network the wire overhaul is about: new
    connections are expensive, bytes are not free.
    """

    def __init__(
        self,
        target_host: str,
        target_port: int,
        connect_latency: float = 0.025,
        bandwidth: float | None = 4 * 1024 * 1024,
    ) -> None:
        self.target = (target_host, target_port)
        self.connect_latency = connect_latency
        self.bandwidth = bandwidth
        self.connections = 0
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(64)
        self.port = self._listener.getsockname()[1]
        self._running = False
        self._thread: threading.Thread | None = None
        self._open: set[socket.socket] = set()
        self._lock = threading.Lock()

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def start(self) -> "LatencyProxy":
        self._running = True
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._running = False
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            sockets, self._open = set(self._open), set()
        for sock in sockets:
            try:
                sock.close()
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=2.0)

    def __enter__(self) -> "LatencyProxy":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while self._running:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            self.connections += 1
            threading.Thread(target=self._serve, args=(client,), daemon=True).start()

    def _serve(self, client: socket.socket) -> None:
        time.sleep(self.connect_latency)
        upstream = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            upstream.connect(self.target)
            # The proxy must only charge the configured costs, not smuggle
            # Nagle/delayed-ACK stalls of its own into either hop.
            for sock in (client, upstream):
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            client.close()
            return
        with self._lock:
            self._open.update((client, upstream))
        threading.Thread(
            target=self._pump, args=(client, upstream), daemon=True
        ).start()
        threading.Thread(
            target=self._pump, args=(upstream, client), daemon=True
        ).start()

    def _pump(self, source: socket.socket, sink: socket.socket) -> None:
        try:
            while True:
                data = source.recv(65536)
                if not data:
                    break
                if self.bandwidth:
                    time.sleep(len(data) / self.bandwidth)
                sink.sendall(data)
        except OSError:
            pass
        finally:
            for sock in (source, sink):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass


def _client(url: str, *, pooled: bool) -> HTTPProfileCache:
    """One arm's cache client: the overhauled wire or the PR 5 wire."""
    return HTTPProfileCache(
        url,
        timeout=30.0,
        pool=pooled,
        compression=pooled,
        recovery_interval=None,
    )


def _timed_campaign(flow, configuration, cache: HTTPProfileCache) -> dict:
    planner = Planner(configuration=configuration, profile_cache=cache)
    t0 = time.perf_counter()
    result = planner.plan(flow)
    seconds = time.perf_counter() - t0
    assert not cache.degraded, "benchmark client degraded -- wire numbers are fiction"
    return {
        "seconds": seconds,
        "fingerprint": result.fingerprint(),
        "alternatives": len(result.alternatives),
        "wire": cache.wire_stats(),
        "hit_rate": cache.stats.as_dict().get("hit_rate", 0.0),
    }


def run_wire_bench(
    flow=None,
    *,
    scale: float = 0.05,
    pattern_budget: int = 2,
    max_points_per_pattern: int = 2,
    simulation_runs: int = 5,
    max_alternatives: int = 80,
    eval_batch_size: int = 4,
    connect_latency: float = 0.025,
    bandwidth: float | None = 4 * 1024 * 1024,
    repeats: int = 3,
) -> dict:
    """Time a warm campaign over both wire arms; return a comparison report.

    ``eval_batch_size`` deliberately defaults low: smaller evaluation
    windows mean more ``/get_many`` round-trips, which is the regime a
    real fleet (large flows, bounded memory) lives in.  ``repeats`` warm
    campaigns are timed per arm and the best run kept (the usual
    benchmarking discipline against scheduler noise).
    """
    if flow is None:
        flow = tpch_refresh_flow(scale=scale)
    configuration = ProcessingConfiguration(
        pattern_budget=pattern_budget,
        max_points_per_pattern=max_points_per_pattern,
        simulation_runs=simulation_runs,
        max_alternatives=max_alternatives,
        eval_batch_size=eval_batch_size,
    )
    reference = Planner(configuration=configuration).plan(flow)
    fingerprints = {reference.fingerprint()}

    with CacheServer(ProfileCache()) as server:
        with LatencyProxy(
            server.host, server.port, connect_latency, bandwidth
        ) as proxy:
            # Warm the server once (through the proxy, but untimed).  The
            # cold campaign owns the one genuinely large request -- the
            # end-of-stream /put publishing every profile under its full
            # multi-kilobyte key -- so its wire stats are where the
            # request compressor shows up.
            warm = _timed_campaign(flow, configuration, _client(proxy.url, pooled=True))
            fingerprints.add(warm["fingerprint"])

            arms: dict[str, dict] = {}
            for name, pooled in (("per_request", False), ("pooled", True)):
                runs = []
                for _ in range(repeats):
                    run = _timed_campaign(
                        flow, configuration, _client(proxy.url, pooled=pooled)
                    )
                    fingerprints.add(run["fingerprint"])
                    runs.append(run)
                best = min(runs, key=lambda run: run["seconds"])
                best["all_seconds"] = [run["seconds"] for run in runs]
                arms[name] = best

    return {
        "workload": flow.name,
        "alternatives": arms["pooled"]["alternatives"],
        "pattern_budget": pattern_budget,
        "simulation_runs": simulation_runs,
        "eval_batch_size": eval_batch_size,
        "connect_latency_ms": connect_latency * 1000.0,
        "bandwidth_bytes_per_s": bandwidth,
        "per_request_seconds": arms["per_request"]["seconds"],
        "per_request_all_seconds": arms["per_request"]["all_seconds"],
        "per_request_wire": arms["per_request"]["wire"],
        "pooled_seconds": arms["pooled"]["seconds"],
        "pooled_all_seconds": arms["pooled"]["all_seconds"],
        "pooled_wire": arms["pooled"]["wire"],
        "speedup_pooled_vs_per_request": arms["per_request"]["seconds"]
        / max(arms["pooled"]["seconds"], 1e-9),
        "cold_publish_wire": warm["wire"],
        "warm_hit_rate": arms["pooled"]["hit_rate"],
        "proxy_connections": proxy.connections,
        "identical_results": len(fingerprints) == 1,
    }


def _render_report(report: dict) -> str:
    per_request, pooled = report["per_request_wire"], report["pooled_wire"]
    bandwidth = report["bandwidth_bytes_per_s"]
    lines = [
        f"workload: {report['workload']}  "
        f"({report['alternatives']} alternatives, budget {report['pattern_budget']}, "
        f"{report['simulation_runs']} simulation runs, "
        f"eval window {report['eval_batch_size']})",
        f"proxy: {report['connect_latency_ms']:.0f} ms per connection, "
        + (
            f"{bandwidth / (1024 * 1024):.1f} MB/s throttle"
            if bandwidth
            else "unthrottled"
        ),
        f"per-request wire (PR 5):  {report['per_request_seconds']:8.3f} s warm campaign "
        f"({per_request['requests']} requests over "
        f"{per_request['connections_opened']} connections, uncompressed)",
        f"pooled+compressed wire:   {report['pooled_seconds']:8.3f} s warm campaign "
        f"({pooled['requests']} requests over "
        f"{pooled['connections_opened']} connections, "
        f"{pooled['compressed_requests']}/{pooled['compressed_responses']} "
        "compressed req/resp)",
        f"cold publish: {report['cold_publish_wire']['compressed_requests']} "
        f"compressed request(s) of {report['cold_publish_wire']['requests']} "
        "(the full-key /put is where bodies get big)",
        f"speedup pooled vs per-request: "
        f"{report['speedup_pooled_vs_per_request']:.2f}x   "
        f"warm hit rate: {report['warm_hit_rate'] * 100.0:.0f}%   "
        f"identical results: {report['identical_results']}",
    ]
    return "\n".join(lines)


def test_pooled_wire_beats_the_per_request_wire():
    """Pooled+compressed must beat the PR 5 wire >= 1.5x on a warm campaign."""
    report = run_wire_bench()
    print()
    print("=" * 78)
    print("ARTIFACT: wire-path overhaul, per-request vs pooled+compressed (TPC-H)")
    print("=" * 78)
    print(_render_report(report))
    assert report["identical_results"], "the wire overhaul changed the planning results"
    assert report["speedup_pooled_vs_per_request"] >= 1.5, (
        f"pooled wire speedup {report['speedup_pooled_vs_per_request']:.2f}x "
        "below the 1.5x bar"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--pattern-budget", type=int, default=2)
    parser.add_argument("--max-points-per-pattern", type=int, default=2)
    parser.add_argument("--simulation-runs", type=int, default=5)
    parser.add_argument("--max-alternatives", type=int, default=80)
    parser.add_argument("--eval-batch-size", type=int, default=4)
    parser.add_argument(
        "--connect-latency", type=float, default=0.025, help="seconds per new connection"
    )
    parser.add_argument(
        "--bandwidth",
        type=float,
        default=4 * 1024 * 1024,
        help="proxy throttle in bytes/second (0 = unthrottled)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--json", action="store_true", help="emit the raw report as JSON")
    args = parser.parse_args(argv)
    report = run_wire_bench(
        scale=args.scale,
        pattern_budget=args.pattern_budget,
        max_points_per_pattern=args.max_points_per_pattern,
        simulation_runs=args.simulation_runs,
        max_alternatives=args.max_alternatives,
        eval_batch_size=args.eval_batch_size,
        connect_latency=args.connect_latency,
        bandwidth=args.bandwidth or None,
        repeats=args.repeats,
    )
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(_render_report(report))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
