"""DEMO1 -- "thousands of alternative ETL flows" from flows with tens of operators.

Section 4 of the paper claims that the automatic addition of FCPs in
different positions and combinations on the TPC-DS / TPC-H flows results
in thousands of alternative ETL flows.  This benchmark measures the size
of the alternative space and the generation rate as a function of the
flow size and the pattern budget, and checks that the claim holds for the
paper-scale flows (tens of operators) with a pattern budget of two.
"""

import pytest

from repro.core.alternatives import AlternativeGenerator
from repro.core.configuration import ProcessingConfiguration
from repro.core.policies import ExhaustivePolicy
from repro.patterns.registry import default_palette
from repro.viz.tables import render_table
from repro.workloads import RandomFlowConfig, random_flow

from conftest import print_artifact


def _generator(budget: int, points_per_pattern: int, cap: int = 100_000) -> AlternativeGenerator:
    config = ProcessingConfiguration(
        pattern_budget=budget,
        max_points_per_pattern=points_per_pattern,
        max_alternatives=cap,
    )
    return AlternativeGenerator(
        default_palette(include_graph_level=False), ExhaustivePolicy(), config
    )


def test_demo1_valid_application_points_grow_with_flow_size(benchmark):
    """The raw problem space (valid points per FCP) grows with the flow size."""
    sizes = [10, 20, 40, 60]
    rows = []
    totals = []
    for size in sizes:
        flow = random_flow(RandomFlowConfig(operations=size, sources=3, seed=101))
        counts = _generator(1, 1000).application_point_counts(flow)
        total = sum(counts.values())
        totals.append(total)
        rows.append({"flow_operations": flow.node_count, "valid_application_points": total})
    print_artifact("DEMO1 -- valid application points vs flow size", render_table(rows))
    assert totals == sorted(totals), "the problem space must grow with the flow size"

    flow = random_flow(RandomFlowConfig(operations=40, sources=3, seed=101))
    benchmark(_generator(1, 1000).application_point_counts, flow)


def test_demo1_thousands_of_alternatives_from_tpch(benchmark, tpch):
    """Budget 2 on the TPC-H flow (tens of operators) yields thousands of flows."""
    generator = _generator(budget=2, points_per_pattern=12)
    alternatives = benchmark.pedantic(generator.generate, args=(tpch,), rounds=1, iterations=1)
    print_artifact(
        "DEMO1 -- alternative flows from tpch_refresh "
        f"({tpch.node_count} operators, budget 2)",
        f"alternatives generated: {len(alternatives)}",
    )
    assert len(alternatives) > 1_000


def test_demo1_thousands_of_alternatives_from_tpcds(benchmark, tpcds):
    """The same holds for the TPC-DS flow."""
    generator = _generator(budget=2, points_per_pattern=12)
    alternatives = benchmark.pedantic(generator.generate, args=(tpcds,), rounds=1, iterations=1)
    print_artifact(
        "DEMO1 -- alternative flows from tpcds_sales "
        f"({tpcds.node_count} operators, budget 2)",
        f"alternatives generated: {len(alternatives)}",
    )
    assert len(alternatives) > 1_000


def test_demo1_space_grows_with_budget(benchmark, tpch):
    """The combinatorial budget sweep: budget 1 vs 2 (vs 3, capped)."""
    rows = []
    counts = {}
    for budget in (1, 2):
        generator = _generator(budget=budget, points_per_pattern=6, cap=50_000)
        alternatives = generator.generate(tpch)
        counts[budget] = len(alternatives)
        rows.append({"pattern_budget": budget, "alternative_flows": len(alternatives)})
    capped = _generator(budget=3, points_per_pattern=6, cap=5_000).generate(tpch)
    rows.append({"pattern_budget": "3 (capped at 5000)", "alternative_flows": len(capped)})
    print_artifact("DEMO1 -- alternative-space size vs pattern budget (tpch_refresh)", render_table(rows))
    assert counts[2] > 10 * counts[1]
    # budget 3 keeps growing the space (up to the configured cap)
    assert counts[2] < len(capped) <= 5_000

    generator = _generator(budget=1, points_per_pattern=6)
    benchmark(generator.generate, tpch)
