"""Shared fixtures and helpers for the benchmark harness.

Every benchmark regenerates one artefact of the paper (a figure, a table,
or a demo claim) and measures the cost of the dominant step with
pytest-benchmark.  Run with ``pytest benchmarks/ --benchmark-only -s`` to
see both the timing tables and the regenerated artefact data.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make sure the source tree is importable even without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - environment guard
    sys.path.insert(0, str(_SRC))

from repro.core import Planner, ProcessingConfiguration  # noqa: E402
from repro.workloads import purchases_flow, tpch_refresh_flow, tpcds_sales_flow  # noqa: E402


def fast_configuration(**overrides) -> ProcessingConfiguration:
    """A planner configuration small enough for repeated benchmark rounds."""
    defaults = dict(
        pattern_budget=1,
        max_points_per_pattern=2,
        simulation_runs=1,
        max_alternatives=500,
    )
    defaults.update(overrides)
    return ProcessingConfiguration(**defaults)


@pytest.fixture(scope="session")
def purchases():
    """The Fig. 2 purchases flow at benchmark scale."""
    return purchases_flow(rows_per_source=10_000)


@pytest.fixture(scope="session")
def tpch():
    """The TPC-H refresh flow at benchmark scale."""
    return tpch_refresh_flow(scale=0.05)


@pytest.fixture(scope="session")
def tpcds():
    """The TPC-DS sales flow at benchmark scale."""
    return tpcds_sales_flow(scale=0.02)


def print_artifact(title: str, body: str) -> None:
    """Print a regenerated artefact with a recognisable banner."""
    print()
    print("=" * 78)
    print(f"ARTIFACT: {title}")
    print("=" * 78)
    print(body)
