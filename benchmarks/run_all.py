"""Run the planning-pipeline benchmarks and persist a machine-readable record.

Executes the generation benchmark (``bench_generation``: deep vs.
copy-on-write pattern application), the streaming-pipeline benchmark
(``bench_streaming_pipeline``: eager vs. streaming vs. screening), the
profile-cache benchmark (``bench_profile_cache``: cold vs. warm-disk
vs. in-memory planning), the service benchmark (``bench_service``:
concurrent clients sharing one cache server vs. cold solo runs), the
wire benchmark (``bench_wire``: pooled keep-alive + compressed wire vs.
the per-request wire through a latency-injecting proxy), the fleet
benchmark (``bench_fleet``: concurrent clients against 1 vs. 4 cache
shards, each shard a shared-capacity channel), the execution
benchmark (``bench_execution``: measured top-k calibration of the
simulator's ranking against real wall time) and the observability
benchmark (``bench_obs``: warm re-planning with metrics on vs. off,
gating the instrumentation overhead) and
writes one JSON document --
``BENCH_generation.json`` by default -- with candidates/sec, the
measured speedups, the application/validation time split and the
process peak RSS.  Future PRs append to the performance
trajectory by re-running this after their changes::

    PYTHONPATH=src python benchmarks/run_all.py
    PYTHONPATH=src python benchmarks/run_all.py --tiny --output /tmp/bench.json

``--tiny`` shrinks every knob for a seconds-long smoke run (used by the
``slow``-marked test in ``tests/integration/test_bench_smoke.py``); the
numbers it produces are *not* meaningful, only the report shape is.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import platform
import resource
import subprocess
import sys
import time
from pathlib import Path

_BENCH_DIR = Path(__file__).resolve().parent
_SRC = _BENCH_DIR.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - environment guard
    sys.path.insert(0, str(_SRC))


def _load(name: str):
    """Import a sibling benchmark module by file path (no package needed)."""
    spec = importlib.util.spec_from_file_location(name, _BENCH_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _run_bench_isolated(script: str, arguments: list[str]) -> dict:
    """Run a benchmark script with ``--json`` in a fresh interpreter.

    The service and wire benchmarks time forked client fleets and
    latency-proxied campaigns, so they must not inherit this process's
    warmed module-level memos and fat heap -- running them in-process
    measurably skews *both* arms.  A subprocess reproduces exactly what
    the standalone invocation measures.
    """
    completed = subprocess.run(
        [sys.executable, str(_BENCH_DIR / script), "--json", *arguments],
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(completed.stdout)


def _peak_rss_kb() -> int:
    """Peak resident set size of this process, in kilobytes."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is kilobytes on Linux, bytes on macOS.
    if sys.platform == "darwin":  # pragma: no cover - linux container
        peak //= 1024
    return int(peak)


def run_all(tiny: bool = False) -> dict:
    """Run both benchmarks and return the combined report."""
    bench_generation = _load("bench_generation")
    bench_streaming = _load("bench_streaming_pipeline")
    bench_cache = _load("bench_profile_cache")
    bench_execution = _load("bench_execution")
    bench_obs = _load("bench_obs")

    if tiny:
        generation_kwargs = dict(
            scale=0.01, pattern_budget=2, max_points_per_pattern=2,
            max_alternatives=40, repeats=1,
        )
        streaming_kwargs = dict(
            scale=0.01, iterations=1, replans=1, simulation_runs=1,
            workers=1, max_alternatives=10, screening_beam=3,
        )
        cache_kwargs = dict(
            scale=0.01, pattern_budget=1, max_points_per_pattern=2,
            simulation_runs=1, max_alternatives=15,
        )
        service_arguments = [
            "--scale", "0.01", "--pattern-budget", "1",
            "--max-points-per-pattern", "2", "--simulation-runs", "1",
            "--max-alternatives", "15", "--clients", "2",
        ]
        wire_arguments = [
            "--scale", "0.01", "--pattern-budget", "1",
            "--max-points-per-pattern", "2", "--simulation-runs", "1",
            "--max-alternatives", "15", "--repeats", "1",
            "--connect-latency", "0.005",
        ]
        fleet_arguments = [
            "--scale", "0.01", "--pattern-budget", "1",
            "--max-points-per-pattern", "2", "--simulation-runs", "1",
            "--max-alternatives", "15", "--shards", "1", "2",
            "--clients", "1", "2",
        ]
        execution_kwargs = dict(scale=0.02, k=3, repeats=1)
        obs_kwargs = dict(
            scale=0.01, pattern_budget=1, max_points_per_pattern=2,
            simulation_runs=1, max_alternatives=15, repeats=1,
        )
    else:
        generation_kwargs = {}
        streaming_kwargs = {}
        cache_kwargs = {}
        service_arguments = []
        wire_arguments = []
        fleet_arguments = []
        execution_kwargs = {}
        obs_kwargs = {}

    generation = bench_generation.run_generation_bench(**generation_kwargs)
    streaming = bench_streaming.run_comparison(**streaming_kwargs)
    profile_cache = bench_cache.run_cache_bench(**cache_kwargs)
    service = _run_bench_isolated("bench_service.py", service_arguments)
    wire = _run_bench_isolated("bench_wire.py", wire_arguments)
    fleet = _run_bench_isolated("bench_fleet.py", fleet_arguments)
    execution = bench_execution.run_execution_bench(**execution_kwargs)
    observability = bench_obs.run_obs_bench(**obs_kwargs)

    return {
        "schema_version": 1,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "tiny": tiny,
        "generation": {
            "workload": generation["workload"],
            "pattern_budget": generation["pattern_budget"],
            "max_points_per_pattern": generation["max_points_per_pattern"],
            "alternatives": generation["arms"]["cow"]["alternatives"],
            "candidates_per_second_deep": generation["arms"]["deep"]["candidates_per_second"],
            "candidates_per_second_cow": generation["arms"]["cow"]["candidates_per_second"],
            "apply_seconds_deep": generation["arms"]["deep"]["apply_seconds"],
            "apply_seconds_cow": generation["arms"]["cow"]["apply_seconds"],
            "validation_seconds_deep": generation["arms"]["deep"]["validation_seconds"],
            "validation_seconds_cow": generation["arms"]["cow"]["validation_seconds"],
            "speedup_cow_vs_deep": generation["speedup_cow_vs_deep"],
            "identical_alternatives": generation["identical_alternatives"],
            "prefix_cache": {
                "patterns_applied_deep_noprefix": generation["arms"]["deep_noprefix"][
                    "patterns_applied"
                ],
                "patterns_applied_deep": generation["arms"]["deep"]["patterns_applied"],
                "patterns_applied_cow_noprefix": generation["arms"]["cow_noprefix"][
                    "patterns_applied"
                ],
                "patterns_applied_cow": generation["arms"]["cow"]["patterns_applied"],
                "application_reduction_deep": generation["application_reduction_deep"],
                "application_reduction_cow": generation["application_reduction_cow"],
                "speedup_prefix_vs_noprefix_deep": generation[
                    "speedup_prefix_vs_noprefix_deep"
                ],
                "speedup_prefix_vs_noprefix_cow": generation[
                    "speedup_prefix_vs_noprefix_cow"
                ],
            },
            "raw": generation,
        },
        "streaming": {
            "workload": streaming["workload"],
            "speedup_streaming_vs_eager": streaming["speedup_streaming_vs_eager"],
            "speedup_screening_vs_eager": streaming["speedup_screening_vs_eager"],
            "equivalent_selections": streaming["equivalent_selections"],
            "raw": streaming,
        },
        "profile_cache": {
            "workload": profile_cache["workload"],
            "speedup_warm_disk_vs_cold": profile_cache["speedup_warm_disk_vs_cold"],
            "speedup_warm_memory_vs_cold": profile_cache["speedup_warm_memory_vs_cold"],
            "identical_results": profile_cache["identical_results"],
            "disk_entries": profile_cache["disk_entries"],
            "disk_bytes": profile_cache["disk_bytes"],
            "raw": profile_cache,
        },
        "service": {
            "workload": service["workload"],
            "clients": service["clients"],
            "speedup_service_vs_solo": service["speedup_service_vs_solo"],
            "identical_results": service["identical_results"],
            "server_entries": service["server_entries"],
            "fleet_hit_rate": service["fleet_hit_rate"],
            "request_seconds": service["request_seconds"],
            "raw": service,
        },
        "wire": {
            "workload": wire["workload"],
            "speedup_pooled_vs_per_request": wire["speedup_pooled_vs_per_request"],
            "identical_results": wire["identical_results"],
            "connect_latency_ms": wire["connect_latency_ms"],
            "per_request_wire": wire["per_request_wire"],
            "pooled_wire": wire["pooled_wire"],
            "warm_hit_rate": wire["warm_hit_rate"],
            "raw": wire,
        },
        "fleet": {
            "workload": fleet["workload"],
            "shard_counts": fleet["shard_counts"],
            "client_counts": fleet["client_counts"],
            "busiest_clients": fleet["busiest_clients"],
            "speedup_sharded_vs_single": fleet["speedup_sharded_vs_single"],
            "speedup_single_client": fleet["speedup_single_client"],
            "identical_results": fleet["identical_results"],
            "raw": fleet,
        },
        "execution": {
            "workload": execution["workload"],
            "backend": execution["calibration"]["backend"],
            "alternatives": execution["alternatives"],
            "skyline_size": execution["skyline_size"],
            "executed": len(execution["calibration"]["runs"]),
            "spearman": execution["spearman"],
            "identical_plans": execution["identical_plans"],
            "raw": execution,
        },
        "observability": {
            "workload": observability["workload"],
            "overhead_fraction": observability["overhead_fraction"],
            "max_overhead_fraction": observability["max_overhead_fraction"],
            "off_best_seconds": observability["off_best_seconds"],
            "on_best_seconds": observability["on_best_seconds"],
            "plan_spans_recorded": observability["plan_spans_recorded"],
            "metric_points": observability["metric_points"],
            "identical_results": observability["identical_results"],
            "raw": observability,
        },
        "peak_rss_kb": _peak_rss_kb(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=_BENCH_DIR.parent / "BENCH_generation.json",
        help="where to write the JSON record (default: repo root)",
    )
    parser.add_argument("--tiny", action="store_true", help="seconds-long smoke run")
    args = parser.parse_args(argv)
    report = run_all(tiny=args.tiny)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    generation = report["generation"]
    print(
        f"generation: {generation['candidates_per_second_cow']:.0f} cand/s (cow) vs "
        f"{generation['candidates_per_second_deep']:.0f} cand/s (deep), "
        f"speedup {generation['speedup_cow_vs_deep']:.2f}x, "
        f"identical={generation['identical_alternatives']}"
    )
    prefix = generation["prefix_cache"]
    print(
        f"prefix cache: {prefix['application_reduction_deep']:.2f}x fewer applications "
        f"(deep), {prefix['application_reduction_cow']:.2f}x (cow)"
    )
    print(
        f"streaming: {report['streaming']['speedup_streaming_vs_eager']:.2f}x vs eager, "
        f"screening {report['streaming']['speedup_screening_vs_eager']:.2f}x"
    )
    cache = report["profile_cache"]
    print(
        f"profile cache: warm disk {cache['speedup_warm_disk_vs_cold']:.2f}x vs cold, "
        f"warm memory {cache['speedup_warm_memory_vs_cold']:.2f}x, "
        f"identical={cache['identical_results']}"
    )
    service = report["service"]
    print(
        f"service: {service['clients']} shared-cache clients "
        f"{service['speedup_service_vs_solo']:.2f}x vs cold solo runs, "
        f"identical={service['identical_results']}"
    )
    wire = report["wire"]
    print(
        f"wire: pooled+compressed {wire['speedup_pooled_vs_per_request']:.2f}x vs "
        f"per-request over a {wire['connect_latency_ms']:.0f} ms-connect proxy, "
        f"identical={wire['identical_results']}"
    )
    fleet = report["fleet"]
    print(
        f"fleet: {fleet['busiest_clients']} clients on {max(fleet['shard_counts'])} "
        f"shards {fleet['speedup_sharded_vs_single']:.2f}x vs "
        f"{min(fleet['shard_counts'])} shard(s), "
        f"identical={fleet['identical_results']}"
    )
    execution = report["execution"]
    print(
        f"execution: top-{execution['executed']} of {execution['alternatives']} "
        f"alternatives measured on {execution['backend']!r}, "
        f"spearman {execution['spearman']:.3f}, "
        f"identical_plans={execution['identical_plans']}"
    )
    observability = report["observability"]
    print(
        f"observability: {observability['overhead_fraction'] * 100.0:+.2f}% overhead "
        f"metrics-on vs off (gate <= "
        f"{observability['max_overhead_fraction'] * 100.0:.0f}%), "
        f"{observability['plan_spans_recorded']} plan spans recorded, "
        f"identical={observability['identical_results']}"
    )
    print(f"peak RSS: {report['peak_rss_kb']} kB")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
