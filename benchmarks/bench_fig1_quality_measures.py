"""FIG1 -- regenerate the Fig. 1 table of example quality measures.

The paper's Fig. 1 lists, per quality characteristic, the example measures
the tool estimates (performance: process cycle time and average latency
per tuple; data quality: freshness age and the freshness score;
manageability: longest path, coupling and number of merge elements).  The
benchmark regenerates that table from the measure registry and times a
full measure evaluation of the TPC-H flow.
"""

import pytest

from repro.quality.estimator import EstimationSettings, QualityEstimator
from repro.quality.framework import QualityCharacteristic, default_registry
from repro.viz.tables import measures_table, render_table

from conftest import print_artifact


FIG1_EXPECTED = {
    ("Performance", "Process cycle time"),
    ("Performance", "Average latency per tuple"),
    ("Data Quality", "Request time - Time of last update"),
    ("Data Quality", "1 / (1 + age * frequency of updates)"),
    ("Manageability", "Length of process workflow's longest path"),
    ("Manageability", "Coupling of process workflow"),
    ("Manageability", "# of merge elements in the process model"),
}


def test_fig1_measures_table(benchmark, tpch):
    """Regenerate the Fig. 1 rows and benchmark one full flow evaluation."""
    registry = default_registry()
    rows = measures_table(registry)
    covered = {(row["characteristic"], row["measure"]) for row in rows}
    missing = FIG1_EXPECTED - covered
    assert not missing, f"Fig. 1 measures missing from the registry: {missing}"

    print_artifact(
        "Fig. 1 -- Example quality measures for ETL processes",
        render_table(rows, columns=["characteristic", "measure", "source"]),
    )

    estimator = QualityEstimator(settings=EstimationSettings(simulation_runs=1, seed=7))
    profile = benchmark(estimator.evaluate, tpch)
    # the evaluation covers at least the five characteristics of the paper
    assert len(profile.scores) >= 5
    assert QualityCharacteristic.PERFORMANCE in profile.scores
