"""Sharded cache fleet: concurrent clients vs. shard count.

The fleet subsystem's claim is about *aggregate serving capacity*: one
cache shard is one machine with one NIC, one disk and one interpreter
-- a fixed budget of bytes per second -- so a fleet of warm planners
hammering it queues on that budget no matter how patiently each client
waits.  ``cache_tier="sharded"`` splits the store across N
:class:`~repro.service.CacheServer` shards by consistent hashing, so
the same fleet's traffic drains through N independent channels -- and a
single client's batched ``get_many`` windows fan out N ways too.

This benchmark measures exactly that grid on the TPC-H refresh
workload, with loopback made honest the same way ``bench_wire`` does
it: every shard sits behind a :class:`ShardLinkProxy` whose
per-request service time and bandwidth throttle are **shared by all
connections to that shard** (the defining property of a saturated
machine; ``bench_wire``'s per-connection throttle models a link, this
one models a server).  For every shard
count (1 and 4) the harness boots that many shard channels, warms them
with one solo campaign, then times fleets of concurrent forked client
processes (1 and 4; 16 with ``--slow``) planning against the warm
fleet.  Every cell must produce byte-identical alternatives, profiles
and skylines -- the tier-equivalence guarantee extends over the ring.

The headline number is the busy-fleet column: wall-clock of the
largest client fleet against 1 shard vs. against 4 shards.

Hit rates and served-request latency are read from each shard's own
``GET /metrics`` endpoint (scraped on the direct server URL, bypassing
the throttled channel so observation never draws on the modelled
capacity), not from client-side objects: the benchmark observes the
fleet exactly the way an operator's dashboard does.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_fleet.py

or through pytest (``pytest benchmarks/bench_fleet.py -s``).
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import socket
import sys
import threading
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - environment guard
    sys.path.insert(0, str(_SRC))

from repro.cache import ProfileCache  # noqa: E402
from repro.core import Planner, ProcessingConfiguration  # noqa: E402
from repro.service import CacheServer  # noqa: E402
from repro.wire import PooledJSONClient  # noqa: E402
from repro.workloads import tpch_refresh_flow  # noqa: E402


def scrape_metrics(url: str, timeout: float = 10.0) -> dict:
    """One ``GET /metrics`` payload from a live server."""
    client = PooledJSONClient(url, timeout, keep_alive=False)
    try:
        return client.request_json("GET", "/metrics")
    finally:
        client.close()


def _fleet_hit_counts(urls: list[str]) -> tuple[int, int]:
    """``(hits, misses)`` summed over every shard's ``/metrics`` counters."""
    hits = misses = 0
    for url in urls:
        counters = scrape_metrics(url).get("metrics", {}).get("counters", {})
        hits += counters.get("cache.hits", 0)
        misses += counters.get("cache.misses", 0)
    return hits, misses

DEFAULT_BANDWIDTH = 40 * 1024  # bytes/second of spare serving capacity per shard
DEFAULT_SERVICE_TIME = 0.005  # seconds of shard capacity per served request
DEFAULT_CONNECT_LATENCY = 0.005


class _SharedThrottle:
    """A serving-time budget shared by every user of one shard's channel.

    Serializes cost *accounting* under a lock but sleeps outside it, so
    concurrent requests queue exactly as they would on a saturated
    machine: each pays for its own work plus whatever backlog the
    channel already owes.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._free_at = 0.0

    def occupy(self, seconds: float) -> None:
        with self._lock:
            now = time.monotonic()
            start = max(now, self._free_at)
            self._free_at = start + seconds
            wait = self._free_at - now
        if wait > 0:
            time.sleep(wait)


class ShardLinkProxy:
    """A TCP proxy modelling one shard machine's finite serving capacity.

    Every accepted connection pays ``connect_latency`` before the
    upstream dial; every request chunk draws ``service_time`` seconds
    (parse, lookup, encode -- the fixed cost a loaded server pays per
    round-trip) and every relayed chunk ``len/bandwidth`` seconds from
    one budget **shared by all connections to this shard**.  That is
    the defining property of a saturated machine -- ``bench_wire``'s
    per-connection throttle models a link, this one models a server.
    Four busy clients on one shard therefore share one channel; four
    shards give the fleet four.
    """

    def __init__(
        self,
        target_host: str,
        target_port: int,
        bandwidth: float = DEFAULT_BANDWIDTH,
        service_time: float = DEFAULT_SERVICE_TIME,
        connect_latency: float = DEFAULT_CONNECT_LATENCY,
    ) -> None:
        self.target = (target_host, target_port)
        self.bandwidth = bandwidth
        self.service_time = service_time
        self.connect_latency = connect_latency
        self.throttle = _SharedThrottle()
        self.connections = 0
        self.requests = 0
        self.bytes_relayed = 0
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(64)
        self.port = self._listener.getsockname()[1]
        self._running = False
        self._thread: threading.Thread | None = None
        self._open: set[socket.socket] = set()
        self._lock = threading.Lock()

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.port}"

    def start(self) -> "ShardLinkProxy":
        self._running = True
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._running = False
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            sockets, self._open = set(self._open), set()
        for sock in sockets:
            try:
                sock.close()
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=2.0)

    # ------------------------------------------------------------------

    def _accept_loop(self) -> None:
        while self._running:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            self.connections += 1
            threading.Thread(target=self._serve, args=(client,), daemon=True).start()

    def _serve(self, client: socket.socket) -> None:
        time.sleep(self.connect_latency)
        upstream = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            upstream.connect(self.target)
            for sock in (client, upstream):
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            client.close()
            return
        with self._lock:
            self._open.update((client, upstream))
        threading.Thread(
            target=self._pump, args=(client, upstream, True), daemon=True
        ).start()
        threading.Thread(
            target=self._pump, args=(upstream, client, False), daemon=True
        ).start()

    def _pump(
        self, source: socket.socket, sink: socket.socket, request_bound: bool
    ) -> None:
        try:
            while True:
                data = source.recv(65536)
                if not data:
                    break
                self.bytes_relayed += len(data)
                cost = len(data) / self.bandwidth
                if request_bound:
                    # One client-bound chunk is (to a very good
                    # approximation on this wire) one request: lookups
                    # are small digest lists, and the only multi-chunk
                    # bodies -- the compressed end-of-campaign /put --
                    # happen in the untimed warm run.
                    self.requests += 1
                    cost += self.service_time
                self.throttle.occupy(cost)
                sink.sendall(data)
        except OSError:
            pass
        finally:
            for sock in (source, sink):
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass


class _ShardFleet:
    """``count`` in-memory CacheServers, each behind its own channel proxy."""

    def __init__(
        self,
        count: int,
        bandwidth: float,
        service_time: float,
        connect_latency: float,
    ):
        self.count = count
        self.bandwidth = bandwidth
        self.service_time = service_time
        self.connect_latency = connect_latency
        self.servers: list[CacheServer] = []
        self.proxies: list[ShardLinkProxy] = []

    @property
    def urls(self) -> list[str]:
        return [proxy.url for proxy in self.proxies]

    @property
    def direct_urls(self) -> list[str]:
        """Shard server URLs bypassing the throttled channel (for scrapes)."""
        return [server.url for server in self.servers]

    def __enter__(self) -> "_ShardFleet":
        for _ in range(self.count):
            server = CacheServer(ProfileCache()).start()
            proxy = ShardLinkProxy(
                server.host,
                server.port,
                self.bandwidth,
                self.service_time,
                self.connect_latency,
            ).start()
            self.servers.append(server)
            self.proxies.append(proxy)
        return self

    def __exit__(self, *exc_info) -> None:
        for proxy in self.proxies:
            proxy.stop()
        for server in self.servers:
            server.stop()
        self.servers, self.proxies = [], []


# ---------------------------------------------------------------------------
# Client fleet: the same forked-planner pattern as bench_service
# ---------------------------------------------------------------------------


def _run_fleet_client(index: int, flow, configuration, queue) -> None:
    """One fleet member: plan once, report (index, seconds, fingerprint)."""
    planner = Planner(configuration=configuration)
    t0 = time.perf_counter()
    result = planner.plan(flow)
    seconds = time.perf_counter() - t0
    if planner.profile_cache is not None:
        planner.profile_cache.close()
    queue.put((index, seconds, result.fingerprint()))


def _run_fleet(flow, configuration, clients: int) -> dict:
    """Run ``clients`` concurrent planners; wall-clock + per-client details."""
    try:
        ctx = multiprocessing.get_context("fork")
        make = lambda index, queue: ctx.Process(  # noqa: E731
            target=_run_fleet_client, args=(index, flow, configuration, queue)
        )
        queue = ctx.SimpleQueue()
    except ValueError:  # pragma: no cover - non-fork platform fallback
        import queue as queue_module

        queue = queue_module.SimpleQueue()
        make = lambda index, queue=queue: threading.Thread(  # noqa: E731
            target=_run_fleet_client, args=(index, flow, configuration, queue)
        )
    members = [make(index, queue) for index in range(clients)]
    t0 = time.perf_counter()
    for member in members:
        member.start()
    collected = [queue.get() for _ in range(clients)]
    wall = time.perf_counter() - t0
    for member in members:
        member.join()
    collected.sort()
    return {
        "wall_seconds": wall,
        "client_seconds": [seconds for _, seconds, _ in collected],
        "fingerprints": [fingerprint for _, _, fingerprint in collected],
    }


# ---------------------------------------------------------------------------
# The grid
# ---------------------------------------------------------------------------


def run_fleet_bench(
    flow=None,
    *,
    scale: float = 0.05,
    pattern_budget: int = 2,
    max_points_per_pattern: int = 2,
    simulation_runs: int = 5,
    max_alternatives: int = 80,
    eval_batch_size: int = 8,
    bandwidth: float = DEFAULT_BANDWIDTH,
    service_time: float = DEFAULT_SERVICE_TIME,
    connect_latency: float = DEFAULT_CONNECT_LATENCY,
    shard_counts: tuple[int, ...] = (1, 4),
    client_counts: tuple[int, ...] = (1, 4),
) -> dict:
    """Time every (shards, clients) cell and return a comparison report.

    ``eval_batch_size`` deliberately stays small (as in ``bench_wire``)
    so the campaign's reads arrive as a stream of bounded ``get_many``
    windows -- the regime a real fleet with bounded memory lives in.
    The headline ``speedup_sharded_vs_single`` divides the busiest
    fleet's wall-clock against ``min(shard_counts)`` shards by the same
    fleet's wall-clock against ``max(shard_counts)`` shards.
    """
    shard_counts = tuple(sorted(set(shard_counts)))
    client_counts = tuple(sorted(set(client_counts)))
    if len(shard_counts) < 2:
        raise ValueError("shard_counts needs at least two entries to compare")
    if flow is None:
        flow = tpch_refresh_flow(scale=scale)
    base = dict(
        pattern_budget=pattern_budget,
        max_points_per_pattern=max_points_per_pattern,
        simulation_runs=simulation_runs,
        max_alternatives=max_alternatives,
        eval_batch_size=eval_batch_size,
    )

    fingerprints: set = set()
    grid: list[dict] = []
    warm_seconds: dict[int, float] = {}
    shard_bytes: dict[int, list[int]] = {}
    alternatives = 0

    shard_requests: dict[int, list[int]] = {}
    shard_request_seconds: dict[int, list[dict]] = {}
    for shards in shard_counts:
        with _ShardFleet(shards, bandwidth, service_time, connect_latency) as servers:
            configuration = ProcessingConfiguration(
                **base, cache_tier="sharded", cache_urls=tuple(servers.urls)
            )
            # One solo run pays the simulation campaign and publishes
            # every profile across the ring; all measured cells are warm.
            warm_planner = Planner(configuration=configuration)
            t0 = time.perf_counter()
            warm_result = warm_planner.plan(flow)
            warm_seconds[shards] = time.perf_counter() - t0
            warm_planner.profile_cache.close()
            fingerprints.add(warm_result.fingerprint())
            alternatives = len(warm_result.alternatives)

            for clients in client_counts:
                # The cell's hit rate is the shards' own view of it:
                # counter deltas between two /metrics scrapes bracketing
                # the timed fleet (direct URLs -- the scrape must not
                # draw on the modelled channel capacity).
                before = _fleet_hit_counts(servers.direct_urls)
                cell = _run_fleet(flow, configuration, clients)
                after = _fleet_hit_counts(servers.direct_urls)
                fingerprints.update(cell["fingerprints"])
                hits = after[0] - before[0]
                misses = after[1] - before[1]
                grid.append(
                    {
                        "shards": shards,
                        "clients": clients,
                        "wall_seconds": cell["wall_seconds"],
                        "client_seconds": cell["client_seconds"],
                        "fleet_hit_rate": hits / (hits + misses)
                        if hits + misses
                        else 0.0,
                    }
                )
            shard_bytes[shards] = [proxy.bytes_relayed for proxy in servers.proxies]
            shard_requests[shards] = [proxy.requests for proxy in servers.proxies]
            shard_request_seconds[shards] = [
                scrape_metrics(url)
                .get("metrics", {})
                .get("histograms", {})
                .get("service.request_seconds", {})
                for url in servers.direct_urls
            ]

    def _wall(shards: int, clients: int) -> float:
        [cell] = [c for c in grid if c["shards"] == shards and c["clients"] == clients]
        return cell["wall_seconds"]

    low, high = shard_counts[0], shard_counts[-1]
    busiest = client_counts[-1]
    return {
        "workload": flow.name,
        "shard_counts": list(shard_counts),
        "client_counts": list(client_counts),
        "pattern_budget": pattern_budget,
        "simulation_runs": simulation_runs,
        "eval_batch_size": eval_batch_size,
        "bandwidth_bytes_per_s": bandwidth,
        "service_time_ms": service_time * 1000.0,
        "connect_latency_ms": connect_latency * 1000.0,
        "alternatives": alternatives,
        "warm_seconds": {str(shards): seconds for shards, seconds in warm_seconds.items()},
        "shard_bytes": {
            str(shards): counts for shards, counts in shard_bytes.items()
        },
        "shard_requests": {
            str(shards): counts for shards, counts in shard_requests.items()
        },
        "shard_request_seconds": {
            str(shards): stats for shards, stats in shard_request_seconds.items()
        },
        "grid": grid,
        "busiest_clients": busiest,
        "speedup_sharded_vs_single": _wall(low, busiest) / _wall(high, busiest),
        "speedup_single_client": _wall(low, client_counts[0])
        / _wall(high, client_counts[0]),
        "identical_results": len(fingerprints) == 1,
    }


def _render_report(report: dict) -> str:
    bandwidth = report["bandwidth_bytes_per_s"]
    lines = [
        f"workload: {report['workload']}  "
        f"({report['alternatives']} alternatives, budget {report['pattern_budget']}, "
        f"{report['simulation_runs']} simulation runs, "
        f"eval window {report['eval_batch_size']})",
        f"shard channel: {report['service_time_ms']:.0f} ms/request + "
        f"{bandwidth / 1024:.0f} KB/s, shared per shard; "
        f"{report['connect_latency_ms']:.0f} ms per connection",
        "shards x clients -> fleet wall-clock (warm):",
    ]
    for cell in report["grid"]:
        lines.append(
            f"  {cell['shards']} shard(s) x {cell['clients']:2d} client(s): "
            f"{cell['wall_seconds']:8.3f} s wall   "
            f"hit rate (from /metrics): {cell['fleet_hit_rate'] * 100.0:.0f}%"
        )
    for shards, stats in sorted(
        report["shard_request_seconds"].items(), key=lambda item: int(item[0])
    ):
        p99s = ", ".join(
            f"{shard.get('p99', 0.0) * 1000.0:.1f} ms" for shard in stats
        )
        lines.append(f"  {shards} shard(s) served-request p99: {p99s}")
    lines.append(
        f"busy fleet ({report['busiest_clients']} clients) sharded vs single: "
        f"{report['speedup_sharded_vs_single']:.2f}x wall   "
        f"single client: {report['speedup_single_client']:.2f}x   "
        f"identical results: {report['identical_results']}"
    )
    return "\n".join(lines)


def test_four_shards_beat_one_shard_for_a_busy_fleet():
    """4 clients against 4 shards must beat the same 4 against 1, >= 1.5x."""
    report = run_fleet_bench()
    print()
    print("=" * 78)
    print("ARTIFACT: sharded cache fleet, clients x shards grid (TPC-H)")
    print("=" * 78)
    print(_render_report(report))
    assert report["identical_results"], "the sharded tier changed the planning results"
    assert report["speedup_sharded_vs_single"] >= 1.5, (
        f"sharded speedup {report['speedup_sharded_vs_single']:.2f}x below the 1.5x bar"
    )
    # every measured cell is warm, as observed by the shards themselves
    assert all(cell["fleet_hit_rate"] == 1.0 for cell in report["grid"])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--pattern-budget", type=int, default=2)
    parser.add_argument("--max-points-per-pattern", type=int, default=2)
    parser.add_argument("--simulation-runs", type=int, default=5)
    parser.add_argument("--max-alternatives", type=int, default=80)
    parser.add_argument("--eval-batch-size", type=int, default=8)
    parser.add_argument(
        "--bandwidth",
        type=float,
        default=DEFAULT_BANDWIDTH,
        help="per-shard channel throttle in bytes/second",
    )
    parser.add_argument(
        "--service-time",
        type=float,
        default=DEFAULT_SERVICE_TIME,
        help="seconds of shared shard capacity per served request",
    )
    parser.add_argument(
        "--connect-latency",
        type=float,
        default=DEFAULT_CONNECT_LATENCY,
        help="seconds per new connection",
    )
    parser.add_argument(
        "--shards", type=int, nargs="+", default=[1, 4], help="shard counts to grid over"
    )
    parser.add_argument(
        "--clients", type=int, nargs="+", default=[1, 4], help="client counts to grid over"
    )
    parser.add_argument("--slow", action="store_true", help="extend the client axis to 16")
    parser.add_argument("--json", action="store_true", help="emit the raw report as JSON")
    args = parser.parse_args(argv)
    clients = list(args.clients) + ([16] if args.slow else [])
    report = run_fleet_bench(
        scale=args.scale,
        pattern_budget=args.pattern_budget,
        max_points_per_pattern=args.max_points_per_pattern,
        simulation_runs=args.simulation_runs,
        max_alternatives=args.max_alternatives,
        eval_batch_size=args.eval_batch_size,
        bandwidth=args.bandwidth,
        service_time=args.service_time,
        connect_latency=args.connect_latency,
        shard_counts=tuple(args.shards),
        client_counts=tuple(clients),
    )
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(_render_report(report))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
