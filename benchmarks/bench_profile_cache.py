"""Persistent profile cache: cold vs. warm-disk vs. in-memory planning.

The planner memoizes quality profiles by flow fingerprint; PR 4 made the
memo *persistent*: a disk-backed cache tier under ``cache_dir`` lets
repeated benchmark runs, re-plans in new processes, and parallel
sessions share profiles instead of re-simulating identical flows.  This
benchmark measures that amortization on the TPC-H refresh workload with
three arms over the identical planning run:

* **cold** -- a fresh ``cache_tier="tiered"`` planner on an empty
  ``cache_dir``: pays full simulation plus the disk write-back.  This is
  also (within noise) the uncached/first-run cost.
* **warm_memory** -- the same planner plans again: every profile is
  served from the in-memory tier (the PR 1 behaviour, upper bound).
* **warm_disk** -- a *new* planner (fresh memory tier, simulating a new
  process) on the now-populated ``cache_dir``: every profile is
  deserialized from disk.  This is the number a repeated benchmark run
  or a parallel session actually sees.

The report asserts that all arms -- and a default memory-tier planner --
produce byte-identical alternatives, profiles and skylines: cache tiers
trade wall-clock, never results.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_profile_cache.py

or through pytest (``pytest benchmarks/bench_profile_cache.py -s``).
The test suite smoke-runs :func:`run_cache_bench` on a tiny flow.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - environment guard
    sys.path.insert(0, str(_SRC))

from repro.core import Planner, ProcessingConfiguration  # noqa: E402
from repro.workloads import tpch_refresh_flow  # noqa: E402


_COUNTER_KEYS = ("hits", "misses", "evictions", "invalid")


def _stats_delta(before: dict, after: dict) -> dict:
    """Per-arm view of cumulative tier stats: ``after`` minus ``before``.

    The warm-memory arm reuses the cold arm's planner, so its raw
    counters are cumulative; subtracting the pre-arm snapshot makes the
    three arms' cache columns directly comparable.
    """
    delta = {}
    for tier, snapshot in after.items():
        previous = before.get(tier, {})
        counters = {k: snapshot[k] - previous.get(k, 0) for k in _COUNTER_KEYS}
        counters["lookups"] = counters["hits"] + counters["misses"]
        counters["hit_rate"] = (
            counters["hits"] / counters["lookups"] if counters["lookups"] else 0.0
        )
        delta[tier] = counters
    return delta


def run_cache_bench(
    flow=None,
    *,
    scale: float = 0.05,
    pattern_budget: int = 2,
    max_points_per_pattern: int = 2,
    simulation_runs: int = 5,
    max_alternatives: int = 80,
    workers: int = 1,
    cache_dir: str | None = None,
) -> dict:
    """Time the three arms on one workload and return a comparison report.

    ``cache_dir`` defaults to a throwaway temporary directory (removed
    afterwards); pass an explicit one to inspect the entries or to
    measure against a pre-warmed store.
    """
    if flow is None:
        flow = tpch_refresh_flow(scale=scale)
    base = dict(
        pattern_budget=pattern_budget,
        max_points_per_pattern=max_points_per_pattern,
        simulation_runs=simulation_runs,
        max_alternatives=max_alternatives,
        parallel_workers=workers,
    )
    owns_dir = cache_dir is None
    cache_dir = cache_dir or tempfile.mkdtemp(prefix="repro-profile-cache-")

    try:
        tiered = ProcessingConfiguration(**base, cache_tier="tiered", cache_dir=cache_dir)
        arms: dict[str, dict] = {}

        # Reference: the default in-process memory tier, cold.
        reference = Planner(configuration=ProcessingConfiguration(**base)).plan(flow)

        cold_planner = Planner(configuration=tiered)
        t0 = time.perf_counter()
        cold_result = cold_planner.plan(flow)
        arms["cold"] = {
            "seconds": time.perf_counter() - t0,
            "cache": cold_planner.profile_cache.tier_stats(),
        }

        after_cold = cold_planner.profile_cache.tier_stats()
        t0 = time.perf_counter()
        warm_memory_result = cold_planner.plan(flow)
        arms["warm_memory"] = {
            "seconds": time.perf_counter() - t0,
            "cache": _stats_delta(after_cold, cold_planner.profile_cache.tier_stats()),
        }

        warm_planner = Planner(configuration=tiered)  # fresh memory, warm disk
        t0 = time.perf_counter()
        warm_disk_result = warm_planner.plan(flow)
        disk = warm_planner.profile_cache.disk
        arms["warm_disk"] = {
            "seconds": time.perf_counter() - t0,
            "cache": warm_planner.profile_cache.tier_stats(),
        }

        fingerprints = {
            name: result.fingerprint()
            for name, result in {
                "memory_reference": reference,
                "cold": cold_result,
                "warm_memory": warm_memory_result,
                "warm_disk": warm_disk_result,
            }.items()
        }
        identical = len(set(fingerprints.values())) == 1

        return {
            "workload": flow.name,
            "pattern_budget": pattern_budget,
            "max_points_per_pattern": max_points_per_pattern,
            "simulation_runs": simulation_runs,
            "alternatives": len(cold_result.alternatives),
            "arms": arms,
            "disk_entries": len(disk),
            "disk_bytes": disk.size_bytes(),
            "speedup_warm_disk_vs_cold": arms["cold"]["seconds"] / arms["warm_disk"]["seconds"],
            "speedup_warm_memory_vs_cold": arms["cold"]["seconds"]
            / arms["warm_memory"]["seconds"],
            "identical_results": identical,
        }
    finally:
        if owns_dir:
            shutil.rmtree(cache_dir, ignore_errors=True)


def _render_report(report: dict) -> str:
    lines = [
        f"workload: {report['workload']}  "
        f"({report['alternatives']} alternatives, budget {report['pattern_budget']}, "
        f"{report['simulation_runs']} simulation runs)",
        f"{'arm':<14} {'wall clock':>12} {'hit rate':>10} {'served by disk':>16}",
    ]
    for name, arm in report["arms"].items():
        overall = arm["cache"].get("overall", {})
        disk_stats = arm["cache"].get("disk", {})
        rate = f"{overall.get('hit_rate', 0.0) * 100.0:.1f}%"
        disk_hits = f"{disk_stats.get('hits', 0)}"
        lines.append(f"{name:<14} {arm['seconds']:>10.3f} s {rate:>10} {disk_hits:>16}")
    lines.append(
        f"warm disk vs cold: {report['speedup_warm_disk_vs_cold']:.2f}x   "
        f"warm memory vs cold: {report['speedup_warm_memory_vs_cold']:.2f}x   "
        f"identical results: {report['identical_results']}"
    )
    lines.append(
        f"persisted: {report['disk_entries']} entries, {report['disk_bytes'] / 1024:.1f} kB"
    )
    return "\n".join(lines)


def test_warm_disk_rerun_beats_cold():
    """A warm cache_dir must make a re-run >= 1.5x faster, results identical."""
    report = run_cache_bench()
    print()
    print("=" * 78)
    print("ARTIFACT: persistent profile cache, cold vs warm arms (TPC-H)")
    print("=" * 78)
    print(_render_report(report))
    assert report["identical_results"], "a cache tier changed the planning results"
    assert report["speedup_warm_disk_vs_cold"] >= 1.5, (
        f"warm-disk speedup {report['speedup_warm_disk_vs_cold']:.2f}x below the 1.5x bar"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--pattern-budget", type=int, default=2)
    parser.add_argument("--simulation-runs", type=int, default=5)
    parser.add_argument("--max-alternatives", type=int, default=80)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--cache-dir", default=None, help="persist entries here (kept)")
    parser.add_argument("--json", action="store_true", help="emit the raw report as JSON")
    args = parser.parse_args(argv)
    report = run_cache_bench(
        scale=args.scale,
        pattern_budget=args.pattern_budget,
        simulation_runs=args.simulation_runs,
        max_alternatives=args.max_alternatives,
        workers=args.workers,
        cache_dir=args.cache_dir,
    )
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(_render_report(report))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
