"""FIG4 -- the multidimensional scatter-plot of alternative ETL flows.

Fig. 4 plots the alternative designs in a multidimensional space of
quality characteristics (performance, data quality, reliability) and only
presents the Pareto frontier (skyline) to the user.  The benchmark plans
the TPC-H and TPC-DS flows, regenerates the scatter data (all points plus
the skyline flag), prints the ASCII projection and the CSV series, checks
the skyline pruning rule, and times the skyline computation itself.
"""

import pytest

from repro.core import Planner
from repro.core.pareto import pareto_front_profiles
from repro.viz.scatter import build_scatter_data, render_ascii_scatter, scatter_to_csv

from conftest import fast_configuration, print_artifact


@pytest.fixture(scope="module", params=["tpch", "tpcds"])
def planning_result(request, tpch, tpcds):
    flow = {"tpch": tpch, "tpcds": tpcds}[request.param]
    planner = Planner(
        configuration=fast_configuration(pattern_budget=2, max_points_per_pattern=2)
    )
    return planner.plan(flow)


def test_fig4_scatter_plot(benchmark, planning_result):
    """Regenerate the Fig. 4 scatter data and render it."""
    points = benchmark(build_scatter_data, planning_result)
    assert len(points) == len(planning_result.alternatives)
    skyline_points = [p for p in points if p.on_skyline]
    assert skyline_points
    # the skyline is what the user sees: it must be a strict subset
    assert len(skyline_points) < len(points)

    ascii_plot = render_ascii_scatter(points, planning_result.characteristics)
    csv_head = "\n".join(scatter_to_csv(points, planning_result.characteristics).splitlines()[:8])
    print_artifact(
        f"Fig. 4 -- scatter plot ({planning_result.initial_flow.name}): "
        f"{len(points)} alternatives, {len(skyline_points)} on the skyline",
        ascii_plot + "\nCSV series (first rows):\n" + csv_head,
    )


def test_fig4_skyline_pruning_rule(benchmark, planning_result):
    """No presented (skyline) design may be dominated by any other design."""
    characteristics = planning_result.characteristics

    def check() -> int:
        violations = 0
        for presented in planning_result.skyline:
            for other in planning_result.alternatives:
                if other is presented:
                    continue
                if other.profile.dominates(presented.profile, characteristics):
                    violations += 1
        return violations

    assert benchmark(check) == 0


def test_fig4_skyline_computation_cost(benchmark, planning_result):
    """Time the skyline computation over the evaluated alternatives."""
    profiles = [alt.profile for alt in planning_result.alternatives]
    indices = benchmark(pareto_front_profiles, profiles, planning_result.characteristics)
    assert sorted(indices) == sorted(planning_result.skyline_indices)
