"""Delta-based (copy-on-write) pattern application vs. the deep-copy seed.

PR 1 made estimation cheap, which left alternative *generation* -- graph
copies and re-validation per candidate -- dominating planning wall-clock
at ``pattern_budget >= 3``.  This benchmark measures the copy-on-write
fast path on the TPC-H refresh workload: the same exhaustive enumeration
runs once with ``copy_mode="deep"`` (every pattern application clones the
whole flow and every candidate is re-validated from scratch) and once
with ``copy_mode="cow"`` (pattern applications share operation payloads
copy-on-write, record structured deltas, validate only the delta
neighbourhood, and deduplicate via incrementally maintained signatures).

PR 3 added prefix-cached combination enumeration on top: the benchmark
now runs four arms -- ``deep`` / ``cow``, each with the prefix cache on
(the default) and off (``*_noprefix``, the uncached cost model).  All
four arms must produce *identical* alternative sets -- same signatures,
same order, same labels -- the COW arm must be at least 3x faster than
deep, and the prefix cache must cut the number of pattern applications
at least 2x in *both* copy modes.  The report includes candidates/sec
for every arm and the application/validation time split and
prefix-reuse counters from
:class:`~repro.core.alternatives.GenerationStats`.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_generation.py

or through pytest (``pytest benchmarks/bench_generation.py -s``).  The
test suite smoke-runs :func:`run_generation_bench` at tiny scale via
``benchmarks/run_all.py``.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - environment guard
    sys.path.insert(0, str(_SRC))

from repro.core.alternatives import AlternativeGenerator  # noqa: E402
from repro.core.configuration import ProcessingConfiguration  # noqa: E402
from repro.core.policies import HeuristicPolicy  # noqa: E402
from repro.patterns.registry import default_palette  # noqa: E402
from repro.workloads import tpch_refresh_flow  # noqa: E402


#: The four benchmark arms: (copy_mode, prefix_cache).
ARMS: dict[str, tuple[str, bool]] = {
    "deep_noprefix": ("deep", False),
    "deep": ("deep", True),
    "cow_noprefix": ("cow", False),
    "cow": ("cow", True),
}


def _run_arm(
    flow,
    mode: str,
    *,
    pattern_budget,
    max_points_per_pattern,
    max_alternatives,
    prefix_cache=True,
):
    """One generation run; returns (seconds, [(label, signature)], stats dict)."""
    configuration = ProcessingConfiguration(
        pattern_budget=pattern_budget,
        max_points_per_pattern=max_points_per_pattern,
        max_alternatives=max_alternatives,
        copy_mode=mode,
        prefix_cache=prefix_cache,
    )
    generator = AlternativeGenerator(default_palette(), HeuristicPolicy(), configuration)
    started = time.perf_counter()
    alternatives = generator.generate(flow)
    seconds = time.perf_counter() - started
    outcome = [(alt.label, alt.flow.signature()) for alt in alternatives]
    return seconds, outcome, generator.last_stats.as_dict()


def run_generation_bench(
    flow=None,
    *,
    scale: float = 0.05,
    pattern_budget: int = 3,
    max_points_per_pattern: int = 3,
    max_alternatives: int = 1500,
    repeats: int = 3,
) -> dict:
    """Time deep vs. COW generation and return a comparison report.

    Each arm runs ``repeats`` times; the reported wall-clock is the
    median, which keeps the speedup claim robust against scheduler noise.
    """
    if flow is None:
        flow = tpch_refresh_flow(scale=scale)
    knobs = dict(
        pattern_budget=pattern_budget,
        max_points_per_pattern=max_points_per_pattern,
        max_alternatives=max_alternatives,
    )

    arms: dict[str, dict] = {}
    outcomes: dict[str, list] = {}
    for arm_name, (mode, prefix_cache) in ARMS.items():
        seconds: list[float] = []
        stats: dict = {}
        for _ in range(max(1, repeats)):
            elapsed, outcome, stats = _run_arm(
                flow, mode, prefix_cache=prefix_cache, **knobs
            )
            seconds.append(elapsed)
            outcomes[arm_name] = outcome
        median_seconds = statistics.median(seconds)
        arms[arm_name] = {
            "copy_mode": mode,
            "prefix_cache": prefix_cache,
            "seconds": median_seconds,
            "seconds_all": seconds,
            "alternatives": len(outcomes[arm_name]),
            "candidates_per_second": (
                len(outcomes[arm_name]) / median_seconds if median_seconds > 0 else 0.0
            ),
            "apply_seconds": stats["apply_seconds"],
            "validation_seconds": stats["validation_seconds"],
            "patterns_applied": stats["patterns_applied"],
            "prefix_steps_reused": stats["prefix_steps_reused"],
            "stats": stats,
        }

    reference = outcomes["deep_noprefix"]
    return {
        "workload": flow.name,
        "flow_operations": flow.node_count,
        "flow_transitions": flow.edge_count,
        **knobs,
        "repeats": repeats,
        "arms": arms,
        "identical_alternatives": all(outcome == reference for outcome in outcomes.values()),
        "speedup_cow_vs_deep": arms["deep"]["seconds"] / arms["cow"]["seconds"],
        "speedup_prefix_vs_noprefix_deep": (
            arms["deep_noprefix"]["seconds"] / arms["deep"]["seconds"]
        ),
        "speedup_prefix_vs_noprefix_cow": (
            arms["cow_noprefix"]["seconds"] / arms["cow"]["seconds"]
        ),
        "application_reduction_deep": (
            arms["deep_noprefix"]["patterns_applied"] / arms["deep"]["patterns_applied"]
        ),
        "application_reduction_cow": (
            arms["cow_noprefix"]["patterns_applied"] / arms["cow"]["patterns_applied"]
        ),
    }


def _render_report(report: dict) -> str:
    lines = [
        f"workload: {report['workload']}  ({report['flow_operations']} operations, "
        f"budget={report['pattern_budget']}, "
        f"max_points={report['max_points_per_pattern']})",
        f"{'arm':<14} {'wall clock':>12} {'alternatives':>14} {'cand/sec':>10} "
        f"{'applied':>9} {'reused':>8} {'apply':>9} {'validate':>9}",
    ]
    for name, arm in report["arms"].items():
        lines.append(
            f"{name:<14} {arm['seconds']:>10.3f} s {arm['alternatives']:>14} "
            f"{arm['candidates_per_second']:>10.0f} "
            f"{arm['patterns_applied']:>9} {arm['prefix_steps_reused']:>8} "
            f"{arm['apply_seconds']:>7.2f} s {arm['validation_seconds']:>7.2f} s"
        )
    lines.append(
        f"cow vs deep: {report['speedup_cow_vs_deep']:.2f}x   "
        f"identical alternative sets: {report['identical_alternatives']}"
    )
    lines.append(
        f"prefix cache: {report['application_reduction_deep']:.2f}x fewer applications "
        f"(deep), {report['application_reduction_cow']:.2f}x (cow); wall clock "
        f"{report['speedup_prefix_vs_noprefix_deep']:.2f}x (deep), "
        f"{report['speedup_prefix_vs_noprefix_cow']:.2f}x (cow)"
    )
    return "\n".join(lines)


#: One full-scale report shared by the pytest entry points below: both
#: assert on the same four-arm run, so rerunning it would only double
#: benchmark wall clock for identical data.
_PYTEST_REPORT: dict = {}


def _pytest_report() -> dict:
    if not _PYTEST_REPORT:
        _PYTEST_REPORT.update(run_generation_bench())
    return _PYTEST_REPORT


def test_cow_generation_speedup():
    """COW generation must match deep exactly and be >= 3x faster on TPC-H."""
    report = _pytest_report()
    print()
    print("=" * 78)
    print("ARTIFACT: delta-based (COW) pattern application vs deep-copy seed (TPC-H)")
    print("=" * 78)
    print(_render_report(report))
    assert report["identical_alternatives"], "COW changed the generated alternative set"
    assert report["arms"]["cow"]["alternatives"] == report["arms"]["deep"]["alternatives"]
    assert report["speedup_cow_vs_deep"] >= 3.0, (
        f"expected >= 3x, measured {report['speedup_cow_vs_deep']:.2f}x"
    )


def test_prefix_cache_application_reduction():
    """The prefix cache must cut pattern applications >= 2x in both copy modes."""
    report = _pytest_report()
    assert report["identical_alternatives"], "prefix cache changed the alternative set"
    for mode in ("deep", "cow"):
        reduction = report[f"application_reduction_{mode}"]
        assert reduction >= 2.0, (
            f"{mode}: expected >= 2x fewer applications, measured {reduction:.2f}x"
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--pattern-budget", type=int, default=3)
    parser.add_argument("--max-points", type=int, default=3)
    parser.add_argument("--max-alternatives", type=int, default=1500)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--json", action="store_true", help="emit the raw report as JSON")
    args = parser.parse_args(argv)
    report = run_generation_bench(
        scale=args.scale,
        pattern_budget=args.pattern_budget,
        max_points_per_pattern=args.max_points,
        max_alternatives=args.max_alternatives,
        repeats=args.repeats,
    )
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(_render_report(report))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
