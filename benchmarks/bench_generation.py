"""Delta-based (copy-on-write) pattern application vs. the deep-copy seed.

PR 1 made estimation cheap, which left alternative *generation* -- graph
copies and re-validation per candidate -- dominating planning wall-clock
at ``pattern_budget >= 3``.  This benchmark measures the copy-on-write
fast path on the TPC-H refresh workload: the same exhaustive enumeration
runs once with ``copy_mode="deep"`` (every pattern application clones the
whole flow and every candidate is re-validated from scratch) and once
with ``copy_mode="cow"`` (pattern applications share operation payloads
copy-on-write, record structured deltas, validate only the delta
neighbourhood, and deduplicate via incrementally maintained signatures).

The two arms must produce *identical* alternative sets -- same
signatures, same order, same labels -- and the COW arm must be at least
3x faster.  The report includes candidates/sec for both arms and the
application/validation time split from
:class:`~repro.core.alternatives.GenerationStats`.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_generation.py

or through pytest (``pytest benchmarks/bench_generation.py -s``).  The
test suite smoke-runs :func:`run_generation_bench` at tiny scale via
``benchmarks/run_all.py``.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - environment guard
    sys.path.insert(0, str(_SRC))

from repro.core.alternatives import AlternativeGenerator  # noqa: E402
from repro.core.configuration import ProcessingConfiguration  # noqa: E402
from repro.core.policies import HeuristicPolicy  # noqa: E402
from repro.patterns.registry import default_palette  # noqa: E402
from repro.workloads import tpch_refresh_flow  # noqa: E402


def _run_arm(flow, mode: str, *, pattern_budget, max_points_per_pattern, max_alternatives):
    """One generation run; returns (seconds, [(label, signature)], stats dict)."""
    configuration = ProcessingConfiguration(
        pattern_budget=pattern_budget,
        max_points_per_pattern=max_points_per_pattern,
        max_alternatives=max_alternatives,
        copy_mode=mode,
    )
    generator = AlternativeGenerator(default_palette(), HeuristicPolicy(), configuration)
    started = time.perf_counter()
    alternatives = generator.generate(flow)
    seconds = time.perf_counter() - started
    outcome = [(alt.label, alt.flow.signature()) for alt in alternatives]
    return seconds, outcome, generator.last_stats.as_dict()


def run_generation_bench(
    flow=None,
    *,
    scale: float = 0.05,
    pattern_budget: int = 3,
    max_points_per_pattern: int = 3,
    max_alternatives: int = 1500,
    repeats: int = 3,
) -> dict:
    """Time deep vs. COW generation and return a comparison report.

    Each arm runs ``repeats`` times; the reported wall-clock is the
    median, which keeps the speedup claim robust against scheduler noise.
    """
    if flow is None:
        flow = tpch_refresh_flow(scale=scale)
    knobs = dict(
        pattern_budget=pattern_budget,
        max_points_per_pattern=max_points_per_pattern,
        max_alternatives=max_alternatives,
    )

    arms: dict[str, dict] = {}
    outcomes: dict[str, list] = {}
    for mode in ("deep", "cow"):
        seconds: list[float] = []
        stats: dict = {}
        for _ in range(max(1, repeats)):
            elapsed, outcome, stats = _run_arm(flow, mode, **knobs)
            seconds.append(elapsed)
            outcomes[mode] = outcome
        median_seconds = statistics.median(seconds)
        arms[mode] = {
            "seconds": median_seconds,
            "seconds_all": seconds,
            "alternatives": len(outcomes[mode]),
            "candidates_per_second": (
                len(outcomes[mode]) / median_seconds if median_seconds > 0 else 0.0
            ),
            "apply_seconds": stats["apply_seconds"],
            "validation_seconds": stats["validation_seconds"],
            "stats": stats,
        }

    return {
        "workload": flow.name,
        "flow_operations": flow.node_count,
        "flow_transitions": flow.edge_count,
        **knobs,
        "repeats": repeats,
        "arms": arms,
        "identical_alternatives": outcomes["deep"] == outcomes["cow"],
        "speedup_cow_vs_deep": arms["deep"]["seconds"] / arms["cow"]["seconds"],
    }


def _render_report(report: dict) -> str:
    lines = [
        f"workload: {report['workload']}  ({report['flow_operations']} operations, "
        f"budget={report['pattern_budget']}, "
        f"max_points={report['max_points_per_pattern']})",
        f"{'arm':<6} {'wall clock':>12} {'alternatives':>14} {'cand/sec':>10} "
        f"{'apply':>9} {'validate':>9}",
    ]
    for name, arm in report["arms"].items():
        lines.append(
            f"{name:<6} {arm['seconds']:>10.3f} s {arm['alternatives']:>14} "
            f"{arm['candidates_per_second']:>10.0f} "
            f"{arm['apply_seconds']:>7.2f} s {arm['validation_seconds']:>7.2f} s"
        )
    lines.append(
        f"cow vs deep: {report['speedup_cow_vs_deep']:.2f}x   "
        f"identical alternative sets: {report['identical_alternatives']}"
    )
    return "\n".join(lines)


def test_cow_generation_speedup():
    """COW generation must match deep exactly and be >= 3x faster on TPC-H."""
    report = run_generation_bench()
    print()
    print("=" * 78)
    print("ARTIFACT: delta-based (COW) pattern application vs deep-copy seed (TPC-H)")
    print("=" * 78)
    print(_render_report(report))
    assert report["identical_alternatives"], "COW changed the generated alternative set"
    assert report["arms"]["cow"]["alternatives"] == report["arms"]["deep"]["alternatives"]
    assert report["speedup_cow_vs_deep"] >= 3.0, (
        f"expected >= 3x, measured {report['speedup_cow_vs_deep']:.2f}x"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--pattern-budget", type=int, default=3)
    parser.add_argument("--max-points", type=int, default=3)
    parser.add_argument("--max-alternatives", type=int, default=1500)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--json", action="store_true", help="emit the raw report as JSON")
    args = parser.parse_args(argv)
    report = run_generation_bench(
        scale=args.scale,
        pattern_budget=args.pattern_budget,
        max_points_per_pattern=args.max_points,
        max_alternatives=args.max_alternatives,
        repeats=args.repeats,
    )
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(_render_report(report))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
