"""DEMO3 -- placement-policy ablation (heuristic vs exhaustive vs random).

Section 3 describes heuristics that determine the fitness of FCPs for
different parts of the flow (checkpoints after the most complex
operations, data cleaning close to the sources) and custom deployment
policies built on them.  This ablation compares three policies on the
purchases flow: for the same per-pattern point allowance, the heuristic
policy should reach (nearly) the best quality found by the exhaustive
policy while evaluating far fewer alternatives than exhaustive-with-all-
points, and should beat the random policy on the quality of the best
alternative found per characteristic.
"""

import pytest

from repro.core import Planner, ProcessingConfiguration
from repro.core.policies import ExhaustivePolicy, HeuristicPolicy, RandomPolicy
from repro.quality.framework import QualityCharacteristic
from repro.viz.tables import render_table

from conftest import print_artifact


def _plan(flow, policy, points_per_pattern, budget=1):
    config = ProcessingConfiguration(
        pattern_budget=budget,
        max_points_per_pattern=points_per_pattern,
        simulation_runs=2,
        max_alternatives=5_000,
    )
    planner = Planner(configuration=config, policy=policy)
    return planner.plan(flow)


@pytest.fixture(scope="module")
def ablation_results(purchases):
    """Plan the purchases flow under the three policies."""
    return {
        "heuristic (top-2 fit points)": _plan(purchases, HeuristicPolicy(), 2),
        "random (2 points)": _plan(purchases, RandomPolicy(seed=5), 2),
        "exhaustive (all points)": _plan(purchases, ExhaustivePolicy(), 1_000),
    }


def test_demo3_policy_ablation_quality_vs_effort(benchmark, ablation_results, purchases):
    """Heuristic placement reaches near-exhaustive quality with far fewer alternatives."""
    characteristics = (
        QualityCharacteristic.PERFORMANCE,
        QualityCharacteristic.DATA_QUALITY,
        QualityCharacteristic.RELIABILITY,
    )
    rows = []
    best = {}
    for label, result in ablation_results.items():
        scores = {
            c: max(alt.profile.score(c) for alt in result.alternatives) for c in characteristics
        }
        best[label] = scores
        rows.append(
            {
                "policy": label,
                "alternatives_evaluated": len(result.alternatives),
                **{c.value: f"{scores[c]:6.1f}" for c in characteristics},
            }
        )
    print_artifact("DEMO3 -- deployment-policy ablation (purchases flow, budget 1)", render_table(rows))

    heuristic = best["heuristic (top-2 fit points)"]
    exhaustive = best["exhaustive (all points)"]
    heuristic_count = len(ablation_results["heuristic (top-2 fit points)"].alternatives)
    exhaustive_count = len(ablation_results["exhaustive (all points)"].alternatives)

    # effort: heuristic explores a fraction of the exhaustive space
    assert heuristic_count < exhaustive_count
    # quality: the heuristic policy keeps at least 90% of the best composite
    # score the exhaustive policy finds on every examined characteristic
    # (the gap it gives up is the price of evaluating far fewer designs).
    for characteristic in characteristics:
        assert heuristic[characteristic] >= 0.9 * exhaustive[characteristic]

    # cost of planning once with the heuristic policy
    benchmark.pedantic(
        _plan, args=(purchases, HeuristicPolicy(), 2), rounds=2, iterations=1
    )


def test_demo3_heuristic_places_cleaning_near_sources(benchmark, purchases):
    """The heuristic policy deploys data-cleaning FCPs adjacent to the extraction operations."""
    result = _plan(purchases, HeuristicPolicy(), 1)

    def cleaning_placements():
        placements = []
        for alternative in result.alternatives:
            for application in alternative.applications:
                if application.pattern in (
                    "FilterNullValues",
                    "RemoveDuplicateEntries",
                    "CrosscheckSources",
                ):
                    placements.append(application.point.edge[0])
        return placements

    placements = benchmark(cleaning_placements)
    assert placements
    for source_op in placements:
        assert purchases.operation(source_op).kind.is_source or (
            purchases.distance_from_sources(source_op) <= 1
        )


def test_demo3_checkpoint_placed_after_expensive_operations(benchmark, purchases):
    """The heuristic policy prefers checkpoints after the costly derive task."""
    result = _plan(purchases, HeuristicPolicy(), 1)

    def checkpoint_edges():
        edges = []
        for alternative in result.alternatives:
            for application in alternative.applications:
                if application.pattern == "AddCheckpoint":
                    edges.append(application.point)
        return edges

    points = benchmark(checkpoint_edges)
    assert points
    best_fitness = max(p.fitness for p in points)
    all_points = [
        p.fitness
        for p in __import__("repro.patterns.reliability", fromlist=["AddCheckpoint"])
        .AddCheckpoint()
        .find_application_points(purchases)
    ]
    # the selected placement is the best-rated one on the flow
    assert best_fitness == pytest.approx(max(all_points))
