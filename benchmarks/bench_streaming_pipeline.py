"""Streaming planning pipeline vs. the eager seed pipeline.

The paper offloads the evaluation of the factorial alternative space to
elastic EC2 infrastructure so that the interactive redesign session stays
responsive.  This benchmark measures the reproduction's local substitute
for that responsiveness on the TPC-H refresh workload: an interactive
session of ``iterations`` redesign cycles where the user re-plans
``replans`` extra time(s) per cycle (e.g. after tightening a constraint)
before adopting an alternative.

Three arms run the identical session:

* **eager** -- the seed behaviour: materialize the full alternative list,
  evaluate it as one barrier batch, profile caching disabled.  Every
  re-plan re-simulates every flow.
* **streaming** -- the lazy generator feeds the evaluator with a bounded
  in-flight window and the shared :class:`ProfileCache` memoizes profiles,
  so re-plans and the next iteration's baseline are served from the cache.
* **screening** -- streaming plus two-phase beam screening: static-only
  scores for everyone, full simulation only for the top ``screening_beam``.

The report includes wall-clock per arm, the cache hit rate, and an
equivalence check that the streaming arm adopts byte-identical flows (the
screening arm is allowed to differ: it deliberately prunes).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_streaming_pipeline.py

or through pytest (``pytest benchmarks/bench_streaming_pipeline.py -s``).
The test suite smoke-runs :func:`run_comparison` on a tiny flow.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:  # pragma: no cover - environment guard
    sys.path.insert(0, str(_SRC))

from repro.core import Planner, ProcessingConfiguration  # noqa: E402
from repro.core.configuration import MeasureConstraint  # noqa: E402
from repro.core.pareto import pareto_front_profiles  # noqa: E402
from repro.workloads import tpch_refresh_flow  # noqa: E402


def _select_best(planner: Planner, result):
    """The default session chooser: best skyline flow on the primary goal."""
    pool = result.skyline or result.alternatives
    primary = planner.configuration.skyline_characteristics[0]
    return max(pool, key=lambda alt: alt.profile.score(primary))


def _replan_configuration(config: ProcessingConfiguration) -> ProcessingConfiguration:
    """The user's tweaked configuration for the re-plan: add a loose constraint."""
    constraint = MeasureConstraint("reliability", min_value=0.0)
    return replace(config, constraints=config.constraints + (constraint,))


def _eager_plan(planner: Planner, flow):
    """The seed pipeline: materialize everything, evaluate as one barrier batch."""
    config = planner.configuration
    baseline = planner.evaluate_flow(flow)
    alternatives = planner.evaluate_alternatives(planner.generate_alternatives(flow))
    kept, discarded = [], 0
    for alternative in alternatives:
        if config.satisfies_constraints(alternative.profile):
            kept.append(alternative)
        else:
            discarded += 1
    characteristics = tuple(config.skyline_characteristics)
    profiles = [alt.profile for alt in kept]
    skyline = pareto_front_profiles(profiles, characteristics) if profiles else []
    from repro.core.planner import PlanningResult

    return PlanningResult(
        initial_flow=flow,
        baseline_profile=baseline,
        alternatives=kept,
        skyline_indices=skyline,
        characteristics=characteristics,
        discarded_by_constraints=discarded,
    )


def _run_session(flow, config: ProcessingConfiguration, iterations: int, replans: int, eager: bool):
    """Run one interactive session; returns (adopted signatures, evaluations, planner)."""
    planner = Planner(configuration=config)
    plan = (lambda f: _eager_plan(planner, f)) if eager else planner.plan
    current = flow
    adopted = []
    evaluated = 0
    for _ in range(iterations):
        result = plan(current)
        evaluated += len(result.alternatives) + 1
        for _ in range(replans):
            planner.configuration = _replan_configuration(config)
            result = plan(current)
            evaluated += len(result.alternatives) + 1
            planner.configuration = config
        best = _select_best(planner, result)
        adopted.append(best.flow.signature())
        current = best.flow
    return adopted, evaluated, planner


def run_comparison(
    flow=None,
    *,
    scale: float = 0.05,
    iterations: int = 2,
    replans: int = 1,
    simulation_runs: int = 5,
    workers: int = 2,
    pattern_budget: int = 2,
    max_points_per_pattern: int = 2,
    max_alternatives: int = 80,
    screening_beam: int = 10,
) -> dict:
    """Time the three arms on one workload and return a comparison report."""
    if flow is None:
        flow = tpch_refresh_flow(scale=scale)
    base = dict(
        pattern_budget=pattern_budget,
        max_points_per_pattern=max_points_per_pattern,
        simulation_runs=simulation_runs,
        max_alternatives=max_alternatives,
        parallel_workers=workers,
    )

    arms = {}
    eager_config = ProcessingConfiguration(**base, cache_profiles=False)
    t0 = time.perf_counter()
    eager_adopted, eager_evals, _ = _run_session(flow, eager_config, iterations, replans, eager=True)
    arms["eager"] = {"seconds": time.perf_counter() - t0, "evaluations": eager_evals}

    streaming_config = ProcessingConfiguration(**base)
    t0 = time.perf_counter()
    stream_adopted, stream_evals, stream_planner = _run_session(
        flow, streaming_config, iterations, replans, eager=False
    )
    arms["streaming"] = {
        "seconds": time.perf_counter() - t0,
        "evaluations": stream_evals,
        "cache": stream_planner.profile_cache.stats.as_dict(),
    }

    screening_config = ProcessingConfiguration(**base, screening_beam=screening_beam)
    t0 = time.perf_counter()
    _, screen_evals, screen_planner = _run_session(
        flow, screening_config, iterations, replans, eager=False
    )
    arms["screening"] = {
        "seconds": time.perf_counter() - t0,
        "evaluations": screen_evals,
        "cache": screen_planner.profile_cache.stats.as_dict(),
    }

    return {
        "workload": flow.name,
        "iterations": iterations,
        "replans_per_iteration": replans,
        "arms": arms,
        "equivalent_selections": stream_adopted == eager_adopted,
        "speedup_streaming_vs_eager": arms["eager"]["seconds"] / arms["streaming"]["seconds"],
        "speedup_screening_vs_eager": arms["eager"]["seconds"] / arms["screening"]["seconds"],
    }


def _render_report(report: dict) -> str:
    lines = [
        f"workload: {report['workload']}  "
        f"({report['iterations']} iterations, {report['replans_per_iteration']} re-plan(s) each)",
        f"{'arm':<12} {'wall clock':>12} {'profiles evaluated':>20} {'cache hit rate':>16}",
    ]
    for name, arm in report["arms"].items():
        cache = arm.get("cache") or {}
        rate = f"{cache['hit_rate'] * 100.0:.1f}%" if cache else "off"
        lines.append(
            f"{name:<12} {arm['seconds']:>10.3f} s {arm['evaluations']:>20} {rate:>16}"
        )
    lines.append(
        "streaming vs eager: "
        f"{report['speedup_streaming_vs_eager']:.2f}x   "
        "screening vs eager: "
        f"{report['speedup_screening_vs_eager']:.2f}x   "
        f"identical selections: {report['equivalent_selections']}"
    )
    return "\n".join(lines)


def test_streaming_pipeline_beats_eager():
    """Streaming + cached planning must beat the eager baseline on TPC-H."""
    report = run_comparison()
    print()
    print("=" * 78)
    print("ARTIFACT: streaming planning pipeline vs eager seed pipeline (TPC-H)")
    print("=" * 78)
    print(_render_report(report))
    assert report["equivalent_selections"], "streaming changed the adopted flows"
    assert report["arms"]["streaming"]["cache"]["hits"] > 0
    assert report["arms"]["streaming"]["seconds"] < report["arms"]["eager"]["seconds"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--iterations", type=int, default=2)
    parser.add_argument("--replans", type=int, default=1)
    parser.add_argument("--simulation-runs", type=int, default=5)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--screening-beam", type=int, default=10)
    parser.add_argument("--json", action="store_true", help="emit the raw report as JSON")
    args = parser.parse_args(argv)
    report = run_comparison(
        scale=args.scale,
        iterations=args.iterations,
        replans=args.replans,
        simulation_runs=args.simulation_runs,
        workers=args.workers,
        screening_beam=args.screening_beam,
    )
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(_render_report(report))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
