"""A TPC-H-based ETL process.

The paper's demo loads an ETL process derived from the TPC-H benchmark,
containing tens of operators and extracting data from multiple sources.
This module re-creates such a process at laptop scale: it refreshes an
order/line-item data mart from the TPC-H source tables (customer, orders,
lineitem, part, supplier, nation/region), performing the usual warehouse
steps -- extraction, filtering of the refresh window, surrogate-key
assignment, dimension lookups, derivation of revenue metrics, aggregation
into a summary table and fact/summary loads.
"""

from __future__ import annotations

from repro.etl.builder import FlowBuilder
from repro.etl.graph import ETLGraph
from repro.etl.operations import OperationKind
from repro.etl.schema import DataType, Field, Schema


def tpch_schemas() -> dict[str, Schema]:
    """Schemas of the TPC-H source tables used by the refresh flow."""
    return {
        "customer": Schema.of(
            Field("c_custkey", DataType.INTEGER, nullable=False, key=True),
            Field("c_name", DataType.STRING),
            Field("c_nationkey", DataType.INTEGER),
            Field("c_acctbal", DataType.DECIMAL),
            Field("c_mktsegment", DataType.STRING),
        ),
        "orders": Schema.of(
            Field("o_orderkey", DataType.INTEGER, nullable=False, key=True),
            Field("o_custkey", DataType.INTEGER),
            Field("o_orderstatus", DataType.STRING),
            Field("o_totalprice", DataType.DECIMAL),
            Field("o_orderdate", DataType.DATE),
            Field("o_orderpriority", DataType.STRING),
        ),
        "lineitem": Schema.of(
            Field("l_orderkey", DataType.INTEGER, nullable=False, key=True),
            Field("l_linenumber", DataType.INTEGER, nullable=False, key=True),
            Field("l_partkey", DataType.INTEGER),
            Field("l_suppkey", DataType.INTEGER),
            Field("l_quantity", DataType.DECIMAL),
            Field("l_extendedprice", DataType.DECIMAL),
            Field("l_discount", DataType.DECIMAL),
            Field("l_tax", DataType.DECIMAL),
            Field("l_shipdate", DataType.DATE),
            Field("l_returnflag", DataType.STRING),
        ),
        "part": Schema.of(
            Field("p_partkey", DataType.INTEGER, nullable=False, key=True),
            Field("p_name", DataType.STRING),
            Field("p_brand", DataType.STRING),
            Field("p_type", DataType.STRING),
            Field("p_retailprice", DataType.DECIMAL),
        ),
        "supplier": Schema.of(
            Field("s_suppkey", DataType.INTEGER, nullable=False, key=True),
            Field("s_name", DataType.STRING),
            Field("s_nationkey", DataType.INTEGER),
            Field("s_acctbal", DataType.DECIMAL),
        ),
        "nation": Schema.of(
            Field("n_nationkey", DataType.INTEGER, nullable=False, key=True),
            Field("n_name", DataType.STRING),
            Field("n_regionkey", DataType.INTEGER),
        ),
    }


def tpch_refresh_flow(scale: float = 1.0) -> ETLGraph:
    """Build the TPC-H refresh ETL flow (about 30 operators, 6 sources).

    Parameters
    ----------
    scale:
        Multiplier on the row counts of the refresh extracts; ``1.0``
        yields a laptop-scale workload (tens of thousands of rows).
    """
    schemas = tpch_schemas()
    builder = FlowBuilder("tpch_refresh")

    def rows(base: int) -> int:
        return max(1, int(base * scale))

    # --- extraction -----------------------------------------------------
    customer = builder.extract_table(
        "extract_customer", schema=schemas["customer"], rows=rows(15_000),
        null_rate=0.02, duplicate_rate=0.01, error_rate=0.01,
        freshness_lag=120.0, update_frequency=24.0,
    )
    orders = builder.extract_table(
        "extract_orders", schema=schemas["orders"], rows=rows(30_000),
        null_rate=0.03, duplicate_rate=0.01, error_rate=0.02,
        freshness_lag=60.0, update_frequency=48.0,
    )
    lineitem = builder.extract_table(
        "extract_lineitem", schema=schemas["lineitem"], rows=rows(60_000),
        null_rate=0.04, duplicate_rate=0.02, error_rate=0.02,
        freshness_lag=60.0, update_frequency=48.0,
    )
    part = builder.extract_table(
        "extract_part", schema=schemas["part"], rows=rows(10_000),
        null_rate=0.01, error_rate=0.01, freshness_lag=240.0, update_frequency=4.0,
    )
    supplier = builder.extract_table(
        "extract_supplier", schema=schemas["supplier"], rows=rows(2_000),
        null_rate=0.01, error_rate=0.01, freshness_lag=240.0, update_frequency=4.0,
    )
    nation = builder.extract_file(
        "extract_nation", schema=schemas["nation"], rows=25, path="nation.tbl",
    )

    # --- customer dimension ----------------------------------------------
    cust_filter = builder.filter(
        "filter_active_customers", predicate="c_acctbal >= 0",
        selectivity=0.95, after=customer,
    )
    cust_nation = builder.lookup(
        "lookup_customer_nation", reference="nation", on=["c_nationkey"],
        after=[cust_filter, nation],
        schema=schemas["customer"].merge(schemas["nation"]),
    )
    cust_sk = builder.surrogate_key(
        "assign_customer_sk", key_field="customer_sk", after=cust_nation,
    )
    builder.load_table("load_dim_customer", table="dim_customer", after=cust_sk)

    # --- part / supplier dimensions --------------------------------------
    part_convert = builder.add(
        OperationKind.CONVERT,
        "convert_part_types", after=part,
        config={"conversions": {"p_retailprice": "decimal(12,2)"}},
    )
    part_sk = builder.surrogate_key("assign_part_sk", key_field="part_sk", after=part_convert)
    builder.load_table("load_dim_part", table="dim_part", after=part_sk)

    supp_nation = builder.lookup(
        "lookup_supplier_nation", reference="nation", on=["s_nationkey"],
        after=[supplier, nation],
        schema=schemas["supplier"].merge(schemas["nation"]),
    )
    supp_sk = builder.surrogate_key("assign_supplier_sk", key_field="supplier_sk", after=supp_nation)
    builder.load_table("load_dim_supplier", table="dim_supplier", after=supp_sk)

    # --- order / lineitem fact pipeline -----------------------------------
    orders_window = builder.filter(
        "filter_refresh_window", predicate="o_orderdate >= :window_start",
        selectivity=0.35, after=orders,
    )
    lineitem_window = builder.filter(
        "filter_shipped_lineitems", predicate="l_shipdate >= :window_start",
        selectivity=0.4, after=lineitem,
    )
    order_line_join = builder.join(
        "join_orders_lineitems", orders_window, lineitem_window,
        on=["o_orderkey", "l_orderkey"], selectivity=1.2, cost_per_tuple=0.03,
    )
    cust_join = builder.join(
        "join_customer", order_line_join, cust_sk,
        on=["o_custkey", "c_custkey"], selectivity=1.0, cost_per_tuple=0.02,
    )
    derive_revenue = builder.derive(
        "derive_revenue_measures",
        expressions={
            "revenue": "l_extendedprice * (1 - l_discount)",
            "charge": "l_extendedprice * (1 - l_discount) * (1 + l_tax)",
            "margin": "revenue - p_retailprice * l_quantity",
        },
        cost_per_tuple=0.05, after=cust_join,
    )
    derive_revenue.properties.failure_rate = 0.05
    part_lookup = builder.lookup(
        "lookup_part_dimension", reference="dim_part", on=["l_partkey"],
        after=[derive_revenue, part_sk], error_rate=0.01,
    )
    supp_lookup = builder.lookup(
        "lookup_supplier_dimension", reference="dim_supplier", on=["l_suppkey"],
        after=[part_lookup, supp_sk], error_rate=0.01,
    )
    fact_sk = builder.surrogate_key("assign_fact_sk", key_field="sales_sk", after=supp_lookup)
    builder.load_table("load_fact_sales", table="fact_sales", after=fact_sk)

    # --- aggregate summary branch ------------------------------------------
    sort_for_agg = builder.sort("sort_by_nation_date", by=["n_name", "o_orderdate"], after=supp_lookup)
    aggregate = builder.aggregate(
        "aggregate_revenue_by_nation",
        group_by=["n_name", "o_orderdate"],
        aggregations={"revenue": "sum", "charge": "sum", "l_quantity": "sum"},
        selectivity=0.05, cost_per_tuple=0.04, after=sort_for_agg,
    )
    aggregate.properties.failure_rate = 0.03
    builder.load_table("load_summary_revenue", table="summary_revenue_nation", after=aggregate)

    return builder.build()
