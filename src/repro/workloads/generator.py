"""Parameterised random ETL flow generator.

The scalability claims of the paper (thousands of alternative flows from
processes with tens of operators) are exercised on generated flows of
controlled size: the generator produces valid ETL flows with a requested
number of operations, multiple sources, a mix of row-level
transformations, occasional joins and aggregations, and one or more loads.
Generation is seeded and therefore reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.etl.builder import FlowBuilder
from repro.etl.graph import ETLGraph
from repro.etl.operations import Operation
from repro.etl.schema import DataType, Field, Schema


@dataclass(frozen=True)
class RandomFlowConfig:
    """Parameters of the random flow generator.

    Attributes
    ----------
    operations:
        Approximate number of operations in the generated flow (the
        generator may add a handful of structural operations such as the
        final loads).
    sources:
        Number of extraction operations.
    rows_per_source:
        Base extraction volume per source.
    seed:
        Seed of the generator.
    failure_prone_fraction:
        Fraction of transformation operations given a non-zero failure
        rate (so that reliability patterns have something to improve).
    """

    operations: int = 20
    sources: int = 3
    rows_per_source: int = 10_000
    seed: int = 42
    failure_prone_fraction: float = 0.2

    def __post_init__(self) -> None:
        if self.operations < 4:
            raise ValueError("a generated flow needs at least 4 operations")
        if self.sources < 1:
            raise ValueError("a generated flow needs at least one source")
        if self.sources > self.operations // 2:
            raise ValueError("too many sources for the requested number of operations")


def _random_schema(rng: random.Random, index: int) -> Schema:
    """A plausible record schema with keys, numerics, dates and nullable fields."""
    fields = [
        Field(f"id_{index}", DataType.INTEGER, nullable=False, key=True),
        Field(f"code_{index}", DataType.STRING, nullable=True),
        Field(f"amount_{index}", DataType.DECIMAL, nullable=True),
        Field(f"quantity_{index}", DataType.INTEGER, nullable=True),
        Field(f"event_date_{index}", DataType.DATE, nullable=True),
    ]
    extra = rng.randint(0, 3)
    for i in range(extra):
        fields.append(Field(f"attr_{index}_{i}", DataType.STRING, nullable=True))
    return Schema(tuple(fields))


def random_flow(config: RandomFlowConfig | None = None) -> ETLGraph:
    """Generate a random but valid ETL flow according to ``config``."""
    config = config or RandomFlowConfig()
    rng = random.Random(config.seed)
    builder = FlowBuilder(f"generated_flow_{config.seed}_{config.operations}")

    # Sources.
    branch_heads: list[Operation] = []
    for index in range(config.sources):
        source = builder.extract_table(
            f"extract_source_{index}",
            schema=_random_schema(rng, index),
            rows=int(config.rows_per_source * rng.uniform(0.5, 1.5)),
            null_rate=rng.uniform(0.0, 0.08),
            duplicate_rate=rng.uniform(0.0, 0.04),
            error_rate=rng.uniform(0.0, 0.05),
            freshness_lag=rng.uniform(10.0, 600.0),
            update_frequency=rng.choice([1.0, 4.0, 24.0, 96.0]),
        )
        branch_heads.append(source)

    # Transformation operations distributed over the branches.
    remaining = config.operations - config.sources - 1  # reserve one load
    transformation_count = 0
    while transformation_count < remaining:
        branch_index = rng.randrange(len(branch_heads))
        head = branch_heads[branch_index]
        choice = rng.random()
        name = f"op_{transformation_count}"
        if choice < 0.30:
            head = builder.filter(
                f"filter_{name}",
                predicate=f"amount_{branch_index} > {rng.randint(0, 100)}",
                selectivity=rng.uniform(0.3, 0.95),
                after=head,
            )
        elif choice < 0.60:
            head = builder.derive(
                f"derive_{name}",
                expressions={"computed": f"amount * {rng.uniform(0.5, 2.0):.2f}"},
                cost_per_tuple=rng.uniform(0.01, 0.06),
                after=head,
            )
        elif choice < 0.75:
            head = builder.lookup(
                f"lookup_{name}",
                reference=f"reference_{transformation_count}",
                on=["id_0"],
                cost_per_tuple=rng.uniform(0.01, 0.03),
                error_rate=rng.uniform(0.0, 0.02),
                after=head,
            )
        elif choice < 0.85:
            head = builder.surrogate_key(
                f"surrogate_{name}", key_field=f"sk_{transformation_count}", after=head,
            )
        elif choice < 0.93 and len(branch_heads) > 1:
            # Join two branches together (only when they are still distinct;
            # earlier joins may already have merged them into the same head).
            other_index = rng.randrange(len(branch_heads))
            if other_index == branch_index:
                other_index = (other_index + 1) % len(branch_heads)
            other = branch_heads[other_index]
            if other is head:
                head = builder.derive(
                    f"derive_{name}",
                    expressions={"computed": "amount"},
                    cost_per_tuple=rng.uniform(0.01, 0.06),
                    after=head,
                )
            else:
                head = builder.join(
                    f"join_{name}", head, other, on=["id_0"],
                    selectivity=rng.uniform(0.8, 1.2),
                    cost_per_tuple=rng.uniform(0.02, 0.04),
                )
                # The other branch now continues through the join.
                branch_heads[other_index] = head
        else:
            head = builder.aggregate(
                f"aggregate_{name}",
                group_by=["code_0"],
                aggregations={"amount": "sum"},
                selectivity=rng.uniform(0.05, 0.3),
                cost_per_tuple=rng.uniform(0.02, 0.06),
                after=head,
            )
        if rng.random() < config.failure_prone_fraction:
            head.properties.failure_rate = rng.uniform(0.01, 0.1)
        branch_heads[branch_index] = head
        transformation_count += 1

    # Terminate the flow: independent branches are consolidated through a
    # union so the generated process forms one connected workflow, then
    # loaded into the target table.
    unique_heads = []
    for head in branch_heads:
        if head not in unique_heads:
            unique_heads.append(head)
    if len(unique_heads) > 1:
        tail = builder.union(
            "consolidate_branches", unique_heads, schema=unique_heads[0].output_schema
        )
    else:
        tail = unique_heads[0]
    builder.load_table("load_target", table="target", after=tail)

    return builder.build()
