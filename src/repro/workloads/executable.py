"""Workload presets for measured (executed) planning runs.

Calibration compares the simulator's ranking with measured wall time, so
the pattern palette is restricted to patterns with *genuine* execution
side effects on the local backends: data-quality filters change the row
volume every downstream operator touches, and checkpoints add real
serialization work proportional to the rows flowing through them.
Patterns whose simulated benefit has no executable counterpart here
(``ParallelizeTask`` -- the reference backends are single-threaded --
resource-tier and schedule tweaks, encryption stubs) would only add rank
noise, so the calibration preset leaves them out.
"""

from __future__ import annotations

from repro.core.configuration import ProcessingConfiguration
from repro.etl.graph import ETLGraph
from repro.workloads.tpch import tpch_refresh_flow

__all__ = ["CALIBRATION_PATTERNS", "calibration_configuration", "calibration_flow"]

#: Patterns whose effect is measurable when flows actually execute.
CALIBRATION_PATTERNS: tuple[str, ...] = (
    "FilterNullValues",
    "RemoveDuplicateEntries",
    "AddCheckpoint",
)


def calibration_configuration(
    pattern_budget: int = 2,
    seed: int = 11,
    **overrides,
) -> ProcessingConfiguration:
    """A planning configuration suited to measured top-k calibration.

    Restricts the palette to :data:`CALIBRATION_PATTERNS` and keeps the
    run deterministic; any field of
    :class:`~repro.core.configuration.ProcessingConfiguration` can still
    be overridden by keyword.
    """
    settings = {
        "pattern_names": CALIBRATION_PATTERNS,
        "pattern_budget": pattern_budget,
        "seed": seed,
    }
    settings.update(overrides)
    return ProcessingConfiguration(**settings)


def calibration_flow(scale: float = 0.05, defect_boost: float = 8.0) -> ETLGraph:
    """The TPC-H refresh flow with deliberately dirty sources.

    The baseline TPC-H sources carry 1-4% defects -- at that rate a
    data-quality pattern changes the downstream row volume (and thus the
    wall time) by less than run-to-run timing noise, and a measured
    ranking over near-tied designs is meaningless.  Boosting the
    extraction defect rates makes each pattern placement's effect
    *material* in both worlds: the simulator sees it through defect
    propagation, the executor through actually dropped rows.  Volumes and
    structure are untouched; only ``null_rate``/``duplicate_rate``/
    ``error_rate`` on the extraction operations grow (capped at 45%).
    """
    flow = tpch_refresh_flow(scale=scale)
    for operation in flow.operations():
        if not operation.kind.is_source:
            continue
        properties = flow.mutable_operation(operation.op_id).properties
        for rate_name in ("null_rate", "duplicate_rate", "error_rate"):
            boosted = min(0.45, getattr(properties, rate_name) * defect_boost)
            setattr(properties, rate_name, boosted)
    return flow
