"""The ``S_Purchases`` flow of Fig. 2.

Fig. 2 of the paper illustrates pattern generation on a purchases sub-flow
that extracts from the ``S_Purchases_3`` and ``S_Purchases_4`` sources,
filters on line-item / record-end-date predicates, splits the required
attributes, derives values (the computation-intensive task the performance
patterns target) and merges the results.  This module rebuilds that flow
with a cost model that makes the ``DERIVE VALUES`` step dominate the cycle
time, so that the Fig. 2 bench can show the same trade-offs the figure
illustrates (parallelism/partitioning lowers cycle time; a checkpoint after
the derive improves reliability at a small performance cost).
"""

from __future__ import annotations

from repro.etl.builder import FlowBuilder
from repro.etl.graph import ETLGraph
from repro.etl.schema import DataType, Field, Schema


def purchases_schema() -> Schema:
    """Schema of the purchase line items extracted from the sources."""
    return Schema.of(
        Field("purchase_id", DataType.INTEGER, nullable=False, key=True),
        Field("purchase_line_item_id", DataType.INTEGER, nullable=False, key=True),
        Field("item_id", DataType.INTEGER, nullable=True),
        Field("store_id", DataType.INTEGER, nullable=True),
        Field("quantity", DataType.INTEGER, nullable=True),
        Field("unit_price", DataType.DECIMAL, nullable=True),
        Field("purchase_date", DataType.DATE, nullable=True),
        Field("item_record_end_date", DataType.DATE, nullable=True),
        Field("store_record_end_date", DataType.DATE, nullable=True),
    )


def purchases_flow(
    rows_per_source: int = 20_000,
    derive_cost_per_tuple: float = 0.08,
    failure_rate: float = 0.08,
) -> ETLGraph:
    """Build the Fig. 2 ``S_Purchases`` flow.

    Parameters
    ----------
    rows_per_source:
        Rows extracted from each of the two purchase sources.
    derive_cost_per_tuple:
        Per-tuple cost of the ``DERIVE VALUES`` task; large enough that the
        task dominates the flow's cycle time (the paper calls it the
        computational-intensive task).
    failure_rate:
        Failure probability of the derive task per execution, giving the
        reliability pattern something to protect against.
    """
    schema = purchases_schema()
    builder = FlowBuilder("s_purchases")

    src3 = builder.extract_table(
        "S_Purchases_3",
        schema=schema,
        rows=rows_per_source,
        null_rate=0.06,
        duplicate_rate=0.02,
        error_rate=0.03,
        freshness_lag=45.0,
        update_frequency=24.0,
    )
    src4 = builder.extract_table(
        "S_Purchases_4",
        schema=schema,
        rows=rows_per_source,
        null_rate=0.04,
        duplicate_rate=0.03,
        error_rate=0.02,
        freshness_lag=30.0,
        update_frequency=24.0,
    )
    union = builder.union("union_purchases", [src3, src4], schema=schema)
    flt = builder.filter(
        "filter_current_records",
        predicate=(
            "purchase_line_item_id = item_id AND item_record_end_date = null "
            "AND store_record_end_date = null"
        ),
        selectivity=0.7,
        after=union,
    )
    split = builder.project(
        "split_required_attributes",
        keep=[
            "purchase_id",
            "purchase_line_item_id",
            "item_id",
            "store_id",
            "quantity",
            "unit_price",
            "purchase_date",
        ],
        after=flt,
    )
    derive = builder.derive(
        "derive_values",
        expressions={
            "extended_price": "quantity * unit_price",
            "discounted_price": "extended_price * (1 - discount(item_id))",
            "margin": "discounted_price - cost(item_id) * quantity",
        },
        cost_per_tuple=derive_cost_per_tuple,
        after=split,
    )
    derive.properties.failure_rate = failure_rate
    builder.load_table("load_purchases_fact", table="fact_purchases", after=derive)
    return builder.build()
