"""A TPC-DS-based ETL process.

The second demo workload of the paper derives from the TPC-DS benchmark.
This module re-creates a retail sales ETL process over a subset of the
TPC-DS schema: store sales and web sales are extracted together with the
item, customer, store and date dimensions; the two sales channels are
cleansed, conformed to a common schema, enriched with dimension lookups
and slowly-changing-dimension handling, unioned, and loaded into a sales
fact table plus an aggregated channel summary.
"""

from __future__ import annotations

from repro.etl.builder import FlowBuilder
from repro.etl.graph import ETLGraph
from repro.etl.operations import OperationKind
from repro.etl.schema import DataType, Field, Schema


def tpcds_schemas() -> dict[str, Schema]:
    """Schemas of the TPC-DS subset used by the sales flow."""
    sales_fields = [
        Field("sold_date_sk", DataType.INTEGER),
        Field("customer_sk", DataType.INTEGER),
        Field("store_sk", DataType.INTEGER),
        Field("quantity", DataType.INTEGER),
        Field("wholesale_cost", DataType.DECIMAL),
        Field("list_price", DataType.DECIMAL),
        Field("sales_price", DataType.DECIMAL),
        Field("ext_discount_amt", DataType.DECIMAL),
        Field("net_paid", DataType.DECIMAL),
        Field("net_profit", DataType.DECIMAL),
    ]
    return {
        "store_sales": Schema.of(
            Field("ss_ticket_number", DataType.INTEGER, nullable=False, key=True),
            Field("ss_item_sk", DataType.INTEGER, nullable=False, key=True),
            *[f.renamed("ss_" + f.name) for f in sales_fields],
        ),
        "web_sales": Schema.of(
            Field("ws_order_number", DataType.INTEGER, nullable=False, key=True),
            Field("ws_item_sk", DataType.INTEGER, nullable=False, key=True),
            *[f.renamed("ws_" + f.name) for f in sales_fields],
        ),
        "item": Schema.of(
            Field("i_item_sk", DataType.INTEGER, nullable=False, key=True),
            Field("i_item_id", DataType.STRING, nullable=False),
            Field("i_item_desc", DataType.STRING),
            Field("i_brand", DataType.STRING),
            Field("i_category", DataType.STRING),
            Field("i_current_price", DataType.DECIMAL),
            Field("i_rec_start_date", DataType.DATE),
            Field("i_rec_end_date", DataType.DATE),
        ),
        "customer": Schema.of(
            Field("c_customer_sk", DataType.INTEGER, nullable=False, key=True),
            Field("c_customer_id", DataType.STRING, nullable=False),
            Field("c_first_name", DataType.STRING),
            Field("c_last_name", DataType.STRING),
            Field("c_birth_country", DataType.STRING),
            Field("c_email_address", DataType.STRING),
        ),
        "store": Schema.of(
            Field("s_store_sk", DataType.INTEGER, nullable=False, key=True),
            Field("s_store_id", DataType.STRING, nullable=False),
            Field("s_store_name", DataType.STRING),
            Field("s_market_id", DataType.INTEGER),
            Field("s_state", DataType.STRING),
            Field("s_rec_start_date", DataType.DATE),
            Field("s_rec_end_date", DataType.DATE),
        ),
        "date_dim": Schema.of(
            Field("d_date_sk", DataType.INTEGER, nullable=False, key=True),
            Field("d_date", DataType.DATE, nullable=False),
            Field("d_year", DataType.INTEGER),
            Field("d_moy", DataType.INTEGER),
            Field("d_quarter_name", DataType.STRING),
        ),
    }


def tpcds_sales_flow(scale: float = 1.0) -> ETLGraph:
    """Build the TPC-DS sales ETL flow (about 35 operators, 6 sources)."""
    schemas = tpcds_schemas()
    builder = FlowBuilder("tpcds_sales")

    def rows(base: int) -> int:
        return max(1, int(base * scale))

    # --- extraction -----------------------------------------------------
    store_sales = builder.extract_table(
        "extract_store_sales", schema=schemas["store_sales"], rows=rows(50_000),
        null_rate=0.05, duplicate_rate=0.02, error_rate=0.03,
        freshness_lag=30.0, update_frequency=96.0,
    )
    web_sales = builder.extract_table(
        "extract_web_sales", schema=schemas["web_sales"], rows=rows(25_000),
        null_rate=0.07, duplicate_rate=0.03, error_rate=0.04,
        freshness_lag=15.0, update_frequency=96.0,
    )
    item = builder.extract_table(
        "extract_item", schema=schemas["item"], rows=rows(18_000),
        null_rate=0.02, error_rate=0.01, freshness_lag=720.0, update_frequency=1.0,
    )
    customer = builder.extract_table(
        "extract_customer", schema=schemas["customer"], rows=rows(100_000),
        null_rate=0.04, duplicate_rate=0.02, error_rate=0.02,
        freshness_lag=360.0, update_frequency=2.0,
    )
    store = builder.extract_table(
        "extract_store", schema=schemas["store"], rows=rows(1_000),
        null_rate=0.01, freshness_lag=1440.0, update_frequency=1.0,
    )
    date_dim = builder.extract_file(
        "extract_date_dim", schema=schemas["date_dim"], rows=rows(73_000),
        path="date_dim.dat",
    )

    # --- dimension processing ---------------------------------------------
    item_scd = builder.add(
        OperationKind.SLOWLY_CHANGING_DIM, "scd_item", after=item,
        config={"keys": ["i_item_id"], "type": 2},
    )
    item_scd.properties.cost_per_tuple = 0.02
    builder.load_table("load_dim_item", table="dim_item", after=item_scd)

    customer_cleanse = builder.add(
        OperationKind.CLEANSE, "standardise_customer_names", after=customer,
        config={"rules": ["trim", "title_case", "email_lowercase"]},
    )
    customer_cleanse.properties.cost_per_tuple = 0.015
    customer_cleanse.properties.selectivity = 1.0
    customer_sk = builder.surrogate_key(
        "assign_customer_sk", key_field="customer_dim_sk", after=customer_cleanse,
    )
    builder.load_table("load_dim_customer", table="dim_customer", after=customer_sk)

    store_scd = builder.add(
        OperationKind.SLOWLY_CHANGING_DIM, "scd_store", after=store,
        config={"keys": ["s_store_id"], "type": 2},
    )
    builder.load_table("load_dim_store", table="dim_store", after=store_scd)

    date_filter = builder.filter(
        "filter_current_dates", predicate="d_year >= 2023", selectivity=0.1, after=date_dim,
    )
    builder.load_table("load_dim_date", table="dim_date", after=date_filter)

    # --- store sales channel ------------------------------------------------
    ss_validate = builder.add(
        OperationKind.VALIDATE, "validate_store_sales", after=store_sales,
        config={"checks": ["quantity > 0", "sales_price >= 0"]},
    )
    ss_validate.properties.selectivity = 0.98
    ss_validate.properties.cost_per_tuple = 0.01
    ss_conform = builder.add(
        OperationKind.RENAME, "conform_store_sales", after=ss_validate,
        config={"prefix_strip": "ss_", "channel": "store"},
    )
    ss_derive = builder.derive(
        "derive_store_sales_measures",
        expressions={
            "gross_margin": "ss_net_profit / nullif(ss_net_paid, 0)",
            "discount_pct": "ss_ext_discount_amt / nullif(ss_list_price * ss_quantity, 0)",
        },
        cost_per_tuple=0.04, after=ss_conform,
    )
    ss_derive.properties.failure_rate = 0.04

    # --- web sales channel -----------------------------------------------
    ws_validate = builder.add(
        OperationKind.VALIDATE, "validate_web_sales", after=web_sales,
        config={"checks": ["quantity > 0", "sales_price >= 0"]},
    )
    ws_validate.properties.selectivity = 0.97
    ws_validate.properties.cost_per_tuple = 0.01
    ws_conform = builder.add(
        OperationKind.RENAME, "conform_web_sales", after=ws_validate,
        config={"prefix_strip": "ws_", "channel": "web"},
    )
    ws_derive = builder.derive(
        "derive_web_sales_measures",
        expressions={
            "gross_margin": "ws_net_profit / nullif(ws_net_paid, 0)",
            "discount_pct": "ws_ext_discount_amt / nullif(ws_list_price * ws_quantity, 0)",
        },
        cost_per_tuple=0.04, after=ws_conform,
    )
    ws_derive.properties.failure_rate = 0.04

    # --- conformed fact pipeline --------------------------------------------
    sales_union = builder.union(
        "union_sales_channels", [ss_derive, ws_derive],
        schema=ss_derive.output_schema,
    )
    date_lookup = builder.lookup(
        "lookup_date_dimension", reference="dim_date", on=["sold_date_sk"],
        after=[sales_union, date_filter], error_rate=0.01,
    )
    item_lookup = builder.lookup(
        "lookup_item_dimension", reference="dim_item", on=["item_sk"],
        after=[date_lookup, item_scd], error_rate=0.01,
    )
    customer_lookup = builder.lookup(
        "lookup_customer_dimension", reference="dim_customer", on=["customer_sk"],
        after=[item_lookup, customer_sk], error_rate=0.02,
    )
    store_lookup = builder.lookup(
        "lookup_store_dimension", reference="dim_store", on=["store_sk"],
        after=[customer_lookup, store_scd], error_rate=0.01,
    )
    fact_sk = builder.surrogate_key("assign_sales_sk", key_field="sales_sk", after=store_lookup)
    builder.load_table("load_fact_sales", table="fact_sales", after=fact_sk)

    # --- aggregated channel summary ------------------------------------------
    channel_sort = builder.sort("sort_by_channel_date", by=["channel", "d_date"], after=store_lookup)
    channel_agg = builder.aggregate(
        "aggregate_sales_by_channel",
        group_by=["channel", "d_year", "d_moy"],
        aggregations={"net_paid": "sum", "net_profit": "sum", "quantity": "sum"},
        selectivity=0.02, cost_per_tuple=0.05, after=channel_sort,
    )
    channel_agg.properties.failure_rate = 0.04
    builder.load_table("load_summary_channel", table="summary_sales_channel", after=channel_agg)

    return builder.build()
