"""Benchmark ETL workloads.

The paper's demonstration uses two initial ETL processes based on the
TPC-DS and TPC-H benchmarks, containing tens of operators and extracting
data from multiple sources (Section 4), plus the ``S_Purchases`` sub-flow
of Fig. 2.  Since the original processes (and the systems they ran on) are
not available, this package provides schema-faithful, laptop-scale
re-creations of those flows, together with a parameterised random flow
generator used by the scalability benchmarks.
"""

from repro.workloads.executable import (
    CALIBRATION_PATTERNS,
    calibration_configuration,
    calibration_flow,
)
from repro.workloads.purchases import purchases_flow
from repro.workloads.tpch import tpch_refresh_flow, tpch_schemas
from repro.workloads.tpcds import tpcds_sales_flow, tpcds_schemas
from repro.workloads.generator import RandomFlowConfig, random_flow

__all__ = [
    "CALIBRATION_PATTERNS",
    "calibration_configuration",
    "calibration_flow",
    "purchases_flow",
    "tpch_refresh_flow",
    "tpch_schemas",
    "tpcds_sales_flow",
    "tpcds_schemas",
    "RandomFlowConfig",
    "random_flow",
]
