"""Performance measures (Fig. 1: process cycle time, average latency per tuple)."""

from __future__ import annotations

from repro.etl.graph import ETLGraph
from repro.quality.framework import Measure, QualityCharacteristic
from repro.simulator.traces import TraceArchive


class ProcessCycleTime(Measure):
    """Mean end-to-end execution time of the process, in milliseconds.

    Trace-based measure: the critical-path processing time plus any work
    repeated after failures, averaged over the simulated runs.
    """

    name = "process_cycle_time_ms"
    description = "Process cycle time"
    characteristic = QualityCharacteristic.PERFORMANCE
    higher_is_better = False
    unit = "ms"
    requires_trace = True
    scale = 60_000.0
    weight = 2.0

    def compute(self, flow: ETLGraph, archive: TraceArchive | None = None) -> float:
        assert archive is not None
        return archive.mean_cycle_time_ms()


class AverageLatencyPerTuple(Measure):
    """Mean processing latency per extracted tuple, in milliseconds."""

    name = "avg_latency_per_tuple_ms"
    description = "Average latency per tuple"
    characteristic = QualityCharacteristic.PERFORMANCE
    higher_is_better = False
    unit = "ms/tuple"
    requires_trace = True
    scale = 5.0
    weight = 1.0

    def compute(self, flow: ETLGraph, archive: TraceArchive | None = None) -> float:
        assert archive is not None
        return archive.mean_latency_per_tuple_ms()


class Throughput(Measure):
    """Rows delivered to the warehouse per second of cycle time."""

    name = "throughput_rows_per_s"
    description = "Loaded rows per second"
    characteristic = QualityCharacteristic.PERFORMANCE
    higher_is_better = True
    unit = "rows/s"
    requires_trace = True
    scale = 2_000.0
    weight = 1.0

    def compute(self, flow: ETLGraph, archive: TraceArchive | None = None) -> float:
        assert archive is not None
        cycle_s = archive.mean_cycle_time_ms() / 1000.0
        if cycle_s <= 0:
            return 0.0
        return archive.mean_rows_loaded() / cycle_s


class TailCycleTime(Measure):
    """95th percentile of the process cycle time across runs."""

    name = "p95_cycle_time_ms"
    description = "95th percentile process cycle time"
    characteristic = QualityCharacteristic.PERFORMANCE
    higher_is_better = False
    unit = "ms"
    requires_trace = True
    scale = 90_000.0
    weight = 0.5

    def compute(self, flow: ETLGraph, archive: TraceArchive | None = None) -> float:
        assert archive is not None
        return archive.percentile_cycle_time_ms(95)


MEASURES = (
    ProcessCycleTime(),
    AverageLatencyPerTuple(),
    Throughput(),
    TailCycleTime(),
)
"""Default performance measures registered by :func:`repro.quality.framework.default_registry`."""
