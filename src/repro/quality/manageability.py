"""Manageability measures (Fig. 1: longest path, coupling, merge elements)."""

from __future__ import annotations

from repro.etl.graph import ETLGraph
from repro.quality.framework import Measure, QualityCharacteristic
from repro.simulator.traces import TraceArchive


class LongestPathLength(Measure):
    """Length of the process workflow's longest path (in transitions)."""

    name = "longest_path_length"
    description = "Length of process workflow's longest path"
    characteristic = QualityCharacteristic.MANAGEABILITY
    higher_is_better = False
    unit = "edges"
    requires_trace = False
    scale = 30.0
    weight = 1.0

    def compute(self, flow: ETLGraph, archive: TraceArchive | None = None) -> float:
        return float(flow.longest_path_length())


class Coupling(Measure):
    """Coupling of the process workflow (transitions per operation)."""

    name = "coupling"
    description = "Coupling of process workflow"
    characteristic = QualityCharacteristic.MANAGEABILITY
    higher_is_better = False
    unit = "edges/node"
    requires_trace = False
    scale = 2.0
    weight = 1.0

    def compute(self, flow: ETLGraph, archive: TraceArchive | None = None) -> float:
        return flow.coupling()


class MergeElementCount(Measure):
    """Number of merge elements in the process model."""

    name = "merge_element_count"
    description = "# of merge elements in the process model"
    characteristic = QualityCharacteristic.MANAGEABILITY
    higher_is_better = False
    unit = "count"
    requires_trace = False
    scale = 8.0
    weight = 1.0

    def compute(self, flow: ETLGraph, archive: TraceArchive | None = None) -> float:
        return float(flow.merge_element_count())


class OperationCount(Measure):
    """Total number of operations in the process model (size complexity)."""

    name = "operation_count"
    description = "Number of operations in the flow"
    characteristic = QualityCharacteristic.MANAGEABILITY
    higher_is_better = False
    unit = "count"
    requires_trace = False
    scale = 60.0
    weight = 0.5

    def compute(self, flow: ETLGraph, archive: TraceArchive | None = None) -> float:
        return float(flow.node_count)


MEASURES = (
    LongestPathLength(),
    Coupling(),
    MergeElementCount(),
    OperationCount(),
)
"""Default manageability measures."""
