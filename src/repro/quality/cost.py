"""Cost measures (monetary cost of executing the process)."""

from __future__ import annotations

from repro.etl.graph import ETLGraph
from repro.quality.framework import Measure, QualityCharacteristic
from repro.simulator.traces import TraceArchive


class MonetaryCostPerExecution(Measure):
    """Mean monetary cost of one execution (infrastructure plus per-operation costs)."""

    name = "monetary_cost_per_execution"
    description = "Cost of infrastructure and services per execution"
    characteristic = QualityCharacteristic.COST
    higher_is_better = False
    unit = "cost units"
    requires_trace = True
    scale = 1.0
    weight = 2.0

    def compute(self, flow: ETLGraph, archive: TraceArchive | None = None) -> float:
        assert archive is not None
        return archive.mean_monetary_cost()


class ResourceFootprint(Measure):
    """Static measure: aggregate per-tuple processing cost configured in the flow.

    Approximates the compute footprint without running a simulation; used
    when cheap, trace-free screening of very large alternative spaces is
    needed.
    """

    name = "resource_footprint"
    description = "Sum of configured per-tuple costs weighted by source volumes"
    characteristic = QualityCharacteristic.COST
    higher_is_better = False
    unit = "ms (est.)"
    requires_trace = False
    scale = 30_000.0
    weight = 1.0

    def compute(self, flow: ETLGraph, archive: TraceArchive | None = None) -> float:
        source_rows = sum(float(op.config.get("rows", 1000)) for op in flow.sources())
        if source_rows <= 0:
            source_rows = 1000.0
        total = 0.0
        for op in flow.operations():
            parallelism = max(1, op.parallelism)
            total += op.properties.fixed_cost
            total += op.properties.cost_per_tuple * source_rows / parallelism
        return total


MEASURES = (
    MonetaryCostPerExecution(),
    ResourceFootprint(),
)
"""Default cost measures."""
