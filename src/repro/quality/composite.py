"""Composite measures and per-flow quality profiles.

The tool's measure bar chart (Fig. 5) shows one bar per quality
characteristic; clicking a bar "expands" the composite measure into the
detailed metrics it aggregates.  :class:`CompositeMeasure` implements that
aggregation (a weighted mean of normalised detailed measures, reported on
a 0-100 scale) and :class:`QualityProfile` holds the full evaluation of
one flow: the composite score per characteristic plus every detailed
measure value, supporting the drill-down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.quality.framework import (
    Measure,
    MeasureRegistry,
    MeasureValue,
    QualityCharacteristic,
)


@dataclass
class CompositeMeasure:
    """A weighted aggregation of detailed measures for one characteristic."""

    characteristic: QualityCharacteristic
    components: tuple[Measure, ...]

    def score(self, values: Mapping[str, MeasureValue]) -> float:
        """Aggregate the component values into a 0-100 composite score.

        Components missing from ``values`` (e.g. trace-based measures when
        no simulation was run) are skipped; the remaining weights are
        re-normalised.
        """
        weighted = 0.0
        total_weight = 0.0
        for measure in self.components:
            value = values.get(measure.name)
            if value is None:
                continue
            weighted += measure.weight * value.normalized
            total_weight += measure.weight
        if total_weight <= 0:
            return 0.0
        return 100.0 * weighted / total_weight

    def component_names(self) -> list[str]:
        """Names of the detailed measures aggregated by this composite."""
        return [measure.name for measure in self.components]


def build_composites(registry: MeasureRegistry) -> dict[QualityCharacteristic, CompositeMeasure]:
    """Build one composite measure per characteristic covered by a registry."""
    composites: dict[QualityCharacteristic, CompositeMeasure] = {}
    for characteristic in registry.characteristics():
        components = tuple(registry.for_characteristic(characteristic))
        composites[characteristic] = CompositeMeasure(characteristic, components)
    return composites


@dataclass
class QualityProfile:
    """The full quality evaluation of one ETL flow.

    Attributes
    ----------
    flow_name:
        Name of the evaluated flow.
    scores:
        Composite 0-100 score per quality characteristic (larger is
        better) -- the coordinates used by the Fig. 4 scatter plot.
    values:
        Every detailed measure value, keyed by measure name -- the data
        behind the Fig. 5 drill-down.
    """

    flow_name: str
    scores: dict[QualityCharacteristic, float] = field(default_factory=dict)
    values: dict[str, MeasureValue] = field(default_factory=dict)

    def score(self, characteristic: QualityCharacteristic) -> float:
        """Composite score of one characteristic (0 when not evaluated)."""
        return self.scores.get(characteristic, 0.0)

    def value(self, measure_name: str) -> MeasureValue:
        """The detailed value of one measure (raises ``KeyError`` if absent)."""
        return self.values[measure_name]

    def expand(self, characteristic: QualityCharacteristic) -> list[MeasureValue]:
        """Drill down: the detailed measure values composing one characteristic."""
        return [
            value
            for value in self.values.values()
            if value.characteristic is characteristic
        ]

    def characteristics(self) -> list[QualityCharacteristic]:
        """Characteristics present in this profile."""
        return list(self.scores.keys())

    def as_vector(
        self, characteristics: Sequence[QualityCharacteristic] | None = None
    ) -> tuple[float, ...]:
        """Composite scores as a tuple, in the given characteristic order.

        This is the point placed in the multidimensional quality space of
        the scatter plot and the input of the Pareto-frontier computation.
        """
        selected = characteristics or self.characteristics()
        return tuple(self.score(c) for c in selected)

    def relative_changes(self, baseline: "QualityProfile") -> dict[str, float]:
        """Per-measure relative improvement vs. a baseline profile (Fig. 5)."""
        changes: dict[str, float] = {}
        for name, value in self.values.items():
            base = baseline.values.get(name)
            if base is None:
                continue
            changes[name] = value.relative_change(base)
        return changes

    def characteristic_changes(
        self, baseline: "QualityProfile"
    ) -> dict[QualityCharacteristic, float]:
        """Per-characteristic relative change of the composite scores vs. a baseline."""
        changes: dict[QualityCharacteristic, float] = {}
        for characteristic, score in self.scores.items():
            base = baseline.scores.get(characteristic)
            if base is None:
                continue
            if base == 0:
                changes[characteristic] = 0.0 if score == 0 else 1.0
            else:
                changes[characteristic] = (score - base) / abs(base)
        return changes

    def dominates(
        self,
        other: "QualityProfile",
        characteristics: Sequence[QualityCharacteristic] | None = None,
    ) -> bool:
        """Pareto dominance on composite scores (larger values preferred).

        ``self`` dominates ``other`` when it is at least as good on every
        examined characteristic and strictly better on at least one --
        exactly the pruning rule the paper describes for the skyline shown
        to the user.
        """
        selected = characteristics or self.characteristics()
        at_least_as_good = all(self.score(c) >= other.score(c) for c in selected)
        strictly_better = any(self.score(c) > other.score(c) for c in selected)
        return at_least_as_good and strictly_better

    def to_dict(self) -> dict[str, object]:
        """Serialise the profile to a JSON-friendly structure."""
        return {
            "flow_name": self.flow_name,
            "scores": {c.value: s for c, s in self.scores.items()},
            "measures": {
                name: {
                    "value": value.value,
                    "normalized": value.normalized,
                    "characteristic": value.characteristic.value,
                    "higher_is_better": value.higher_is_better,
                    "unit": value.unit,
                }
                for name, value in self.values.items()
            },
        }
