"""Reliability measures (recoverability, success rate, lost work)."""

from __future__ import annotations

from repro.etl.graph import ETLGraph
from repro.etl.operations import OperationKind
from repro.quality.framework import Measure, QualityCharacteristic
from repro.simulator.traces import TraceArchive


class SuccessRate(Measure):
    """Fraction of simulated executions that completed without an unrecoverable failure."""

    name = "success_rate"
    description = "Executions completing successfully"
    characteristic = QualityCharacteristic.RELIABILITY
    higher_is_better = True
    unit = "fraction"
    requires_trace = True
    weight = 2.0

    def compute(self, flow: ETLGraph, archive: TraceArchive | None = None) -> float:
        assert archive is not None
        return archive.success_rate()

    def normalize(self, value: float) -> float:
        return max(0.0, min(1.0, value))


class MeanLostWork(Measure):
    """Mean processing time repeated or lost because of failures, per execution."""

    name = "mean_lost_work_ms"
    description = "Work repeated after failures"
    characteristic = QualityCharacteristic.RELIABILITY
    higher_is_better = False
    unit = "ms"
    requires_trace = True
    scale = 10_000.0
    weight = 1.0

    def compute(self, flow: ETLGraph, archive: TraceArchive | None = None) -> float:
        assert archive is not None
        return archive.mean_lost_work_ms()


class RecoveryCoverage(Measure):
    """Static measure: fraction of processing work protected by a checkpoint.

    An operation is *protected* when a checkpoint lies upstream of it, so a
    failure of the operation restarts from the checkpoint instead of from
    the sources.  The measure weights operations by their expected
    processing cost, so protecting the expensive tail of the flow counts
    more than protecting cheap early operations -- matching the paper's
    heuristic of placing checkpoints after the most complex operations.
    """

    name = "recovery_coverage"
    description = "Cost-weighted share of operations protected by checkpoints"
    characteristic = QualityCharacteristic.RELIABILITY
    higher_is_better = True
    unit = "fraction"
    requires_trace = False
    weight = 1.0

    def compute(self, flow: ETLGraph, archive: TraceArchive | None = None) -> float:
        checkpoints = {
            op.op_id for op in flow.operations_of_kind(OperationKind.CHECKPOINT)
        }
        if not checkpoints:
            return 0.0
        total_weight = 0.0
        protected_weight = 0.0
        for op in flow.operations():
            rows = float(op.config.get("rows", 1000))
            weight = op.properties.fixed_cost + op.properties.cost_per_tuple * rows
            total_weight += weight
            if flow.upstream_of(op.op_id) & checkpoints:
                protected_weight += weight
        if total_weight <= 0:
            return 0.0
        return protected_weight / total_weight

    def normalize(self, value: float) -> float:
        return max(0.0, min(1.0, value))


class FlowFailureProbability(Measure):
    """Static measure: probability that at least one operation fails in a run."""

    name = "flow_failure_probability"
    description = "Probability of at least one operation failure per execution"
    characteristic = QualityCharacteristic.RELIABILITY
    higher_is_better = False
    unit = "probability"
    requires_trace = False
    weight = 0.5

    def compute(self, flow: ETLGraph, archive: TraceArchive | None = None) -> float:
        survival = 1.0
        for op in flow.operations():
            survival *= 1.0 - op.properties.failure_rate
        return 1.0 - survival

    def normalize(self, value: float) -> float:
        return max(0.0, 1.0 - min(value, 1.0))


MEASURES = (
    SuccessRate(),
    MeanLostWork(),
    RecoveryCoverage(),
    FlowFailureProbability(),
)
"""Default reliability measures."""
