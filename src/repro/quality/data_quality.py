"""Data-quality measures (Fig. 1: data freshness; plus defect rates)."""

from __future__ import annotations

from repro.etl.graph import ETLGraph
from repro.etl.operations import OperationKind
from repro.quality.framework import Measure, QualityCharacteristic
from repro.simulator.traces import TraceArchive


class FreshnessAge(Measure):
    """Age of the loaded data: request time minus time of last source update.

    Expressed in minutes; combines the source-side lag with the staleness
    introduced by the process schedule, as observed in the simulated runs.
    """

    name = "freshness_age_minutes"
    description = "Request time - Time of last update"
    characteristic = QualityCharacteristic.DATA_QUALITY
    higher_is_better = False
    unit = "minutes"
    requires_trace = True
    scale = 240.0
    weight = 1.0

    def compute(self, flow: ETLGraph, archive: TraceArchive | None = None) -> float:
        assert archive is not None
        return archive.mean_freshness_lag_minutes()


class FreshnessScore(Measure):
    """Freshness utility score derived from age and update frequency.

    The paper lists the measure ``1 / (1 - age * frequency of updates)``;
    with age expressed in days and a frequency of several updates per day
    that expression degenerates (the denominator crosses zero), so this
    reproduction uses the well-behaved variant ``1 / (1 + age *
    frequency)``, which preserves the intended monotonicity: fresher data
    and slower-changing sources both push the score towards 1.
    """

    name = "freshness_score"
    description = "1 / (1 + age * frequency of updates)"
    characteristic = QualityCharacteristic.DATA_QUALITY
    higher_is_better = True
    unit = "score"
    requires_trace = True
    weight = 1.0

    def compute(self, flow: ETLGraph, archive: TraceArchive | None = None) -> float:
        assert archive is not None
        age_days = archive.mean_freshness_lag_minutes() / (24.0 * 60.0)
        frequency = archive.mean_update_frequency()
        return 1.0 / (1.0 + age_days * frequency)

    def normalize(self, value: float) -> float:
        return max(0.0, min(1.0, value))


class _LoadedDefectRate(Measure):
    """Base class for defect-rate measures on the loaded data."""

    higher_is_better = False
    unit = "fraction"
    requires_trace = True
    defect_key = ""

    def compute(self, flow: ETLGraph, archive: TraceArchive | None = None) -> float:
        assert archive is not None
        return archive.mean_defect_rates()[self.defect_key]

    def normalize(self, value: float) -> float:
        return max(0.0, 1.0 - min(value, 1.0))


class ErrorRate(_LoadedDefectRate):
    """Fraction of loaded rows carrying incorrect values."""

    name = "error_rate"
    description = "Erroneous rows / loaded rows"
    characteristic = QualityCharacteristic.DATA_QUALITY
    defect_key = "error_rate"
    weight = 2.0


class NullRate(_LoadedDefectRate):
    """Fraction of loaded rows with NULLs in nullable fields."""

    name = "null_rate"
    description = "Rows with NULL defects / loaded rows"
    characteristic = QualityCharacteristic.DATA_QUALITY
    defect_key = "null_rate"
    weight = 1.5


class DuplicateRate(_LoadedDefectRate):
    """Fraction of loaded rows duplicating another row's key."""

    name = "duplicate_rate"
    description = "Duplicate rows / loaded rows"
    characteristic = QualityCharacteristic.DATA_QUALITY
    defect_key = "duplicate_rate"
    weight = 1.5


class CleansingCoverage(Measure):
    """Static measure: fraction of source branches protected by cleansing operations.

    A source is considered covered when a data-quality operation
    (deduplicate, null filter, crosscheck, validate, cleanse) lies on some
    path from it to a sink.  This captures the structural intent of the
    data-quality FCPs without requiring a simulation.
    """

    name = "cleansing_coverage"
    description = "Sources protected by data-cleaning operations"
    characteristic = QualityCharacteristic.DATA_QUALITY
    higher_is_better = True
    unit = "fraction"
    requires_trace = False
    weight = 1.0

    _CLEANSING_KINDS = (
        OperationKind.DEDUPLICATE,
        OperationKind.FILTER_NULLS,
        OperationKind.CROSSCHECK,
        OperationKind.VALIDATE,
        OperationKind.CLEANSE,
    )

    def compute(self, flow: ETLGraph, archive: TraceArchive | None = None) -> float:
        sources = flow.sources()
        if not sources:
            return 0.0
        cleansing_ids = {op.op_id for op in flow.operations_of_kind(*self._CLEANSING_KINDS)}
        if not cleansing_ids:
            return 0.0
        covered = 0
        for source in sources:
            downstream = flow.downstream_of(source.op_id)
            if downstream & cleansing_ids:
                covered += 1
        return covered / len(sources)

    def normalize(self, value: float) -> float:
        return max(0.0, min(1.0, value))


MEASURES = (
    FreshnessAge(),
    FreshnessScore(),
    ErrorRate(),
    NullRate(),
    DuplicateRate(),
    CleansingCoverage(),
)
"""Default data-quality measures."""
