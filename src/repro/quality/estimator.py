"""Facade combining static and trace-based measure estimation.

The *Measures Estimation* stage of the POIESIS architecture (Fig. 3) takes
an ETL flow and produces its quality measures.  :class:`QualityEstimator`
implements that stage: it runs the runtime simulator when any requested
measure needs traces, evaluates every measure in its registry, and folds
the results into a :class:`~repro.quality.composite.QualityProfile`.

Because the alternative space is factorial in the flow size (Section 2.2)
and the iterative redesign loop revisits structurally identical flows
across session iterations, estimation is memoizable: a cache backend
(see :mod:`repro.cache`) keyed by a content fingerprint of the flow
(structure plus operation properties plus graph annotations plus the
estimation settings) lets a planner or a whole
:class:`~repro.core.session.RedesignSession` skip re-simulating flows it
has already profiled -- and, with a disk-backed tier, lets *separate
runs and parallel sessions* share profiles.  Every tier keeps hit/miss
statistics so benchmarks can report the savings.

:class:`ProfileCache` and :class:`~repro.cache.CacheStats` originally
lived here and are re-exported for backwards compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass

# Re-exported for backwards compatibility: ProfileCache and CacheStats
# lived in this module until the CacheBackend protocol was extracted
# into the repro.cache package (which also provides the disk-backed and
# tiered implementations).
from repro.cache import CacheBackend, CacheStats, ProfileCache  # noqa: F401
from repro.etl.graph import ETLGraph
from repro.quality.composite import QualityProfile, build_composites
from repro.quality.framework import MeasureRegistry, MeasureValue, default_registry
from repro.simulator.engine import ETLSimulator, SimulationConfig
from repro.simulator.resources import ResourceModel
from repro.simulator.traces import TraceArchive


@dataclass
class EstimationSettings:
    """Settings controlling how quality profiles are estimated.

    Attributes
    ----------
    simulation_runs:
        Number of simulated executions used for trace-based measures.
    seed:
        Random seed forwarded to the simulator (estimates are deterministic
        for a given seed).
    resources:
        Default execution environment for the simulations.
    use_simulation:
        When false, only static (structure-based) measures are evaluated;
        useful for cheap screening of very large alternative spaces (the
        planner's ``screening_beam`` first phase).
    """

    simulation_runs: int = 5
    seed: int | None = 7
    resources: ResourceModel | None = None
    use_simulation: bool = True

    def fingerprint(self) -> tuple:
        """A hashable identity of everything that influences the estimates."""
        resources = self.resources
        resource_key = (
            None
            if resources is None
            else (resources.workers, resources.speed, resources.cost_per_hour, resources.memory_mb)
        )
        return (self.simulation_runs, self.seed, self.use_simulation, resource_key)


def flow_fingerprint(flow: ETLGraph) -> tuple:
    """A hashable content fingerprint of everything that influences measures.

    Strictly finer than :meth:`ETLGraph.signature`: it also covers operation
    properties (costs, selectivities, rates), operation configs and
    schemas, and graph annotations, all of which feed the simulator and the
    static estimators.  The flow *name* and pattern lineage are
    deliberately excluded so that structurally identical flows reached
    through different pattern combinations share one cache entry.
    """
    ops = []
    for op in flow.operations():
        props = op.properties
        ops.append(
            (
                op.op_id,
                op.kind.value,
                op.parallelism,
                tuple((f.name, f.dtype.value, f.nullable, f.key) for f in op.output_schema.fields),
                tuple(sorted((str(k), repr(v)) for k, v in op.config.items())),
                props.cost_per_tuple,
                props.fixed_cost,
                props.selectivity,
                props.error_rate,
                props.null_rate,
                props.duplicate_rate,
                props.failure_rate,
                props.memory_per_tuple,
                props.freshness_lag,
                props.update_frequency,
                props.monetary_cost,
                tuple(sorted((str(k), repr(v)) for k, v in props.extra.items())),
            )
        )
    ops.sort()
    return (
        tuple(ops),
        tuple(sorted((e.source, e.target) for e in flow.edges())),
        tuple(sorted((str(k), repr(v)) for k, v in flow.annotations.items())),
    )


class QualityEstimator:
    """Evaluates the quality profile of ETL flows.

    Parameters
    ----------
    registry:
        The measures to evaluate; defaults to the Fig. 1-style registry.
    settings:
        Simulation budget, seed, resources and the static-only switch.
    cache:
        Optional shared cache backend (any
        :class:`~repro.cache.CacheBackend` tier: the in-memory
        :class:`ProfileCache`, a persistent
        :class:`~repro.cache.DiskProfileCache`, or the
        :class:`~repro.cache.TieredProfileCache` composite).  When set,
        :meth:`evaluate` memoizes profiles by flow fingerprint +
        settings fingerprint, so re-evaluating a structurally identical
        flow (e.g. in a later session iteration, a re-plan, or -- with a
        disk-backed tier -- a whole separate run) costs a lookup instead
        of a simulation campaign.
    """

    def __init__(
        self,
        registry: MeasureRegistry | None = None,
        settings: EstimationSettings | None = None,
        cache: CacheBackend | None = None,
    ) -> None:
        self.registry = registry or default_registry()
        self.settings = settings or EstimationSettings()
        self.cache = cache
        self._composites = build_composites(self.registry)

    # ------------------------------------------------------------------

    def simulate(self, flow: ETLGraph) -> TraceArchive:
        """Run the simulator for one flow and return its trace archive."""
        config = SimulationConfig(
            runs=self.settings.simulation_runs,
            seed=self.settings.seed,
            resources=self.settings.resources or ResourceModel(),
        )
        return ETLSimulator(flow, config).run()

    # ------------------------------------------------------------------
    # Cache plumbing (also used by ParallelEvaluator, which checks the
    # cache in the parent process so process-pool workers stay cheap)
    # ------------------------------------------------------------------

    def cache_key(self, flow: ETLGraph) -> tuple:
        """The memoization key of ``flow`` under the current settings.

        Covers the flow content, the estimation settings, and the measure
        registry, so estimators with different registries can safely share
        one cache.  Recomputed on every call -- nothing is memoized per
        graph instance, so mutating a flow in place and re-evaluating it
        yields a fresh key (a cache miss), never a stale profile.
        """
        registry = tuple(
            sorted((m.name, m.weight, m.requires_trace) for m in self.registry)
        )
        return (flow_fingerprint(flow), self.settings.fingerprint(), registry)

    def cached_profile(
        self, flow: ETLGraph, key: tuple | None = None
    ) -> QualityProfile | None:
        """A cached profile for ``flow``, re-labelled with the flow's name.

        Returns ``None`` when no cache is configured or the flow has not
        been profiled yet.  The returned profile is a shallow copy so that
        callers mutating scores/values do not corrupt the memo.  Pass a
        pre-computed ``key`` to avoid fingerprinting the flow twice.
        """
        if self.cache is None:
            return None
        hit = self.cache.get(key if key is not None else self.cache_key(flow))
        if hit is None:
            return None
        return QualityProfile(
            flow_name=flow.name, scores=dict(hit.scores), values=dict(hit.values)
        )

    def store_profile(
        self, flow: ETLGraph, profile: QualityProfile, key: tuple | None = None
    ) -> None:
        """Memoize an evaluated profile (no-op without a cache).

        A shallow snapshot is stored, so callers mutating the profile they
        were handed cannot corrupt the memo.
        """
        if self.cache is not None:
            snapshot = QualityProfile(
                flow_name=profile.flow_name,
                scores=dict(profile.scores),
                values=dict(profile.values),
            )
            self.cache.put(key if key is not None else self.cache_key(flow), snapshot)

    # ------------------------------------------------------------------

    def evaluate(self, flow: ETLGraph, archive: TraceArchive | None = None) -> QualityProfile:
        """Evaluate every registered measure for ``flow``.

        Parameters
        ----------
        flow:
            The flow to evaluate.
        archive:
            Optional pre-computed trace archive; when omitted and any
            registered measure requires traces (and simulation is
            enabled), the flow is simulated first.  Passing an explicit
            archive bypasses the profile cache.
        """
        key: tuple | None = None
        if archive is None and self.cache is not None:
            key = self.cache_key(flow)
            cached = self.cached_profile(flow, key)
            if cached is not None:
                return cached
        profile = self.evaluate_uncached(flow, archive)
        if key is not None:
            self.store_profile(flow, profile, key)
        return profile

    def evaluate_uncached(
        self, flow: ETLGraph, archive: TraceArchive | None = None
    ) -> QualityProfile:
        """The raw Measures Estimation stage, never touching the cache."""
        needs_trace = any(m.requires_trace for m in self.registry)
        if archive is None and needs_trace and self.settings.use_simulation:
            archive = self.simulate(flow)

        values: dict[str, MeasureValue] = {}
        for measure in self.registry:
            if measure.requires_trace and archive is None:
                continue
            values[measure.name] = measure.evaluate(flow, archive)

        profile = QualityProfile(flow_name=flow.name, values=values)
        for characteristic, composite in self._composites.items():
            profile.scores[characteristic] = composite.score(values)
        return profile

    def evaluate_many(self, flows: list[ETLGraph]) -> list[QualityProfile]:
        """Evaluate a batch of flows sequentially (cache-aware).

        Parallel evaluation (the paper's cloud-backed concurrent
        processing) is provided by
        :class:`repro.core.evaluator.ParallelEvaluator`, which consumes
        flows as a stream and overlaps generation with estimation.
        """
        return [self.evaluate(flow) for flow in flows]
