"""Facade combining static and trace-based measure estimation.

The *Measures Estimation* stage of the POIESIS architecture (Fig. 3) takes
an ETL flow and produces its quality measures.  :class:`QualityEstimator`
implements that stage: it runs the runtime simulator when any requested
measure needs traces, evaluates every measure in its registry, and folds
the results into a :class:`~repro.quality.composite.QualityProfile`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.etl.graph import ETLGraph
from repro.quality.composite import QualityProfile, build_composites
from repro.quality.framework import MeasureRegistry, MeasureValue, default_registry
from repro.simulator.engine import ETLSimulator, SimulationConfig
from repro.simulator.resources import ResourceModel
from repro.simulator.traces import TraceArchive


@dataclass
class EstimationSettings:
    """Settings controlling how quality profiles are estimated.

    Attributes
    ----------
    simulation_runs:
        Number of simulated executions used for trace-based measures.
    seed:
        Random seed forwarded to the simulator (estimates are deterministic
        for a given seed).
    resources:
        Default execution environment for the simulations.
    use_simulation:
        When false, only static (structure-based) measures are evaluated;
        useful for cheap screening of very large alternative spaces.
    """

    simulation_runs: int = 5
    seed: int | None = 7
    resources: ResourceModel | None = None
    use_simulation: bool = True


class QualityEstimator:
    """Evaluates the quality profile of ETL flows."""

    def __init__(
        self,
        registry: MeasureRegistry | None = None,
        settings: EstimationSettings | None = None,
    ) -> None:
        self.registry = registry or default_registry()
        self.settings = settings or EstimationSettings()
        self._composites = build_composites(self.registry)

    # ------------------------------------------------------------------

    def simulate(self, flow: ETLGraph) -> TraceArchive:
        """Run the simulator for one flow and return its trace archive."""
        config = SimulationConfig(
            runs=self.settings.simulation_runs,
            seed=self.settings.seed,
            resources=self.settings.resources or ResourceModel(),
        )
        return ETLSimulator(flow, config).run()

    def evaluate(self, flow: ETLGraph, archive: TraceArchive | None = None) -> QualityProfile:
        """Evaluate every registered measure for ``flow``.

        Parameters
        ----------
        flow:
            The flow to evaluate.
        archive:
            Optional pre-computed trace archive; when omitted and any
            registered measure requires traces (and simulation is
            enabled), the flow is simulated first.
        """
        needs_trace = any(m.requires_trace for m in self.registry)
        if archive is None and needs_trace and self.settings.use_simulation:
            archive = self.simulate(flow)

        values: dict[str, MeasureValue] = {}
        for measure in self.registry:
            if measure.requires_trace and archive is None:
                continue
            values[measure.name] = measure.evaluate(flow, archive)

        profile = QualityProfile(flow_name=flow.name, values=values)
        for characteristic, composite in self._composites.items():
            profile.scores[characteristic] = composite.score(values)
        return profile

    def evaluate_many(self, flows: list[ETLGraph]) -> list[QualityProfile]:
        """Evaluate a batch of flows sequentially.

        Parallel evaluation (the paper's cloud-backed concurrent
        processing) is provided by
        :class:`repro.core.evaluator.ParallelEvaluator`, which delegates to
        this method per flow.
        """
        return [self.evaluate(flow) for flow in flows]
