"""Facade combining static and trace-based measure estimation.

The *Measures Estimation* stage of the POIESIS architecture (Fig. 3) takes
an ETL flow and produces its quality measures.  :class:`QualityEstimator`
implements that stage: it runs the runtime simulator when any requested
measure needs traces, evaluates every measure in its registry, and folds
the results into a :class:`~repro.quality.composite.QualityProfile`.

Because the alternative space is factorial in the flow size (Section 2.2)
and the iterative redesign loop revisits structurally identical flows
across session iterations, estimation is memoizable: a
:class:`ProfileCache` keyed by a content fingerprint of the flow (structure
plus operation properties plus graph annotations plus the estimation
settings) lets a planner or a whole :class:`~repro.core.session.RedesignSession`
skip re-simulating flows it has already profiled.  The cache keeps
hit/miss statistics so benchmarks can report the savings.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.etl.graph import ETLGraph
from repro.quality.composite import QualityProfile, build_composites
from repro.quality.framework import MeasureRegistry, MeasureValue, default_registry
from repro.simulator.engine import ETLSimulator, SimulationConfig
from repro.simulator.resources import ResourceModel
from repro.simulator.traces import TraceArchive


@dataclass
class EstimationSettings:
    """Settings controlling how quality profiles are estimated.

    Attributes
    ----------
    simulation_runs:
        Number of simulated executions used for trace-based measures.
    seed:
        Random seed forwarded to the simulator (estimates are deterministic
        for a given seed).
    resources:
        Default execution environment for the simulations.
    use_simulation:
        When false, only static (structure-based) measures are evaluated;
        useful for cheap screening of very large alternative spaces (the
        planner's ``screening_beam`` first phase).
    """

    simulation_runs: int = 5
    seed: int | None = 7
    resources: ResourceModel | None = None
    use_simulation: bool = True

    def fingerprint(self) -> tuple:
        """A hashable identity of everything that influences the estimates."""
        resources = self.resources
        resource_key = (
            None
            if resources is None
            else (resources.workers, resources.speed, resources.cost_per_hour, resources.memory_mb)
        )
        return (self.simulation_runs, self.seed, self.use_simulation, resource_key)


@dataclass
class CacheStats:
    """Hit/miss accounting of a :class:`ProfileCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of cache lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never used)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        """JSON-friendly snapshot (used by session histories and benchmarks)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
        }


def flow_fingerprint(flow: ETLGraph) -> tuple:
    """A hashable content fingerprint of everything that influences measures.

    Strictly finer than :meth:`ETLGraph.signature`: it also covers operation
    properties (costs, selectivities, rates), operation configs and
    schemas, and graph annotations, all of which feed the simulator and the
    static estimators.  The flow *name* and pattern lineage are
    deliberately excluded so that structurally identical flows reached
    through different pattern combinations share one cache entry.
    """
    ops = []
    for op in flow.operations():
        props = op.properties
        ops.append(
            (
                op.op_id,
                op.kind.value,
                op.parallelism,
                tuple((f.name, f.dtype.value, f.nullable, f.key) for f in op.output_schema.fields),
                tuple(sorted((str(k), repr(v)) for k, v in op.config.items())),
                props.cost_per_tuple,
                props.fixed_cost,
                props.selectivity,
                props.error_rate,
                props.null_rate,
                props.duplicate_rate,
                props.failure_rate,
                props.memory_per_tuple,
                props.freshness_lag,
                props.update_frequency,
                props.monetary_cost,
                tuple(sorted((str(k), repr(v)) for k, v in props.extra.items())),
            )
        )
    ops.sort()
    return (
        tuple(ops),
        tuple(sorted((e.source, e.target) for e in flow.edges())),
        tuple(sorted((str(k), repr(v)) for k, v in flow.annotations.items())),
    )


class ProfileCache:
    """A bounded, thread-safe memo of quality profiles keyed by flow fingerprint.

    Shared by the full and the static (screening) estimators of a planner
    and across the iterations of a redesign session.  Lookups are counted
    in :attr:`stats`; entries are evicted least-recently-used when
    ``max_entries`` is set.

    The cache pickles as an *empty* cache (entries and the lock are
    dropped): process-pool workers receive a blank memo and the parent
    process re-inserts their results, so nothing is lost and nothing large
    crosses the process boundary.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be at least 1 (or None for unbounded)")
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: OrderedDict[tuple, QualityProfile] = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def get(self, key: tuple) -> QualityProfile | None:
        """Look up a profile, counting the hit or miss."""
        with self._lock:
            profile = self._entries.get(key)
            if profile is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return profile

    def put(self, key: tuple, profile: QualityProfile) -> None:
        """Insert (or refresh) a profile; does not affect hit/miss counts."""
        with self._lock:
            self._entries[key] = profile
            self._entries.move_to_end(key)
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry and reset the statistics."""
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries

    # ------------------------------------------------------------------
    # Pickling (process-pool workers must not drag the memo or the lock)
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict[str, object]:
        return {"max_entries": self.max_entries}

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__init__(max_entries=state.get("max_entries"))  # type: ignore[misc]


class QualityEstimator:
    """Evaluates the quality profile of ETL flows.

    Parameters
    ----------
    registry:
        The measures to evaluate; defaults to the Fig. 1-style registry.
    settings:
        Simulation budget, seed, resources and the static-only switch.
    cache:
        Optional shared :class:`ProfileCache`.  When set, :meth:`evaluate`
        memoizes profiles by flow fingerprint + settings fingerprint, so
        re-evaluating a structurally identical flow (e.g. in a later
        session iteration) costs a dictionary lookup instead of a
        simulation campaign.
    """

    def __init__(
        self,
        registry: MeasureRegistry | None = None,
        settings: EstimationSettings | None = None,
        cache: ProfileCache | None = None,
    ) -> None:
        self.registry = registry or default_registry()
        self.settings = settings or EstimationSettings()
        self.cache = cache
        self._composites = build_composites(self.registry)

    # ------------------------------------------------------------------

    def simulate(self, flow: ETLGraph) -> TraceArchive:
        """Run the simulator for one flow and return its trace archive."""
        config = SimulationConfig(
            runs=self.settings.simulation_runs,
            seed=self.settings.seed,
            resources=self.settings.resources or ResourceModel(),
        )
        return ETLSimulator(flow, config).run()

    # ------------------------------------------------------------------
    # Cache plumbing (also used by ParallelEvaluator, which checks the
    # cache in the parent process so process-pool workers stay cheap)
    # ------------------------------------------------------------------

    def cache_key(self, flow: ETLGraph) -> tuple:
        """The memoization key of ``flow`` under the current settings.

        Covers the flow content, the estimation settings, and the measure
        registry, so estimators with different registries can safely share
        one cache.  Recomputed on every call -- nothing is memoized per
        graph instance, so mutating a flow in place and re-evaluating it
        yields a fresh key (a cache miss), never a stale profile.
        """
        registry = tuple(
            sorted((m.name, m.weight, m.requires_trace) for m in self.registry)
        )
        return (flow_fingerprint(flow), self.settings.fingerprint(), registry)

    def cached_profile(
        self, flow: ETLGraph, key: tuple | None = None
    ) -> QualityProfile | None:
        """A cached profile for ``flow``, re-labelled with the flow's name.

        Returns ``None`` when no cache is configured or the flow has not
        been profiled yet.  The returned profile is a shallow copy so that
        callers mutating scores/values do not corrupt the memo.  Pass a
        pre-computed ``key`` to avoid fingerprinting the flow twice.
        """
        if self.cache is None:
            return None
        hit = self.cache.get(key if key is not None else self.cache_key(flow))
        if hit is None:
            return None
        return QualityProfile(
            flow_name=flow.name, scores=dict(hit.scores), values=dict(hit.values)
        )

    def store_profile(
        self, flow: ETLGraph, profile: QualityProfile, key: tuple | None = None
    ) -> None:
        """Memoize an evaluated profile (no-op without a cache).

        A shallow snapshot is stored, so callers mutating the profile they
        were handed cannot corrupt the memo.
        """
        if self.cache is not None:
            snapshot = QualityProfile(
                flow_name=profile.flow_name,
                scores=dict(profile.scores),
                values=dict(profile.values),
            )
            self.cache.put(key if key is not None else self.cache_key(flow), snapshot)

    # ------------------------------------------------------------------

    def evaluate(self, flow: ETLGraph, archive: TraceArchive | None = None) -> QualityProfile:
        """Evaluate every registered measure for ``flow``.

        Parameters
        ----------
        flow:
            The flow to evaluate.
        archive:
            Optional pre-computed trace archive; when omitted and any
            registered measure requires traces (and simulation is
            enabled), the flow is simulated first.  Passing an explicit
            archive bypasses the profile cache.
        """
        key: tuple | None = None
        if archive is None and self.cache is not None:
            key = self.cache_key(flow)
            cached = self.cached_profile(flow, key)
            if cached is not None:
                return cached
        profile = self.evaluate_uncached(flow, archive)
        if key is not None:
            self.store_profile(flow, profile, key)
        return profile

    def evaluate_uncached(
        self, flow: ETLGraph, archive: TraceArchive | None = None
    ) -> QualityProfile:
        """The raw Measures Estimation stage, never touching the cache."""
        needs_trace = any(m.requires_trace for m in self.registry)
        if archive is None and needs_trace and self.settings.use_simulation:
            archive = self.simulate(flow)

        values: dict[str, MeasureValue] = {}
        for measure in self.registry:
            if measure.requires_trace and archive is None:
                continue
            values[measure.name] = measure.evaluate(flow, archive)

        profile = QualityProfile(flow_name=flow.name, values=values)
        for characteristic, composite in self._composites.items():
            profile.scores[characteristic] = composite.score(values)
        return profile

    def evaluate_many(self, flows: list[ETLGraph]) -> list[QualityProfile]:
        """Evaluate a batch of flows sequentially (cache-aware).

        Parallel evaluation (the paper's cloud-backed concurrent
        processing) is provided by
        :class:`repro.core.evaluator.ParallelEvaluator`, which consumes
        flows as a stream and overlaps generation with estimation.
        """
        return [self.evaluate(flow) for flow in flows]
