"""Quality characteristics and measures for ETL processes.

Implements the measurement framework of the paper (and of the authors'
companion work "Quality Measures for ETL Processes", DaWaK 2014): quality
*characteristics* (performance, data quality, reliability, manageability,
cost, security) are quantified by *measures*, some computed from the
static structure of the flow graph and some from (simulated) runtime
traces.  Composite measures aggregate detailed metrics per characteristic
and can be expanded back into their components, which is what the Fig. 5
drill-down of the tool shows.
"""

from repro.quality.framework import (
    QualityCharacteristic,
    Measure,
    MeasureValue,
    MeasureRegistry,
    default_registry,
)
from repro.quality.composite import CompositeMeasure, QualityProfile
from repro.quality.estimator import (
    CacheStats,
    EstimationSettings,
    ProfileCache,
    QualityEstimator,
    flow_fingerprint,
)

from repro.quality import (  # noqa: F401  (re-exported measure modules)
    performance,
    data_quality,
    reliability,
    manageability,
    cost,
)

__all__ = [
    "QualityCharacteristic",
    "Measure",
    "MeasureValue",
    "MeasureRegistry",
    "default_registry",
    "CompositeMeasure",
    "QualityProfile",
    "QualityEstimator",
    "EstimationSettings",
    "ProfileCache",
    "CacheStats",
    "flow_fingerprint",
]
