"""Core abstractions of the quality measurement framework."""

from __future__ import annotations

import abc
import enum
import math
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.etl.graph import ETLGraph
from repro.simulator.traces import TraceArchive


class QualityCharacteristic(enum.Enum):
    """Quality characteristics of an ETL process considered by POIESIS."""

    PERFORMANCE = "performance"
    DATA_QUALITY = "data_quality"
    RELIABILITY = "reliability"
    MANAGEABILITY = "manageability"
    COST = "cost"
    SECURITY = "security"

    @property
    def label(self) -> str:
        """Human-readable label used by visualisations."""
        return self.value.replace("_", " ").title()


class Measure(abc.ABC):
    """A single quality measure.

    Subclasses implement :meth:`compute`, returning the raw measure value
    for a flow (optionally using a simulated trace archive), and declare
    whether larger raw values are better and how raw values map onto a
    normalised ``[0, 1]`` goodness scale used by composite measures.
    """

    #: Unique measure identifier (snake_case).
    name: str = ""
    #: Human-readable description shown in reports (matches Fig. 1 wording).
    description: str = ""
    #: The quality characteristic the measure contributes to.
    characteristic: QualityCharacteristic = QualityCharacteristic.PERFORMANCE
    #: Whether larger raw values indicate better quality.
    higher_is_better: bool = True
    #: Unit of the raw value (informational).
    unit: str = ""
    #: Whether the measure needs a simulated trace archive.
    requires_trace: bool = False
    #: Scale parameter used by the default normalisation.
    scale: float = 1.0
    #: Relative weight within its characteristic's composite measure.
    weight: float = 1.0

    @abc.abstractmethod
    def compute(self, flow: ETLGraph, archive: TraceArchive | None = None) -> float:
        """Return the raw value of the measure for ``flow``."""

    def normalize(self, value: float) -> float:
        """Map a raw value onto a ``[0, 1]`` goodness score.

        The default normalisation is an exponential saturation curve
        parameterised by :attr:`scale`: values around ``scale`` map to the
        middle of the range.  Measures where smaller is better are
        inverted.  Subclasses with naturally bounded values (rates,
        probabilities) override this.
        """
        if self.scale <= 0:
            raise ValueError(f"measure {self.name!r} has a non-positive scale")
        goodness = math.exp(-max(value, 0.0) / self.scale)
        return goodness if not self.higher_is_better else 1.0 - goodness

    def evaluate(self, flow: ETLGraph, archive: TraceArchive | None = None) -> "MeasureValue":
        """Compute the measure and wrap it in a :class:`MeasureValue`."""
        if self.requires_trace and archive is None:
            raise ValueError(f"measure {self.name!r} requires a simulated trace archive")
        raw = self.compute(flow, archive)
        return MeasureValue(
            measure=self.name,
            characteristic=self.characteristic,
            value=raw,
            normalized=self.normalize(raw),
            higher_is_better=self.higher_is_better,
            unit=self.unit,
            description=self.description,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


@dataclass(frozen=True)
class MeasureValue:
    """The evaluated value of one measure on one flow."""

    measure: str
    characteristic: QualityCharacteristic
    value: float
    normalized: float
    higher_is_better: bool
    unit: str = ""
    description: str = ""

    def relative_change(self, baseline: "MeasureValue") -> float:
        """Relative *improvement* (positive = better) vs. a baseline value.

        The change is computed on raw values and sign-adjusted so that a
        positive result always means "this flow is better than the
        baseline", regardless of the measure orientation -- this is the
        quantity shown on the Fig. 5 bar chart.
        """
        if baseline.measure != self.measure:
            raise ValueError(
                f"cannot compare measure {self.measure!r} to baseline {baseline.measure!r}"
            )
        if baseline.value == 0:
            if self.value == 0:
                return 0.0
            direction = 1.0 if self.value > 0 else -1.0
            change = direction
        else:
            change = (self.value - baseline.value) / abs(baseline.value)
        return change if self.higher_is_better else -change


class MeasureRegistry:
    """A named collection of measures, the tool's measure palette."""

    def __init__(self, measures: Iterable[Measure] = ()) -> None:
        self._measures: dict[str, Measure] = {}
        for measure in measures:
            self.register(measure)

    def register(self, measure: Measure) -> Measure:
        """Add a measure to the registry (replacing any same-named one)."""
        if not measure.name:
            raise ValueError("measures must define a non-empty name")
        self._measures[measure.name] = measure
        return measure

    def unregister(self, name: str) -> None:
        """Remove a measure from the registry."""
        del self._measures[name]

    def get(self, name: str) -> Measure:
        """Return the measure called ``name``."""
        try:
            return self._measures[name]
        except KeyError as exc:
            raise KeyError(f"unknown measure: {name!r}") from exc

    def __contains__(self, name: object) -> bool:
        return name in self._measures

    def __len__(self) -> int:
        return len(self._measures)

    def __iter__(self) -> Iterator[Measure]:
        return iter(self._measures.values())

    def names(self) -> list[str]:
        """All registered measure names."""
        return list(self._measures)

    def for_characteristic(self, characteristic: QualityCharacteristic) -> list[Measure]:
        """All measures contributing to one characteristic."""
        return [m for m in self._measures.values() if m.characteristic is characteristic]

    def characteristics(self) -> list[QualityCharacteristic]:
        """The characteristics covered by the registered measures."""
        seen: list[QualityCharacteristic] = []
        for measure in self._measures.values():
            if measure.characteristic not in seen:
                seen.append(measure.characteristic)
        return seen


def default_registry() -> MeasureRegistry:
    """The default measure palette of the tool.

    Mirrors (and extends) the example measures of Fig. 1: performance
    (process cycle time, average latency per tuple), data quality
    (freshness age, freshness score, error/null/duplicate rates),
    manageability (longest path, coupling, number of merge elements) plus
    reliability and cost measures used by the Fig. 2 and Fig. 4 artefacts.
    """
    from repro.quality import cost, data_quality, manageability, performance, reliability

    registry = MeasureRegistry()
    for module in (performance, data_quality, reliability, manageability, cost):
        for measure in module.MEASURES:
            registry.register(measure)
    return registry
