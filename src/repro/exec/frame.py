"""The in-memory data frame of the reference execution backend.

Backends exchange data with the harness in one canonical currency:
*columns* -- an ordered ``{name: [values...]}`` mapping of plain Python
scalars (``int``, ``float``, ``str``, ``bool`` or ``None``).  The local
backend also uses that representation internally (as a list of row
dictionaries); pandas and polars convert at the frame boundary and keep
their native structures in between.

The module also owns the *normalization* rules of the differential
conformance suite: :func:`canonical_rows` reduces any backend's output to
a sorted, dtype-normalized list of row tuples, and :func:`frame_bytes`
digests it for the byte-identity assertions of the property tests.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping


def normalize_value(value: Any) -> Any:
    """Reduce a backend cell value to a plain Python scalar.

    ``None``/NaN collapse to ``None``; numpy scalars (and anything else
    exposing ``item()``) are unwrapped; booleans stay booleans (checked
    before the integer test -- ``bool`` subclasses ``int``).
    """
    if value is None:
        return None
    item = getattr(value, "item", None)
    if item is not None and not isinstance(value, (int, float, str, bytes, bool)):
        value = item()
    if isinstance(value, bool):
        return value
    if isinstance(value, float):
        if math.isnan(value):
            return None
        return value
    if isinstance(value, (int, str)):
        return value
    if isinstance(value, bytes):
        return value.hex()
    return str(value)


def _sort_token(value: Any) -> tuple:
    """A total order over normalized cell values (None first, then by type)."""
    if value is None:
        return (0, "", "")
    if isinstance(value, bool):
        return (1, "", str(int(value)))
    if isinstance(value, (int, float)):
        return (2, "", repr(float(value)))
    return (3, type(value).__name__, str(value))


def canonical_rows(columns: Mapping[str, list]) -> list[tuple]:
    """Rows of a column mapping as sorted, normalized tuples.

    The comparison currency of the conformance suite: two backends agree
    on a result iff their canonical rows (and column names) are equal.
    Rows are sorted because backends are free to reorder rows wherever an
    operator does not prescribe an order (hash joins, group-bys).
    """
    names = list(columns)
    length = max((len(columns[n]) for n in names), default=0)
    rows = []
    for i in range(length):
        rows.append(
            tuple(
                normalize_value(columns[n][i]) if i < len(columns[n]) else None
                for n in names
            )
        )
    rows.sort(key=lambda row: tuple(_sort_token(v) for v in row))
    return rows


def rows_approximately_equal(
    left: Iterable[tuple], right: Iterable[tuple], rel_tol: float = 1e-9
) -> bool:
    """Whether two canonical row lists are value-identical.

    Floats are compared with a relative tolerance: backends may sum in a
    different order, so the last bits of an aggregate are not portable.
    Everything else must match exactly.
    """
    left, right = list(left), list(right)
    if len(left) != len(right):
        return False
    for lrow, rrow in zip(left, right):
        if len(lrow) != len(rrow):
            return False
        for lval, rval in zip(lrow, rrow):
            if isinstance(lval, float) and isinstance(rval, (int, float)):
                if not math.isclose(lval, float(rval), rel_tol=rel_tol, abs_tol=1e-12):
                    return False
            elif isinstance(rval, float) and isinstance(lval, (int, float)):
                if not math.isclose(float(lval), rval, rel_tol=rel_tol, abs_tol=1e-12):
                    return False
            elif lval != rval:
                return False
    return True


def frame_bytes(columns: Mapping[str, list]) -> str:
    """A deterministic digest of a column mapping (column names + rows).

    Two executions of the same compiled flow must produce the same digest
    -- the determinism property the compile-execute tests assert on.
    """
    payload = json.dumps(
        {"columns": list(columns), "rows": canonical_rows(columns)},
        sort_keys=False,
        default=str,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class Frame:
    """The local backend's columnar frame: ordered columns, dict rows.

    ``columns`` fixes the column order; every row dictionary holds one
    value per column.  Rows may carry extra keys transiently while an
    operator is deriving new columns -- :meth:`to_columns` only reads the
    declared ones.
    """

    columns: list[str] = field(default_factory=list)
    rows: list[dict] = field(default_factory=list)

    @classmethod
    def from_columns(cls, columns: Mapping[str, list]) -> "Frame":
        names = list(columns)
        length = max((len(columns[n]) for n in names), default=0)
        rows = [
            {n: (columns[n][i] if i < len(columns[n]) else None) for n in names}
            for i in range(length)
        ]
        return cls(columns=names, rows=rows)

    def to_columns(self) -> dict[str, list]:
        return {
            name: [normalize_value(row.get(name)) for row in self.rows]
            for name in self.columns
        }

    @property
    def row_count(self) -> int:
        return len(self.rows)

    def replace_rows(self, rows: list[dict]) -> "Frame":
        """A new frame with the same columns and different rows."""
        return Frame(columns=list(self.columns), rows=rows)

    def copy(self) -> "Frame":
        return Frame(columns=list(self.columns), rows=[dict(r) for r in self.rows])
