"""Measured runs: execute planned alternatives and score the simulator.

The planner ranks alternatives by *estimated* measures; this module
closes the loop by actually executing the top-k alternatives on sampled
workload data and comparing the measured wall-time ranking against the
simulated one.  The agreement statistic is Spearman's rank correlation
(average ranks for ties, Pearson over the ranks): 1.0 means the
simulator orders the top-k exactly as reality does, 0 means no
relationship.  The calibration benchmark asserts a floor on it.

Timing noise is handled the standard way for micro-measurement: every
alternative first runs once untimed (so no flow pays the one-off cost of
warming the process-wide expression and data caches -- the planner's
favourite executes first and would otherwise be penalised
systematically), then the timed ``repeats`` interleave round-robin
across alternatives (slow drift in machine load hits every flow alike
instead of whichever happened to run last) and the *minimum* wall time
counts -- the minimum is the least contaminated by scheduler noise, and
all alternatives see identical source data (same ``data_seed``), so the
remaining differences are attributable to flow structure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.exec.backends import ETLBackend
from repro.exec.executor import ExecutionReport, FlowExecutor, RecoveryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a core import cycle
    from repro.core.planner import PlanningResult

__all__ = [
    "DEFAULT_MEASURE",
    "MeasuredRun",
    "CalibrationReport",
    "execute_top_k",
    "spearman_correlation",
]

#: The simulated measure calibrated against wall time (lower is better).
DEFAULT_MEASURE = "process_cycle_time_ms"


def _average_ranks(values: Sequence[float]) -> list[float]:
    """Ranks (1-based) with ties sharing their average rank."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    start = 0
    while start < len(order):
        stop = start
        while stop + 1 < len(order) and values[order[stop + 1]] == values[order[start]]:
            stop += 1
        average = (start + stop) / 2.0 + 1.0
        for position in range(start, stop + 1):
            ranks[order[position]] = average
        start = stop + 1
    return ranks


def spearman_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation of two paired samples.

    Returns 0.0 when either side is constant (the correlation is
    undefined there, and "no evidence of agreement" is the conservative
    reading for a calibration check).
    """
    if len(xs) != len(ys):
        raise ValueError(f"paired samples differ in length: {len(xs)} vs {len(ys)}")
    if len(xs) < 2:
        raise ValueError("rank correlation needs at least two pairs")
    rank_x = _average_ranks(xs)
    rank_y = _average_ranks(ys)
    n = len(xs)
    mean_x = sum(rank_x) / n
    mean_y = sum(rank_y) / n
    cov = sum((a - mean_x) * (b - mean_y) for a, b in zip(rank_x, rank_y))
    var_x = sum((a - mean_x) ** 2 for a in rank_x)
    var_y = sum((b - mean_y) ** 2 for b in rank_y)
    if var_x == 0.0 or var_y == 0.0:
        return 0.0
    return cov / (var_x * var_y) ** 0.5


@dataclass
class MeasuredRun:
    """One alternative's simulated estimate vs. measured execution."""

    label: str
    simulated: float
    measured_ms: float
    repeats_ms: list[float] = field(default_factory=list)
    rows_loaded: int = 0
    recovered_nodes: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "simulated": round(self.simulated, 4),
            "measured_ms": round(self.measured_ms, 3),
            "repeats_ms": [round(v, 3) for v in self.repeats_ms],
            "rows_loaded": self.rows_loaded,
            "recovered_nodes": self.recovered_nodes,
        }


@dataclass
class CalibrationReport:
    """Simulated-vs-measured comparison over the executed top-k."""

    backend: str
    measure: str
    data_seed: int
    repeats: int
    pool: str = "skyline"
    runs: list[MeasuredRun] = field(default_factory=list)

    @property
    def spearman(self) -> float:
        """Rank agreement between simulated and measured orderings."""
        if len(self.runs) < 2:
            return 0.0
        return spearman_correlation(
            [run.simulated for run in self.runs],
            [run.measured_ms for run in self.runs],
        )

    @property
    def simulated_ranking(self) -> list[str]:
        """Labels best-first by the simulator's estimate."""
        return [r.label for r in sorted(self.runs, key=lambda run: run.simulated)]

    @property
    def measured_ranking(self) -> list[str]:
        """Labels best-first by measured wall time."""
        return [r.label for r in sorted(self.runs, key=lambda run: run.measured_ms)]

    def to_dict(self) -> dict[str, Any]:
        return {
            "backend": self.backend,
            "measure": self.measure,
            "data_seed": self.data_seed,
            "repeats": self.repeats,
            "pool": self.pool,
            "spearman": round(self.spearman, 4),
            "simulated_ranking": self.simulated_ranking,
            "measured_ranking": self.measured_ranking,
            "runs": [run.to_dict() for run in self.runs],
        }


def _simulated_value(alternative, measure: str) -> float | None:
    profile = alternative.profile
    if profile is None:
        return None
    entry = profile.values.get(measure)
    return None if entry is None else float(entry.value)


def execute_top_k(
    planning_result: "PlanningResult",
    backend: ETLBackend | str = "local",
    k: int = 5,
    repeats: int = 2,
    data_seed: int = 7,
    policy: RecoveryPolicy | None = None,
    params: Mapping[str, Any] | None = None,
    measure: str = DEFAULT_MEASURE,
    pool: str = "skyline",
) -> CalibrationReport:
    """Execute the planner's top-k alternatives and score its ranking.

    ``pool`` picks which alternatives count as "planned": ``"skyline"``
    (default) draws from the Pareto-front designs -- the set the planner
    actually presents to the user, which spans structurally *different*
    redesigns (lean filter placements vs. checkpoint-bearing reliable
    flows) and therefore carries rank signal in both worlds; ``"all"``
    draws from every constraint-satisfying alternative, whose best-k are
    typically near-ties on the simulated measure (rank agreement over
    near-ties measures timing noise, not simulator fidelity).  Within
    the pool the k lowest simulated ``measure`` values are executed; if
    the pool is smaller than ``k`` it is topped up from the remaining
    alternatives in simulated order.

    Every alternative executes once untimed (cache warmup), then
    ``repeats`` timed rounds interleave across the alternatives on
    identical sampled data (``data_seed``); the minimum wall time per
    alternative enters the measured ranking.  The planning result itself
    is never mutated
    -- plans stay byte-identical to the non-executing path, which the
    calibration benchmark asserts via
    :meth:`~repro.core.planner.PlanningResult.fingerprint`.
    """
    if k < 2:
        raise ValueError(f"calibration needs k >= 2 alternatives, got k={k}")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if pool not in ("skyline", "all"):
        raise ValueError(f"pool must be 'skyline' or 'all', got {pool!r}")

    def scored_from(alternatives) -> list[tuple[float, Any]]:
        pairs = [
            (value, alternative)
            for alternative in alternatives
            if (value := _simulated_value(alternative, measure)) is not None
        ]
        pairs.sort(key=lambda item: item[0])
        return pairs

    scored = scored_from(
        planning_result.skyline if pool == "skyline" else planning_result.alternatives
    )
    if len(scored) < k and pool == "skyline":
        chosen = {id(alternative) for _, alternative in scored}
        extra = [
            item
            for item in scored_from(planning_result.alternatives)
            if id(item[1]) not in chosen
        ]
        scored.extend(extra[: k - len(scored)])
        scored.sort(key=lambda item: item[0])
    if len(scored) < 2:
        raise ValueError(
            f"planning result has {len(scored)} alternative(s) with a "
            f"{measure!r} estimate; calibration needs at least 2"
        )
    top = scored[:k]

    executor = FlowExecutor(
        backend=backend, policy=policy, data_seed=data_seed, params=params
    )
    report = CalibrationReport(
        backend=executor.backend.name,
        measure=measure,
        data_seed=data_seed,
        repeats=repeats,
        pool=pool,
    )
    reports: list[ExecutionReport] = [
        executor.execute(alternative.flow) for _, alternative in top
    ]
    timings: list[list[float]] = [[] for _ in top]
    for _ in range(repeats):
        for index, (_, alternative) in enumerate(top):
            started = time.perf_counter()
            executor.execute(alternative.flow)
            timings[index].append((time.perf_counter() - started) * 1000.0)
    for index, (simulated, alternative) in enumerate(top):
        report.runs.append(
            MeasuredRun(
                label=alternative.label or alternative.flow.name,
                simulated=simulated,
                measured_ms=min(timings[index]),
                repeats_ms=timings[index],
                rows_loaded=reports[index].rows_loaded,
                recovered_nodes=len(reports[index].recovered_nodes()),
            )
        )
    return report
