"""Execute a compiled plan with error-routed recovery.

The executor walks the plan in topological order and hands each node to
the backend.  A node failure never aborts the DAG directly: it routes to
the recovery handler, which applies the same semantics the paper's
reliability patterns inject --

* **retry** -- allowed only when a ``CHECKPOINT`` covers the node (the
  ``AddCheckpoint`` pattern's recovery-point semantics): the persisted
  savepoint is replayed, the node re-runs, up to
  :attr:`RecoveryPolicy.max_retries` times.
* on exhaustion (or when no savepoint covers the node), the policy's
  ``on_exhaustion`` routing applies: ``"raise"`` surfaces an
  :class:`ExecutionError`, ``"skip"`` emits empty frames downstream, and
  ``"dead_letter"`` additionally captures the failing node's input rows
  in the report's dead-letter store.

Fault injection for tests rides on the operation config: a node with
``config={"fail_times": n}`` fails its first ``n`` attempts at the
executor level, so a patterned flow (checkpoint upstream) demonstrably
recovers where the un-patterned flow raises.
"""

from __future__ import annotations

import json
import logging
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from repro.etl.graph import ETLGraph
from repro.etl.operations import Operation
from repro.exec.backends import ETLBackend, create_backend
from repro.exec.compiler import CompiledNode, ExecutablePlan, compile_flow
from repro.exec.data import generate_source_columns
from repro.exec.frame import frame_bytes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

logger = logging.getLogger("repro.exec.executor")

__all__ = [
    "ExecutionError",
    "FaultInjected",
    "RecoveryPolicy",
    "NodeRun",
    "ExecutionReport",
    "ExecutionContext",
    "FlowExecutor",
]

#: Valid ``RecoveryPolicy.on_exhaustion`` routings.
EXHAUSTION_ROUTES = ("raise", "skip", "dead_letter")


class ExecutionError(RuntimeError):
    """A node failed and the recovery policy routed the failure out."""


class FaultInjected(RuntimeError):
    """The test-only fault raised for ``config={"fail_times": n}`` nodes."""


@dataclass(frozen=True)
class RecoveryPolicy:
    """How node failures are routed (the executable reliability semantics).

    ``max_retries`` bounds savepoint-gated re-execution; ``on_exhaustion``
    picks the terminal routing once retries are spent (or unavailable
    because no checkpoint covers the node).
    """

    max_retries: int = 2
    on_exhaustion: str = "raise"

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.on_exhaustion not in EXHAUSTION_ROUTES:
            raise ValueError(
                f"on_exhaustion must be one of {EXHAUSTION_ROUTES}, "
                f"got {self.on_exhaustion!r}"
            )


@dataclass
class NodeRun:
    """Execution record of one node (one row of the report)."""

    op_id: str
    kind: str
    status: str  # "ok" | "recovered" | "skipped" | "dead_letter"
    attempts: int
    rows_in: int
    rows_out: int
    elapsed_ms: float
    error: str | None = None
    savepoint_used: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "op_id": self.op_id,
            "kind": self.kind,
            "status": self.status,
            "attempts": self.attempts,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "error": self.error,
            "savepoint_used": self.savepoint_used,
        }


@dataclass
class ExecutionReport:
    """The outcome of one flow execution."""

    flow_name: str
    backend: str
    node_runs: list[NodeRun] = field(default_factory=list)
    outputs: dict[str, dict[str, list]] = field(default_factory=dict)
    dead_letters: dict[str, dict[str, Any]] = field(default_factory=dict)
    elapsed_ms: float = 0.0

    @property
    def statuses(self) -> dict[str, str]:
        """Final status per executed node."""
        return {run.op_id: run.status for run in self.node_runs}

    @property
    def rows_loaded(self) -> int:
        """Total rows across all load outputs."""
        total = 0
        for columns in self.outputs.values():
            total += max((len(v) for v in columns.values()), default=0)
        return total

    def frame_bytes(self) -> dict[str, str]:
        """Deterministic digest per load output (the determinism currency)."""
        return {op_id: frame_bytes(columns) for op_id, columns in sorted(self.outputs.items())}

    def recovered_nodes(self) -> list[str]:
        return [r.op_id for r in self.node_runs if r.status == "recovered"]

    def to_dict(self) -> dict[str, Any]:
        return {
            "flow": self.flow_name,
            "backend": self.backend,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "rows_loaded": self.rows_loaded,
            "outputs": {op_id: fb for op_id, fb in self.frame_bytes().items()},
            "dead_letters": sorted(self.dead_letters),
            "nodes": [run.to_dict() for run in self.node_runs],
        }


class ExecutionContext:
    """What a backend may ask the harness for while running one node.

    Source materialization, savepoint persistence (checkpoints serialize
    their frame through JSON -- real I/O-shaped work, which is what makes
    ``AddCheckpoint`` measurably non-free), load capture, router fanout,
    input operations and parameter bindings.
    """

    def __init__(
        self,
        plan: ExecutablePlan,
        data_seed: int = 7,
        params: Mapping[str, Any] | None = None,
    ) -> None:
        self.plan = plan
        self.data_seed = data_seed
        self.params: dict[str, Any] = dict(params or {})
        self.outputs: dict[str, dict[str, list]] = {}
        self._savepoints: dict[str, str] = {}

    # -- backend-facing API ---------------------------------------------

    def source_columns(self, operation: Operation) -> dict[str, list]:
        """Materialized sampled columns for an extraction operation."""
        return generate_source_columns(operation, seed=self.data_seed)

    def record_savepoint(self, operation: Operation, columns: Mapping[str, list]) -> None:
        """Persist a checkpoint frame (JSON-serialized, like a savepoint file)."""
        name = operation.config.get("savepoint", operation.op_id)
        self._savepoints[str(name)] = json.dumps(
            {k: list(v) for k, v in columns.items()}, default=str
        )

    def load_savepoint(self, name: str) -> dict[str, list] | None:
        """Re-read a persisted savepoint (None when never written)."""
        payload = self._savepoints.get(str(name))
        return None if payload is None else json.loads(payload)

    def record_output(self, operation: Operation, columns: Mapping[str, list]) -> None:
        """Capture the frame a load operation delivered."""
        self.outputs[operation.op_id] = {k: list(v) for k, v in columns.items()}

    def fanout(self, operation: Operation) -> int:
        """How many output frames a router node must produce."""
        node = self.plan.nodes.get(operation.op_id)
        return node.fanout if node is not None else 1

    def input_operation(self, operation: Operation, index: int) -> Operation | None:
        """The operation feeding input slot ``index`` of a node."""
        node = self.plan.nodes.get(operation.op_id)
        if node is None or index >= len(node.inputs):
            return None
        return self.plan.nodes[node.inputs[index][0]].operation

    # -- executor-facing API --------------------------------------------

    def savepoint_for(self, op_id: str) -> str | None:
        """Name of the persisted savepoint covering a node, if written."""
        cover = self.plan.savepoint_cover.get(op_id)
        if cover is None:
            return None
        name = str(self.plan.nodes[cover].operation.config.get("savepoint", cover))
        return name if name in self._savepoints else None


class FlowExecutor:
    """Run compiled plans (or flows) on a backend with recovery routing."""

    def __init__(
        self,
        backend: ETLBackend | str = "local",
        policy: RecoveryPolicy | None = None,
        data_seed: int = 7,
        params: Mapping[str, Any] | None = None,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        self.backend = create_backend(backend) if isinstance(backend, str) else backend
        self.policy = policy or RecoveryPolicy()
        self.data_seed = data_seed
        self.params = dict(params or {})
        # Observability only: per-node exec.* counters and timings.
        self.metrics_registry = registry

    def execute(self, flow_or_plan: ETLGraph | ExecutablePlan) -> ExecutionReport:
        """Execute a flow end to end and return its report."""
        if isinstance(flow_or_plan, ExecutablePlan):
            plan = flow_or_plan
        else:
            plan = compile_flow(flow_or_plan, self.backend)
        context = ExecutionContext(plan, data_seed=self.data_seed, params=self.params)
        report = ExecutionReport(flow_name=plan.flow.name, backend=self.backend.name)
        frames: dict[tuple[str, int], Any] = {}

        started = time.perf_counter()
        for op_id in plan.order:
            node = plan.nodes[op_id]
            inputs = [frames[(pred, slot)] for pred, slot in node.inputs]
            run, result = self._run_node(node, inputs, context, report.dead_letters)
            report.node_runs.append(run)
            if isinstance(result, list):
                for slot, frame in enumerate(result):
                    frames[(op_id, slot)] = frame
            else:
                frames[(op_id, 0)] = result
        report.elapsed_ms = (time.perf_counter() - started) * 1000.0
        report.outputs = context.outputs
        return report

    # ------------------------------------------------------------------

    def _observe_run(self, run: NodeRun) -> None:
        """Mirror one node's outcome into the metrics registry and the log."""
        registry = self.metrics_registry
        if registry is not None:
            registry.counter(f"exec.nodes_{run.status}").inc()
            if run.attempts > 1:
                registry.counter("exec.retries").inc(run.attempts - 1)
            registry.histogram("exec.node_seconds").observe(run.elapsed_ms / 1000.0)
        if run.status in ("skipped", "dead_letter"):
            logger.warning(
                "node %s %s after %d attempt(s): %s",
                run.op_id, run.status, run.attempts, run.error,
            )
        elif run.status == "recovered":
            logger.info(
                "node %s recovered on attempt %d (savepoint %s)",
                run.op_id, run.attempts, run.savepoint_used,
            )

    def _run_node(
        self,
        node: CompiledNode,
        inputs: list,
        context: ExecutionContext,
        dead_letters: dict[str, dict[str, Any]],
    ) -> tuple[NodeRun, Any]:
        operation = node.operation
        fail_times = int(operation.config.get("fail_times", 0) or 0)
        rows_in = sum(self.backend.row_count(frame) for frame in inputs)
        savepoint = context.savepoint_for(operation.op_id)
        max_attempts = 1 + (self.policy.max_retries if savepoint is not None else 0)

        attempts = 0
        last_error: Exception | None = None
        started = time.perf_counter()
        while attempts < max_attempts:
            attempts += 1
            try:
                if attempts <= fail_times:
                    raise FaultInjected(
                        f"injected fault in {operation.op_id!r} "
                        f"(attempt {attempts}/{fail_times})"
                    )
                result = self.backend.run_node(operation, inputs, context)
                elapsed = (time.perf_counter() - started) * 1000.0
                run = NodeRun(
                    op_id=operation.op_id,
                    kind=operation.kind.value,
                    status="ok" if attempts == 1 else "recovered",
                    attempts=attempts,
                    rows_in=rows_in,
                    rows_out=self._count_rows(result),
                    elapsed_ms=elapsed,
                    error=str(last_error) if last_error is not None else None,
                    savepoint_used=savepoint if attempts > 1 else None,
                )
                self._observe_run(run)
                return run, result
            except Exception as error:  # noqa: BLE001 - every failure routes to recovery
                last_error = error
                if attempts < max_attempts:
                    # Recovery-point replay: re-read the persisted
                    # savepoint bytes before re-running, like a restart
                    # from the checkpoint file would.
                    context.load_savepoint(savepoint)  # type: ignore[arg-type]
                    continue
                break

        # Retries exhausted (or never available): terminal routing.
        elapsed = (time.perf_counter() - started) * 1000.0
        assert last_error is not None
        if self.policy.on_exhaustion == "raise":
            raise ExecutionError(
                f"operation {operation.op_id!r} ({operation.kind.value}) failed "
                f"after {attempts} attempt(s): {last_error}"
            ) from last_error

        status = "skipped" if self.policy.on_exhaustion == "skip" else "dead_letter"
        if status == "dead_letter":
            first_input = (
                self.backend.to_columns(inputs[0]) if inputs else {}
            )
            dead_letters[operation.op_id] = {
                "error": str(last_error),
                "rows_in": rows_in,
                "columns": sorted(first_input),
            }
        empty = self.backend.from_columns({})
        result = [empty] * node.fanout if node.fanout > 1 else empty
        run = NodeRun(
            op_id=operation.op_id,
            kind=operation.kind.value,
            status=status,
            attempts=attempts,
            rows_in=rows_in,
            rows_out=0,
            elapsed_ms=elapsed,
            error=str(last_error),
            savepoint_used=savepoint,
        )
        self._observe_run(run)
        return run, result

    def _count_rows(self, result: Any) -> int:
        if isinstance(result, list):
            return sum(self.backend.row_count(frame) for frame in result)
        return self.backend.row_count(result)
