"""Interchangeable dataframe backends for ETL flow execution.

An :class:`ETLBackend` turns one operation at a time into data: it holds
a *dispatch table* mapping :class:`~repro.etl.operations.OperationKind`
to a handler, and the executor walks the compiled DAG calling
:meth:`ETLBackend.run_node` on each node with the frames produced by its
predecessors.  Three backends implement the protocol:

* :class:`LocalBackend` -- the dependency-free reference implementation
  over plain Python rows (:class:`repro.exec.frame.Frame`).  Always
  available; the conformance suite treats it as ground truth.
* :class:`PandasBackend` -- native :mod:`pandas` DataFrames.  Optional:
  constructing it without pandas installed raises
  :class:`BackendUnavailableError`, and its test arm auto-skips.
* :class:`PolarsBackend` -- native :mod:`polars` DataFrames, gated the
  same way.

All backends share one expression interpreter (:mod:`repro.exec.expr`)
for predicate and derivation text, so the differential suite compares
their *structural* operators (joins, group-bys, sorts, dedup), not three
expression dialects.  Row-level semantics are normalized at the frame
boundary (:func:`repro.exec.frame.normalize_value`).
"""

from __future__ import annotations

import importlib.util
import zlib
from typing import Any, Callable, Mapping, Sequence

from repro.etl.operations import Operation, OperationKind
from repro.exec import data as datagen
from repro.exec.expr import CompiledPredicate, compile_expression, evaluate
from repro.exec.frame import Frame, _sort_token, normalize_value

__all__ = [
    "EXECUTOR_BACKENDS",
    "BackendUnavailableError",
    "UnsupportedOperationError",
    "ETLBackend",
    "LocalBackend",
    "PandasBackend",
    "PolarsBackend",
    "available_backends",
    "create_backend",
]

#: Names accepted by the ``executor_backend`` configuration knob, in
#: preference order.  Kept in sync with
#: ``repro.core.configuration.EXECUTOR_BACKENDS`` (not imported there:
#: the configuration module must stay import-light).
EXECUTOR_BACKENDS: tuple[str, ...] = ("local", "pandas", "polars")


class BackendUnavailableError(RuntimeError):
    """Raised when constructing a backend whose library is not installed."""


class UnsupportedOperationError(ValueError):
    """Raised when a backend has no handler for an operation kind."""


#: Control kinds that move data through unchanged on every backend.
PASSTHROUGH_KINDS: tuple[OperationKind, ...] = (
    OperationKind.RECOVERY_BRANCH,
    OperationKind.ENCRYPT,
    OperationKind.DECRYPT,
    OperationKind.ACCESS_CONTROL,
    OperationKind.SCHEDULE,
    OperationKind.NOOP,
)


def _partition_index(value: Any, partitions: int) -> int:
    """Deterministic hash partition of one key value (backend-agnostic)."""
    digest = zlib.crc32(repr(normalize_value(value)).encode("utf-8"))
    return digest % max(1, partitions)


def _join_pairs(
    on: Sequence[str], left_names: Sequence[str], right_names: Sequence[str]
) -> list[tuple[str, str]]:
    """Resolve ``on`` entries into ``(left column, right column)`` pairs.

    The builders express joins either as a shared column name present on
    both sides (``on=["id"]``) or as a left/right pair
    (``on=["o_custkey", "c_custkey"]``); this resolves both spellings.

    Returns an empty list when no key resolves against either side --
    generated and heavily projected flows may join on a column an
    upstream operation dropped; the join then degrades to passing the
    probe side through unchanged (the total-function behaviour the
    simulator's abstract cost model implies) instead of failing the run.
    """
    left_set, right_set = set(left_names), set(right_names)
    pairs: list[tuple[str, str]] = []
    pending_left: list[str] = []
    pending_right: list[str] = []
    for column in on:
        in_left, in_right = column in left_set, column in right_set
        if in_left and in_right:
            pairs.append((column, column))
        elif in_left:
            if pending_right:
                pairs.append((column, pending_right.pop(0)))
            else:
                pending_left.append(column)
        elif in_right:
            if pending_left:
                pairs.append((pending_left.pop(0), column))
            else:
                pending_right.append(column)
    return pairs


def _lookup_pairs(
    on: Sequence[str],
    reference_operation: Operation | None,
    right_names: Sequence[str],
) -> list[tuple[str, str]]:
    """Key pairs for a lookup: probe columns vs. the reference's keys."""
    right_set = set(right_names)
    key_names = []
    if reference_operation is not None:
        key_names = [
            f.name for f in reference_operation.output_schema.key_fields if f.name in right_set
        ]
    pairs: list[tuple[str, str]] = []
    for index, column in enumerate(on):
        if column in right_set:
            pairs.append((column, column))
        elif index < len(key_names):
            pairs.append((column, key_names[index]))
        elif right_names:
            pairs.append((column, right_names[0]))
    return pairs


def _collision_renames(
    left_names: Sequence[str], right_names: Sequence[str], exclude: set[str]
) -> dict[str, str]:
    """Rename colliding right-side columns the way ``Schema.merge`` does."""
    taken = set(left_names)
    renames: dict[str, str] = {}
    for name in right_names:
        if name in exclude:
            continue
        target = name
        while target in taken:
            target = "r_" + target
        if target != name:
            renames[name] = target
        taken.add(target)
    return renames


class ETLBackend:
    """Base class of the executable backends (the dispatch-table protocol).

    Subclasses implement ``_op_<kind>`` methods; :meth:`_build_dispatch`
    collects them into :attr:`dispatch` keyed by
    :class:`~repro.etl.operations.OperationKind`.  Handlers receive the
    operation, the list of input frames (predecessor order) and the
    execution context, and return either one frame or -- for routers -- a
    list of frames, one per outgoing edge.
    """

    name = "abstract"

    def __init__(self) -> None:
        self.dispatch: dict[OperationKind, Callable] = self._build_dispatch()

    @classmethod
    def is_available(cls) -> bool:
        """Whether the backend's library is importable here."""
        return True

    def _build_dispatch(self) -> dict[OperationKind, Callable]:
        table: dict[OperationKind, Callable] = {}
        for kind in OperationKind:
            handler = getattr(self, f"_op_{kind.value}", None)
            if handler is not None:
                table[kind] = handler
        for kind in PASSTHROUGH_KINDS:
            table.setdefault(kind, self._op_passthrough)
        return table

    def supports(self, kind: OperationKind) -> bool:
        """Whether this backend has a handler for ``kind``."""
        return kind in self.dispatch

    def run_node(self, operation: Operation, inputs: list, context) -> Any:
        """Execute one operation over its input frames."""
        handler = self.dispatch.get(operation.kind)
        if handler is None:
            raise UnsupportedOperationError(
                f"backend {self.name!r} does not implement operation kind "
                f"{operation.kind.value!r} (operation {operation.op_id!r})"
            )
        return handler(operation, inputs, context)

    # -- frame boundary (must be overridden) ----------------------------

    def from_columns(self, columns: Mapping[str, list]):
        raise NotImplementedError

    def to_columns(self, frame) -> dict[str, list]:
        raise NotImplementedError

    def row_count(self, frame) -> int:
        raise NotImplementedError

    def column_names(self, frame) -> list[str]:
        raise NotImplementedError

    def _orient(self, operation: Operation, inputs: list) -> tuple[int, int]:
        """Resolve which input is the probe (left) side of a join/lookup.

        Edge insertion order is not stable across graph copies (pattern
        application may enumerate predecessors differently), so the role
        of each input is recovered from the data: the side that carries
        the first ``on`` column is the probe.  Falls back to the given
        order when the column appears on both sides or neither.
        """
        on = operation.config.get("on", [])
        if len(inputs) < 2 or not on:
            return (0, 1)
        first = on[0]
        in_first = first in set(self.column_names(inputs[0]))
        in_second = first in set(self.column_names(inputs[1]))
        if in_second and not in_first:
            return (1, 0)
        return (0, 1)

    def _op_passthrough(self, operation: Operation, inputs: list, context):
        return inputs[0] if inputs else self.from_columns({})


# ----------------------------------------------------------------------
# Local reference backend (pure Python rows)
# ----------------------------------------------------------------------


class LocalBackend(ETLBackend):
    """The dependency-free reference backend over plain Python rows."""

    name = "local"

    # -- frame boundary -------------------------------------------------

    def from_columns(self, columns: Mapping[str, list]) -> Frame:
        return Frame.from_columns(columns)

    def to_columns(self, frame: Frame) -> dict[str, list]:
        return frame.to_columns()

    def row_count(self, frame: Frame) -> int:
        return frame.row_count

    def column_names(self, frame: Frame) -> list[str]:
        return list(frame.columns)

    # -- extraction -----------------------------------------------------

    def _op_extract_table(self, operation, inputs, context) -> Frame:
        return self.from_columns(context.source_columns(operation))

    _op_extract_file = _op_extract_table

    def _op_extract_savepoint(self, operation, inputs, context) -> Frame:
        saved = context.load_savepoint(operation.config.get("savepoint", "savepoint"))
        return self.from_columns(saved or {})

    # -- row-level transformations --------------------------------------

    def _op_filter(self, operation, inputs, context) -> Frame:
        frame = inputs[0]
        text = operation.config.get("predicate", "")
        if not text:
            return frame
        predicate = CompiledPredicate.compile(text)
        params = context.params
        return frame.replace_rows([r for r in frame.rows if predicate(r, params)])

    def _op_project(self, operation, inputs, context) -> Frame:
        frame = inputs[0]
        keep = [c for c in operation.config.get("keep", []) if c in frame.columns]
        if not keep:
            return frame
        return Frame(columns=keep, rows=[{c: r.get(c) for c in keep} for r in frame.rows])

    def _op_derive(self, operation, inputs, context) -> Frame:
        frame = inputs[0]
        expressions = operation.config.get("expressions", {})
        if not expressions:
            return frame
        compiled = [(name, compile_expression(text)) for name, text in expressions.items()]
        params = context.params
        rows = []
        for row in frame.rows:
            env = dict(row)
            for name, node in compiled:
                env[name] = evaluate(node, env, params)
            rows.append(env)
        columns = list(frame.columns) + [n for n, _ in compiled if n not in frame.columns]
        return Frame(columns=columns, rows=rows)

    def _op_rename(self, operation, inputs, context) -> Frame:
        frame = inputs[0]
        renames = operation.config.get("renames", {})
        if not renames:
            return frame
        columns = [renames.get(c, c) for c in frame.columns]
        rows = [{renames.get(k, k): v for k, v in r.items()} for r in frame.rows]
        return Frame(columns=columns, rows=rows)

    def _op_convert(self, operation, inputs, context) -> Frame:
        frame = inputs[0]
        conversions = operation.config.get("conversions", {})
        if not conversions:
            return frame
        rows = [dict(r) for r in frame.rows]
        for column, target in conversions.items():
            if column not in frame.columns:
                continue
            caster = _make_caster(str(target))
            for row in rows:
                row[column] = caster(row.get(column))
        return frame.replace_rows(rows)

    def _op_surrogate_key(self, operation, inputs, context) -> Frame:
        frame = inputs[0]
        key_field = operation.config.get("key_field", "surrogate_key")
        rows = [dict(r, **{key_field: i + 1}) for i, r in enumerate(frame.rows)]
        columns = list(frame.columns)
        if key_field not in columns:
            columns.append(key_field)
        return Frame(columns=columns, rows=rows)

    def _op_lookup(self, operation, inputs, context) -> Frame:
        frame = inputs[0]
        if len(inputs) < 2:
            reference = operation.config.get("reference", "reference")
            flag = f"{reference}_matched"
            columns = list(frame.columns) + ([flag] if flag not in frame.columns else [])
            return Frame(columns=columns, rows=[dict(r, **{flag: True}) for r in frame.rows])
        probe_index, reference_index = self._orient(operation, inputs)
        probe, reference = inputs[probe_index], inputs[reference_index]
        pairs = _lookup_pairs(
            operation.config.get("on", []),
            context.input_operation(operation, reference_index),
            reference.columns,
        )
        return self._hash_join(probe, reference, pairs, how="left")

    def _op_slowly_changing_dim(self, operation, inputs, context) -> Frame:
        frame = inputs[0]
        if "scd_current" in frame.columns:
            return frame
        return Frame(
            columns=list(frame.columns) + ["scd_current"],
            rows=[dict(r, scd_current=True) for r in frame.rows],
        )

    def _op_aggregate(self, operation, inputs, context) -> Frame:
        frame = inputs[0]
        group_by = [c for c in operation.config.get("group_by", []) if c in frame.columns]
        aggregations = dict(operation.config.get("aggregations", {})) or {"row_count": "count"}
        groups: dict[tuple, list[dict]] = {}
        order: list[tuple] = []
        for row in frame.rows:
            key = tuple(normalize_value(row.get(c)) for c in group_by)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = bucket = []
                order.append(key)
            bucket.append(row)
        out_rows = []
        for key in order:
            bucket = groups[key]
            out = {c: v for c, v in zip(group_by, key)}
            for column, function in aggregations.items():
                out[column] = _aggregate_bucket(bucket, column, str(function))
            out_rows.append(out)
        columns = group_by + [c for c in aggregations if c not in group_by]
        return Frame(columns=columns, rows=out_rows)

    def _op_sort(self, operation, inputs, context) -> Frame:
        frame = inputs[0]
        by = [c for c in operation.config.get("by", []) if c in frame.columns]
        if not by:
            return frame
        rows = sorted(
            frame.rows, key=lambda r: tuple(_sort_token(normalize_value(r.get(c))) for c in by)
        )
        return frame.replace_rows(rows)

    # -- binary / n-ary --------------------------------------------------

    def _op_join(self, operation, inputs, context) -> Frame:
        left_index, right_index = self._orient(operation, inputs)
        left, right = inputs[left_index], inputs[right_index]
        pairs = _join_pairs(operation.config.get("on", []), left.columns, right.columns)
        if not pairs:
            return left
        return self._hash_join(left, right, pairs, how="inner")

    def _op_union(self, operation, inputs, context) -> Frame:
        columns: list[str] = []
        for frame in inputs:
            columns.extend(c for c in frame.columns if c not in columns)
        rows = [{c: r.get(c) for c in columns} for frame in inputs for r in frame.rows]
        return Frame(columns=columns, rows=rows)

    _op_merge = _op_union

    def _op_diff(self, operation, inputs, context) -> Frame:
        left = inputs[0]
        if len(inputs) < 2:
            return left
        right = inputs[1]
        shared = [c for c in left.columns if c in set(right.columns)]
        seen = {tuple(normalize_value(r.get(c)) for c in shared) for r in right.rows}
        rows = [
            r for r in left.rows
            if tuple(normalize_value(r.get(c)) for c in shared) not in seen
        ]
        return left.replace_rows(rows)

    def _hash_join(
        self, left: Frame, right: Frame, pairs: list[tuple[str, str]], how: str
    ) -> Frame:
        right_keys = [p[1] for p in pairs]
        renames = _collision_renames(left.columns, right.columns, set(right_keys))
        table: dict[tuple, list[dict]] = {}
        for row in right.rows:
            key = tuple(normalize_value(row.get(c)) for c in right_keys)
            table.setdefault(key, []).append(row)
        right_out = [renames.get(c, c) for c in right.columns if c not in set(right_keys)]
        columns = list(left.columns) + [c for c in right_out if c not in set(left.columns)]
        rows: list[dict] = []
        for row in left.rows:
            key = tuple(normalize_value(row.get(p[0])) for p in pairs)
            matches = table.get(key)
            if matches:
                for match in matches:
                    merged = dict(row)
                    for name, value in match.items():
                        if name in right_keys:
                            continue
                        merged[renames.get(name, name)] = value
                    rows.append(merged)
            elif how == "left":
                merged = dict(row)
                for name in right_out:
                    merged.setdefault(name, None)
                rows.append(merged)
        return Frame(columns=columns, rows=rows)

    # -- routing ---------------------------------------------------------

    def _op_split(self, operation, inputs, context) -> list[Frame]:
        frame = inputs[0]
        fanout = max(1, context.fanout(operation))
        buckets: list[list[dict]] = [[] for _ in range(fanout)]
        for index, row in enumerate(frame.rows):
            buckets[index % fanout].append(row)
        return [frame.replace_rows(bucket) for bucket in buckets]

    _op_router = _op_split

    def _op_partition(self, operation, inputs, context) -> list[Frame]:
        frame = inputs[0]
        fanout = max(1, context.fanout(operation))
        key = operation.config.get("key", "")
        buckets: list[list[dict]] = [[] for _ in range(fanout)]
        for row in frame.rows:
            buckets[_partition_index(row.get(key), fanout)].append(row)
        return [frame.replace_rows(bucket) for bucket in buckets]

    def _op_replicate(self, operation, inputs, context) -> list[Frame]:
        frame = inputs[0]
        fanout = max(1, context.fanout(operation))
        return [frame.copy() for _ in range(fanout)]

    # -- data quality ----------------------------------------------------

    def _op_deduplicate(self, operation, inputs, context) -> Frame:
        frame = inputs[0]
        keys = [c for c in operation.config.get("keys", []) if c in frame.columns]
        if not keys:
            keys = list(frame.columns)
        seen: set[tuple] = set()
        rows = []
        for row in frame.rows:
            key = tuple(normalize_value(row.get(c)) for c in keys)
            if key in seen:
                continue
            seen.add(key)
            rows.append(row)
        return frame.replace_rows(rows)

    def _op_filter_nulls(self, operation, inputs, context) -> Frame:
        frame = inputs[0]
        columns = frame.columns
        rows = [r for r in frame.rows if all(r.get(c) is not None for c in columns)]
        return frame.replace_rows(rows)

    def _op_crosscheck(self, operation, inputs, context) -> Frame:
        frame = inputs[0]
        columns = frame.columns
        rows = [
            r for r in frame.rows
            if not any(datagen.is_error_value(r.get(c)) for c in columns)
        ]
        return frame.replace_rows(rows)

    _op_validate = _op_crosscheck

    def _op_cleanse(self, operation, inputs, context) -> Frame:
        frame = inputs[0]
        rows = [
            {k: datagen.repair_error_value(v) for k, v in row.items()} for row in frame.rows
        ]
        return frame.replace_rows(rows)

    # -- loading / control ----------------------------------------------

    def _op_load_table(self, operation, inputs, context) -> Frame:
        frame = inputs[0]
        context.record_output(operation, self.to_columns(frame))
        return frame

    _op_load_file = _op_load_table

    def _op_checkpoint(self, operation, inputs, context) -> Frame:
        frame = inputs[0]
        context.record_savepoint(operation, self.to_columns(frame))
        return frame


def _make_caster(target: str) -> Callable[[Any], Any]:
    """A tolerant cast for ``CONVERT`` targets like ``"decimal(12,2)"``."""
    base, _, argument = target.lower().partition("(")
    base = base.strip()
    scale = None
    if argument:
        parts = argument.rstrip(")").split(",")
        if len(parts) == 2:
            try:
                scale = int(parts[1])
            except ValueError:
                scale = None

    def cast(value: Any) -> Any:
        if value is None:
            return None
        try:
            if base in ("decimal", "numeric", "float", "double", "real", "number"):
                result = float(value)
                return round(result, scale) if scale is not None else result
            if base in ("int", "integer", "bigint", "smallint"):
                return int(float(value))
            if base in ("string", "varchar", "char", "text"):
                return str(value)
        except (TypeError, ValueError):
            return value
        return value

    return cast


def _aggregate_bucket(bucket: list[dict], column: str, function: str) -> Any:
    values = [normalize_value(r.get(column)) for r in bucket]
    numeric = [v for v in values if isinstance(v, (int, float)) and not isinstance(v, bool)]
    function = function.lower()
    if function == "count":
        return len(bucket)
    if function == "sum":
        return sum(numeric) if numeric else None
    if function in ("avg", "mean"):
        return sum(numeric) / len(numeric) if numeric else None
    present = [v for v in values if v is not None]
    if function == "min":
        return min(present, key=_sort_token) if present else None
    if function == "max":
        return max(present, key=_sort_token) if present else None
    raise UnsupportedOperationError(f"unknown aggregation function {function!r}")


# ----------------------------------------------------------------------
# Optional native backends (import-gated)
# ----------------------------------------------------------------------


class PandasBackend(LocalBackend):
    """Execute flows over native :mod:`pandas` DataFrames.

    Structural operators (joins, group-bys, sorts, dedup, concat) run on
    pandas; row-level predicate and derivation text still goes through
    the shared interpreter for identical semantics.  Constructing the
    backend without pandas installed raises
    :class:`BackendUnavailableError`.
    """

    name = "pandas"

    def __init__(self) -> None:
        if not self.is_available():
            raise BackendUnavailableError(
                "the 'pandas' backend requires the pandas package "
                "(pip install poiesis-repro[pandas])"
            )
        import pandas  # noqa: PLC0415 - import-gated optional dependency

        self._pd = pandas
        super().__init__()

    @classmethod
    def is_available(cls) -> bool:
        return importlib.util.find_spec("pandas") is not None

    # -- frame boundary -------------------------------------------------

    def from_columns(self, columns: Mapping[str, list]):
        return self._pd.DataFrame({name: list(values) for name, values in columns.items()})

    def to_columns(self, frame) -> dict[str, list]:
        return {
            str(name): [normalize_value(v) for v in frame[name].tolist()]
            for name in frame.columns
        }

    def row_count(self, frame) -> int:
        return int(len(frame.index))

    def column_names(self, frame) -> list[str]:
        return [str(c) for c in frame.columns]

    # -- row-level handlers reuse the shared interpreter ----------------

    def _rows(self, frame) -> list[dict]:
        return [
            {k: normalize_value(v) for k, v in record.items()}
            for record in frame.to_dict("records")
        ]

    def _op_filter(self, operation, inputs, context):
        frame = inputs[0]
        text = operation.config.get("predicate", "")
        if not text or not len(frame.index):
            return frame
        predicate = CompiledPredicate.compile(text)
        params = context.params
        mask = [predicate(row, params) for row in self._rows(frame)]
        return frame[self._pd.Series(mask, index=frame.index)].reset_index(drop=True)

    def _op_project(self, operation, inputs, context):
        frame = inputs[0]
        keep = [c for c in operation.config.get("keep", []) if c in frame.columns]
        return frame[keep] if keep else frame

    def _op_derive(self, operation, inputs, context):
        frame = inputs[0]
        expressions = operation.config.get("expressions", {})
        if not expressions:
            return frame
        compiled = [(name, compile_expression(text)) for name, text in expressions.items()]
        params = context.params
        derived: dict[str, list] = {name: [] for name, _ in compiled}
        for row in self._rows(frame):
            env = dict(row)
            for name, node in compiled:
                env[name] = evaluate(node, env, params)
                derived[name].append(env[name])
        out = frame.copy()
        for name, values in derived.items():
            out[name] = values
        return out

    def _op_rename(self, operation, inputs, context):
        renames = operation.config.get("renames", {})
        return inputs[0].rename(columns=renames) if renames else inputs[0]

    def _op_convert(self, operation, inputs, context):
        frame = inputs[0]
        conversions = operation.config.get("conversions", {})
        out = frame.copy()
        for column, target in conversions.items():
            if column in out.columns:
                caster = _make_caster(str(target))
                out[column] = [caster(v) for v in (normalize_value(x) for x in out[column])]
        return out

    def _op_surrogate_key(self, operation, inputs, context):
        frame = inputs[0].copy()
        frame[operation.config.get("key_field", "surrogate_key")] = range(
            1, len(frame.index) + 1
        )
        return frame

    def _op_lookup(self, operation, inputs, context):
        if len(inputs) < 2:
            frame = inputs[0].copy()
            frame[f"{operation.config.get('reference', 'reference')}_matched"] = True
            return frame
        probe_index, reference_index = self._orient(operation, inputs)
        left, right = inputs[probe_index], inputs[reference_index]
        pairs = _lookup_pairs(
            operation.config.get("on", []),
            context.input_operation(operation, reference_index),
            self.column_names(right),
        )
        return self._merge(left, right, pairs, how="left")

    def _op_join(self, operation, inputs, context):
        left_index, right_index = self._orient(operation, inputs)
        left, right = inputs[left_index], inputs[right_index]
        pairs = _join_pairs(
            operation.config.get("on", []),
            self.column_names(left),
            self.column_names(right),
        )
        if not pairs:
            return left
        return self._merge(left, right, pairs, how="inner")

    def _merge(self, left, right, pairs: list[tuple[str, str]], how: str):
        right_keys = [p[1] for p in pairs]
        renames = _collision_renames(
            [str(c) for c in left.columns], [str(c) for c in right.columns], set(right_keys)
        )
        prepared = right.rename(columns=renames) if renames else right
        merged = left.merge(
            prepared,
            how=how,
            left_on=[p[0] for p in pairs],
            right_on=right_keys,
            suffixes=("", "__dup"),
        )
        drop = [k for k in right_keys if k not in {p[0] for p in pairs} and k in merged.columns]
        return merged.drop(columns=drop) if drop else merged

    def _op_aggregate(self, operation, inputs, context):
        frame = inputs[0]
        group_by = [c for c in operation.config.get("group_by", []) if c in frame.columns]
        aggregations = dict(operation.config.get("aggregations", {})) or {"row_count": "count"}
        spec = {}
        out = frame.copy()
        for column, function in aggregations.items():
            function = str(function).lower()
            if function in ("avg", "mean"):
                function = "mean"
            if column not in out.columns:
                out[column] = None
            spec[column] = "size" if function == "count" else function
        if not group_by:
            result = {c: [_aggregate_bucket(self._rows(out), c, f)] for c, f in aggregations.items()}
            return self._pd.DataFrame(result)
        grouped = out.groupby(group_by, sort=False, dropna=False).agg(spec).reset_index()
        return grouped

    def _op_sort(self, operation, inputs, context):
        frame = inputs[0]
        by = [c for c in operation.config.get("by", []) if c in frame.columns]
        if not by:
            return frame
        return frame.sort_values(by, kind="mergesort", na_position="first").reset_index(
            drop=True
        )

    def _op_union(self, operation, inputs, context):
        return self._pd.concat(list(inputs), ignore_index=True, sort=False)

    _op_merge_frames = _op_union
    _op_merge = _op_union

    def _op_diff(self, operation, inputs, context):
        left = inputs[0]
        if len(inputs) < 2:
            return left
        right = inputs[1]
        shared = [c for c in left.columns if c in set(right.columns)]
        seen = {
            tuple(normalize_value(v) for v in row)
            for row in right[shared].itertuples(index=False, name=None)
        }
        mask = [
            tuple(normalize_value(v) for v in row) not in seen
            for row in left[shared].itertuples(index=False, name=None)
        ]
        return left[self._pd.Series(mask, index=left.index)].reset_index(drop=True)

    def _op_deduplicate(self, operation, inputs, context):
        frame = inputs[0]
        keys = [c for c in operation.config.get("keys", []) if c in frame.columns]
        subset = keys or None
        return frame.drop_duplicates(subset=subset, keep="first").reset_index(drop=True)

    def _op_filter_nulls(self, operation, inputs, context):
        return inputs[0].dropna().reset_index(drop=True)

    def _op_crosscheck(self, operation, inputs, context):
        frame = inputs[0]
        mask = [
            not any(datagen.is_error_value(v) for v in row.values())
            for row in self._rows(frame)
        ]
        return frame[self._pd.Series(mask, index=frame.index)].reset_index(drop=True)

    _op_validate = _op_crosscheck

    def _op_cleanse(self, operation, inputs, context):
        frame = inputs[0]
        rows = [
            {k: datagen.repair_error_value(v) for k, v in row.items()}
            for row in self._rows(frame)
        ]
        return self._pd.DataFrame(rows, columns=list(frame.columns))

    def _op_slowly_changing_dim(self, operation, inputs, context):
        frame = inputs[0]
        if "scd_current" in frame.columns:
            return frame
        out = frame.copy()
        out["scd_current"] = True
        return out

    def _op_split(self, operation, inputs, context):
        frame = inputs[0]
        fanout = max(1, context.fanout(operation))
        return [frame.iloc[offset::fanout].reset_index(drop=True) for offset in range(fanout)]

    _op_router = _op_split

    def _op_partition(self, operation, inputs, context):
        frame = inputs[0]
        fanout = max(1, context.fanout(operation))
        key = operation.config.get("key", "")
        if key not in frame.columns:
            return [frame] + [frame.iloc[0:0] for _ in range(fanout - 1)]
        assignment = [
            _partition_index(v, fanout) for v in (normalize_value(x) for x in frame[key])
        ]
        series = self._pd.Series(assignment, index=frame.index)
        return [frame[series == g].reset_index(drop=True) for g in range(fanout)]

    def _op_replicate(self, operation, inputs, context):
        frame = inputs[0]
        return [frame.copy() for _ in range(max(1, context.fanout(operation)))]


class PolarsBackend(LocalBackend):
    """Execute flows over native :mod:`polars` DataFrames (import-gated)."""

    name = "polars"

    def __init__(self) -> None:
        if not self.is_available():
            raise BackendUnavailableError(
                "the 'polars' backend requires the polars package "
                "(pip install poiesis-repro[polars])"
            )
        import polars  # noqa: PLC0415 - import-gated optional dependency

        self._pl = polars
        super().__init__()

    @classmethod
    def is_available(cls) -> bool:
        return importlib.util.find_spec("polars") is not None

    # -- frame boundary -------------------------------------------------

    def from_columns(self, columns: Mapping[str, list]):
        return self._pl.DataFrame(
            {name: list(values) for name, values in columns.items()}, strict=False
        )

    def to_columns(self, frame) -> dict[str, list]:
        return {
            name: [normalize_value(v) for v in frame.get_column(name).to_list()]
            for name in frame.columns
        }

    def row_count(self, frame) -> int:
        return int(frame.height)

    def _rows(self, frame) -> list[dict]:
        return [
            {k: normalize_value(v) for k, v in record.items()} for record in frame.to_dicts()
        ]

    def _op_filter(self, operation, inputs, context):
        frame = inputs[0]
        text = operation.config.get("predicate", "")
        if not text or not frame.height:
            return frame
        predicate = CompiledPredicate.compile(text)
        params = context.params
        mask = self._pl.Series([predicate(row, params) for row in self._rows(frame)])
        return frame.filter(mask)

    def _op_project(self, operation, inputs, context):
        frame = inputs[0]
        keep = [c for c in operation.config.get("keep", []) if c in frame.columns]
        return frame.select(keep) if keep else frame

    def _op_derive(self, operation, inputs, context):
        frame = inputs[0]
        expressions = operation.config.get("expressions", {})
        if not expressions:
            return frame
        compiled = [(name, compile_expression(text)) for name, text in expressions.items()]
        params = context.params
        derived: dict[str, list] = {name: [] for name, _ in compiled}
        for row in self._rows(frame):
            env = dict(row)
            for name, node in compiled:
                env[name] = evaluate(node, env, params)
                derived[name].append(env[name])
        out = frame
        for name, values in derived.items():
            series = self._pl.Series(name, values, strict=False)
            out = out.with_columns(series)
        return out

    def _op_rename(self, operation, inputs, context):
        renames = {
            old: new
            for old, new in operation.config.get("renames", {}).items()
            if old in inputs[0].columns
        }
        return inputs[0].rename(renames) if renames else inputs[0]

    def _op_convert(self, operation, inputs, context):
        frame = inputs[0]
        for column, target in operation.config.get("conversions", {}).items():
            if column not in frame.columns:
                continue
            caster = _make_caster(str(target))
            values = [caster(normalize_value(v)) for v in frame.get_column(column).to_list()]
            frame = frame.with_columns(self._pl.Series(column, values, strict=False))
        return frame

    def _op_surrogate_key(self, operation, inputs, context):
        frame = inputs[0]
        key_field = operation.config.get("key_field", "surrogate_key")
        return frame.with_columns(
            self._pl.Series(key_field, list(range(1, frame.height + 1)))
        )

    def _op_lookup(self, operation, inputs, context):
        if len(inputs) < 2:
            frame = inputs[0]
            flag = f"{operation.config.get('reference', 'reference')}_matched"
            return frame.with_columns(self._pl.Series(flag, [True] * frame.height))
        probe_index, reference_index = self._orient(operation, inputs)
        left, right = inputs[probe_index], inputs[reference_index]
        pairs = _lookup_pairs(
            operation.config.get("on", []),
            context.input_operation(operation, reference_index),
            right.columns,
        )
        return self._join_frames(left, right, pairs, how="left")

    def _op_join(self, operation, inputs, context):
        left_index, right_index = self._orient(operation, inputs)
        left, right = inputs[left_index], inputs[right_index]
        pairs = _join_pairs(operation.config.get("on", []), left.columns, right.columns)
        if not pairs:
            return left
        return self._join_frames(left, right, pairs, how="inner")

    def _join_frames(self, left, right, pairs: list[tuple[str, str]], how: str):
        right_keys = [p[1] for p in pairs]
        renames = _collision_renames(left.columns, right.columns, set(right_keys))
        prepared = right.rename(renames) if renames else right
        joined = left.join(
            prepared,
            how=how,
            left_on=[p[0] for p in pairs],
            right_on=right_keys,
            coalesce=True,
        )
        return joined

    def _op_aggregate(self, operation, inputs, context):
        frame = inputs[0]
        group_by = [c for c in operation.config.get("group_by", []) if c in frame.columns]
        aggregations = dict(operation.config.get("aggregations", {})) or {"row_count": "count"}
        pl = self._pl
        expressions = []
        for column, function in aggregations.items():
            function = str(function).lower()
            source = pl.col(column) if column in frame.columns else pl.lit(None)
            if function == "count":
                expressions.append(pl.len().alias(column))
            elif function == "sum":
                expressions.append(source.sum().alias(column))
            elif function in ("avg", "mean"):
                expressions.append(source.mean().alias(column))
            elif function == "min":
                expressions.append(source.min().alias(column))
            elif function == "max":
                expressions.append(source.max().alias(column))
            else:
                raise UnsupportedOperationError(f"unknown aggregation function {function!r}")
        if not group_by:
            return frame.select(expressions)
        return frame.group_by(group_by, maintain_order=True).agg(expressions)

    def _op_sort(self, operation, inputs, context):
        frame = inputs[0]
        by = [c for c in operation.config.get("by", []) if c in frame.columns]
        return frame.sort(by, nulls_last=False) if by else frame

    def _op_union(self, operation, inputs, context):
        return self._pl.concat(list(inputs), how="diagonal")

    _op_merge = _op_union

    def _op_diff(self, operation, inputs, context):
        left = inputs[0]
        if len(inputs) < 2:
            return left
        right = inputs[1]
        shared = [c for c in left.columns if c in set(right.columns)]
        seen = {
            tuple(normalize_value(row.get(c)) for c in shared) for row in right.to_dicts()
        }
        mask = self._pl.Series(
            [
                tuple(normalize_value(row.get(c)) for c in shared) not in seen
                for row in left.to_dicts()
            ]
        )
        return left.filter(mask)

    def _op_deduplicate(self, operation, inputs, context):
        frame = inputs[0]
        keys = [c for c in operation.config.get("keys", []) if c in frame.columns]
        return frame.unique(subset=keys or None, keep="first", maintain_order=True)

    def _op_filter_nulls(self, operation, inputs, context):
        return inputs[0].drop_nulls()

    def _op_crosscheck(self, operation, inputs, context):
        frame = inputs[0]
        mask = self._pl.Series(
            [
                not any(datagen.is_error_value(v) for v in row.values())
                for row in self._rows(frame)
            ]
        )
        return frame.filter(mask)

    _op_validate = _op_crosscheck

    def _op_cleanse(self, operation, inputs, context):
        frame = inputs[0]
        rows = [
            {k: datagen.repair_error_value(v) for k, v in row.items()}
            for row in self._rows(frame)
        ]
        return self._pl.DataFrame(rows, schema=frame.columns, strict=False)

    def _op_slowly_changing_dim(self, operation, inputs, context):
        frame = inputs[0]
        if "scd_current" in frame.columns:
            return frame
        return frame.with_columns(self._pl.Series("scd_current", [True] * frame.height))

    def _op_split(self, operation, inputs, context):
        frame = inputs[0]
        fanout = max(1, context.fanout(operation))
        masks = [
            self._pl.Series([i % fanout == offset for i in range(frame.height)])
            for offset in range(fanout)
        ]
        return [frame.filter(mask) for mask in masks]

    _op_router = _op_split

    def _op_partition(self, operation, inputs, context):
        frame = inputs[0]
        fanout = max(1, context.fanout(operation))
        key = operation.config.get("key", "")
        if key not in frame.columns:
            return [frame] + [frame.head(0) for _ in range(fanout - 1)]
        assignment = [
            _partition_index(normalize_value(v), fanout)
            for v in frame.get_column(key).to_list()
        ]
        return [
            frame.filter(self._pl.Series([a == g for a in assignment]))
            for g in range(fanout)
        ]

    def _op_replicate(self, operation, inputs, context):
        frame = inputs[0]
        return [frame.clone() for _ in range(max(1, context.fanout(operation)))]


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_BACKEND_TYPES: dict[str, type[ETLBackend]] = {
    "local": LocalBackend,
    "pandas": PandasBackend,
    "polars": PolarsBackend,
}


def available_backends() -> dict[str, bool]:
    """Backend name -> whether it can be constructed in this environment."""
    return {name: cls.is_available() for name, cls in _BACKEND_TYPES.items()}


def create_backend(name: str) -> ETLBackend:
    """Instantiate a backend by its ``executor_backend`` name.

    Raises :class:`ValueError` for unknown names and
    :class:`BackendUnavailableError` when the backing library is not
    installed (optional backends are never silently substituted).
    """
    try:
        backend_type = _BACKEND_TYPES[name]
    except KeyError:
        raise ValueError(
            f"unknown executor backend: {name!r} (use one of {EXECUTOR_BACKENDS})"
        ) from None
    return backend_type()
