"""A small expression interpreter for predicate and derivation text.

The flow model carries its row-level logic as SQL-ish text: filter
predicates like ``"c_acctbal >= 0"`` or
``"item_record_end_date = null AND purchase_line_item_id = item_id"``,
and derive expressions like ``"l_extendedprice * (1 - l_discount)"``.
Every backend executes that text with *this* interpreter -- sharing one
set of semantics is what makes the differential conformance suite a test
of the backends' structural operators (joins, group-bys, sorts) rather
than of three independent expression dialects.

Semantics, chosen to keep builder-produced flows executable end to end:

* ``x = null`` / ``x != null`` are null tests; any other comparison
  against ``None`` is false (SQL-style).
* Arithmetic over ``None`` yields ``None``.
* ``:parameter`` placeholders without a binding make the *enclosing
  comparison* true -- an unbound refresh-window predicate passes rows
  through instead of silently emptying the flow.
* Unknown functions (``discount(item_id)`` and friends in the paper's
  flows) evaluate to a deterministic pseudo-random value derived from
  the function name and its arguments, so flows referencing business
  functions the reproduction does not have still execute reproducibly.
"""

from __future__ import annotations

import re
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Mapping

__all__ = ["ExpressionError", "compile_expression", "evaluate", "truthy"]


class ExpressionError(ValueError):
    """Raised for unparseable predicate / derivation text."""


_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<number>\d+\.\d*|\.\d+|\d+)"
    r"|(?P<string>'[^']*')"
    r"|(?P<param>:[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"|(?P<op><=|>=|==|!=|<>|[-+*/()<>=,])"
    r")"
)

_KEYWORDS = {"and", "or", "not", "null", "true", "false"}


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ExpressionError(
                f"cannot tokenize expression at {remainder[:20]!r} (in {text!r})"
            )
        pos = match.end()
        kind = match.lastgroup
        value = match.group(kind)
        if kind == "name" and value.lower() in _KEYWORDS:
            tokens.append((value.lower(), value.lower()))
        else:
            tokens.append((kind, value))
    tokens.append(("end", ""))
    return tokens


# -- AST nodes (plain tuples: (tag, *payload)) ---------------------------


class _Parser:
    """Recursive-descent parser producing a tuple-shaped AST."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    def peek(self) -> tuple[str, str]:
        return self.tokens[self.index]

    def advance(self) -> tuple[str, str]:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str, value: str | None = None) -> tuple[str, str]:
        token = self.advance()
        if token[0] != kind or (value is not None and token[1] != value):
            raise ExpressionError(
                f"expected {value or kind!r}, found {token[1]!r} (in {self.text!r})"
            )
        return token

    def parse(self) -> tuple:
        node = self.parse_or()
        if self.peek()[0] != "end":
            raise ExpressionError(
                f"trailing input {self.peek()[1]!r} in expression {self.text!r}"
            )
        return node

    def parse_or(self) -> tuple:
        node = self.parse_and()
        while self.peek() == ("or", "or"):
            self.advance()
            node = ("or", node, self.parse_and())
        return node

    def parse_and(self) -> tuple:
        node = self.parse_not()
        while self.peek() == ("and", "and"):
            self.advance()
            node = ("and", node, self.parse_not())
        return node

    def parse_not(self) -> tuple:
        if self.peek() == ("not", "not"):
            self.advance()
            return ("not", self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> tuple:
        node = self.parse_additive()
        kind, value = self.peek()
        if kind == "op" and value in ("=", "==", "!=", "<>", "<", "<=", ">", ">="):
            self.advance()
            right = self.parse_additive()
            return ("cmp", value, node, right)
        return node

    def parse_additive(self) -> tuple:
        node = self.parse_multiplicative()
        while self.peek()[0] == "op" and self.peek()[1] in ("+", "-"):
            op = self.advance()[1]
            node = ("arith", op, node, self.parse_multiplicative())
        return node

    def parse_multiplicative(self) -> tuple:
        node = self.parse_unary()
        while self.peek()[0] == "op" and self.peek()[1] in ("*", "/"):
            op = self.advance()[1]
            node = ("arith", op, node, self.parse_unary())
        return node

    def parse_unary(self) -> tuple:
        if self.peek() == ("op", "-"):
            self.advance()
            return ("neg", self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> tuple:
        kind, value = self.advance()
        if kind == "number":
            return ("const", float(value) if "." in value else int(value))
        if kind == "string":
            return ("const", value[1:-1])
        if kind == "null":
            return ("const", None)
        if kind == "true":
            return ("const", True)
        if kind == "false":
            return ("const", False)
        if kind == "param":
            return ("param", value[1:])
        if kind == "name":
            if self.peek() == ("op", "("):
                self.advance()
                args = []
                if self.peek() != ("op", ")"):
                    args.append(self.parse_or())
                    while self.peek() == ("op", ","):
                        self.advance()
                        args.append(self.parse_or())
                self.expect("op", ")")
                return ("call", value, tuple(args))
            return ("ident", value)
        if kind == "op" and value == "(":
            node = self.parse_or()
            self.expect("op", ")")
            return node
        raise ExpressionError(f"unexpected token {value!r} in expression {self.text!r}")


_PARSE_MEMO: dict[str, tuple] = {}


def compile_expression(text: str) -> tuple:
    """Parse expression text into an AST (memoized; raises ExpressionError)."""
    node = _PARSE_MEMO.get(text)
    if node is None:
        node = _Parser(text).parse()
        if len(_PARSE_MEMO) > 4096:  # trivially recomputable; bound the memo
            _PARSE_MEMO.clear()
        _PARSE_MEMO[text] = node
    return node


# -- evaluation ----------------------------------------------------------


class _Unbound:
    """Sentinel for a ``:parameter`` without a binding."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unbound parameter>"


UNBOUND = _Unbound()


def _pseudo(name: str, args: tuple) -> float:
    """Deterministic stand-in value for an unknown business function."""
    digest = zlib.crc32(repr((name, args)).encode("utf-8"))
    return (digest % 100_000) / 100_000.0


def _builtin_functions() -> dict[str, Callable[..., Any]]:
    return {
        "abs": lambda x: None if x is None else abs(x),
        "round": lambda x, n=0: None if x is None else round(x, int(n)),
        "min": lambda *xs: min((x for x in xs if x is not None), default=None),
        "max": lambda *xs: max((x for x in xs if x is not None), default=None),
        "coalesce": lambda *xs: next((x for x in xs if x is not None), None),
        # Business functions referenced by the paper's flows: deterministic
        # models rather than real reference data.
        "discount": lambda x: 0.3 * _pseudo("discount", (x,)),
        "cost": lambda x: 1.0 + 49.0 * _pseudo("cost", (x,)),
    }


_FUNCTIONS = _builtin_functions()


def _compare(op: str, left: Any, right: Any) -> bool:
    if left is UNBOUND or right is UNBOUND:
        return True  # unbound parameter: the predicate is advisory
    if op in ("=", "=="):
        return left == right
    if op in ("!=", "<>"):
        return left != right
    if left is None or right is None:
        return False
    if isinstance(left, bool) or isinstance(right, bool):
        left, right = bool(left), bool(right)
    elif isinstance(left, (int, float)) != isinstance(right, (int, float)):
        left, right = str(left), str(right)  # total order for mixed types
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def evaluate(
    node: tuple,
    env: Mapping[str, Any],
    params: Mapping[str, Any] | None = None,
) -> Any:
    """Evaluate a compiled expression against one row environment."""
    tag = node[0]
    if tag == "const":
        return node[1]
    if tag == "ident":
        return env.get(node[1])
    if tag == "param":
        if params and node[1] in params:
            return params[node[1]]
        return UNBOUND
    if tag == "cmp":
        _, op, left, right = node
        return _compare(op, evaluate(left, env, params), evaluate(right, env, params))
    if tag == "and":
        return truthy(evaluate(node[1], env, params)) and truthy(
            evaluate(node[2], env, params)
        )
    if tag == "or":
        return truthy(evaluate(node[1], env, params)) or truthy(
            evaluate(node[2], env, params)
        )
    if tag == "not":
        return not truthy(evaluate(node[1], env, params))
    if tag == "neg":
        value = evaluate(node[1], env, params)
        return None if value is None or value is UNBOUND else -value
    if tag == "arith":
        _, op, left, right = node
        lval = evaluate(left, env, params)
        rval = evaluate(right, env, params)
        if lval is None or rval is None or lval is UNBOUND or rval is UNBOUND:
            return None
        if isinstance(lval, str) or isinstance(rval, str):
            if op == "+":
                return str(lval) + str(rval)
            return None  # no -, *, / over strings
        if op == "+":
            return lval + rval
        if op == "-":
            return lval - rval
        if op == "*":
            return lval * rval
        return None if rval == 0 else lval / rval
    if tag == "call":
        _, name, arg_nodes = node
        args = tuple(evaluate(arg, env, params) for arg in arg_nodes)
        function = _FUNCTIONS.get(name.lower())
        if function is None:
            return _pseudo(name.lower(), args)
        return function(*args)
    raise ExpressionError(f"unknown AST node {tag!r}")  # pragma: no cover


def truthy(value: Any) -> bool:
    """Predicate truth of an evaluated value (None and UNBOUND are false)."""
    if value is None:
        return False
    if value is UNBOUND:
        return True  # a bare unbound parameter keeps the row
    return bool(value)


@dataclass(frozen=True)
class CompiledPredicate:
    """A predicate compiled once and applied per row."""

    text: str
    node: tuple

    @classmethod
    def compile(cls, text: str) -> "CompiledPredicate":
        return cls(text=text, node=compile_expression(text))

    def __call__(self, row: Mapping[str, Any], params: Mapping[str, Any] | None = None) -> bool:
        return truthy(evaluate(self.node, row, params))
