"""Materialize sampled source data for executable flows.

The simulator only propagates *statistics* (row counts, defect counts)
through a flow; execution needs actual rows.  This module turns an
extraction operation into concrete columns: volumes and defect counts are
sampled through :class:`repro.simulator.datagen.SyntheticDataGenerator`
(the same source model the simulator uses, so measured runs see the data
the estimates were made about), and cell values are drawn from a seeded
numpy generator keyed on the operation identifier -- every alternative
flow grafted from the same base extracts *identical* data, which is what
makes measured wall-time differences attributable to the redesign rather
than to the inputs.

Defects are physical, not just counted: nulls blank a nullable field,
duplicates repeat an earlier row (keys included, so deduplication has
real work to do), and error rows carry recognizably broken values (the
``ERR!`` marker / far-out-of-range numbers) that the crosscheck, validate
and cleanse operators act on.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.etl.operations import Operation
from repro.etl.schema import DataType, Schema
from repro.simulator.datagen import SourceProfile, SyntheticDataGenerator

#: Error rows carry this prefix on one string field (or a far-out-of-range
#: numeric); the data-quality operators recognise it.
ERROR_MARKER = "ERR!"

#: Numeric error sentinel offset: far outside any generated value range.
ERROR_NUMERIC = -1_000_000.0


def stable_seed(*parts: object) -> int:
    """A deterministic 32-bit seed from arbitrary hashable parts."""
    digest = hashlib.sha256(repr(parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


def is_error_value(value: object) -> bool:
    """Whether a cell carries the generator's injected-error marker."""
    if isinstance(value, str):
        return value.startswith(ERROR_MARKER)
    if isinstance(value, bool):
        return False
    if isinstance(value, (int, float)):
        return value <= ERROR_NUMERIC
    return False


def repair_error_value(value: object) -> object:
    """The cleansed form of an injected-error cell (identity otherwise)."""
    if isinstance(value, str) and value.startswith(ERROR_MARKER):
        return value[len(ERROR_MARKER):]
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)) and value <= ERROR_NUMERIC:
        repaired = value - ERROR_NUMERIC  # the original value, shifted back
        return type(value)(repaired)
    return value


def _column_values(
    field_name: str, dtype: DataType, key: bool, rows: int, rng: np.random.Generator
) -> list:
    """Generate one column of plain Python scalars."""
    if rows == 0:
        return []
    if key and dtype is DataType.INTEGER:
        # Key columns count up from 0 so that branches extracted from
        # related tables (orders/lineitem, nation lookups) overlap on
        # their join keys instead of missing each other entirely.
        return [int(i) for i in range(rows)]
    if dtype is DataType.INTEGER:
        # Small domain: lookup/join keys drawn here must frequently hit
        # the 0..rows-1 key range of the reference branch.
        high = max(25, rows // 2)
        return [int(v) for v in rng.integers(0, high, size=rows)]
    if dtype is DataType.DECIMAL:
        return [round(float(v), 2) for v in rng.uniform(1.0, 1000.0, size=rows)]
    if dtype is DataType.DATE:
        days = rng.integers(0, 364, size=rows)
        return [f"2024-{1 + int(d) // 31:02d}-{1 + int(d) % 28:02d}" for d in days]
    if dtype is DataType.TIMESTAMP:
        seconds = rng.integers(0, 86_400, size=rows)
        return [
            f"2024-06-01T{int(s) // 3600:02d}:{int(s) % 3600 // 60:02d}:{int(s) % 60:02d}"
            for s in seconds
        ]
    if dtype is DataType.BOOLEAN:
        return [bool(v) for v in rng.integers(0, 2, size=rows)]
    if dtype is DataType.BINARY:
        return [f"{int(v):08x}" for v in rng.integers(0, 2**31, size=rows)]
    # STRING (and anything unmodelled): a small label domain.
    labels = rng.integers(0, 97, size=rows)
    return [f"{field_name}_{int(v)}" for v in labels]


def generate_source_columns(operation: Operation, seed: int = 7) -> dict[str, list]:
    """Concrete columns for one extraction operation.

    Deterministic in ``(seed, operation.op_id)``: the flow an operation
    is part of does not matter, so the same extract grafted into many
    alternatives produces byte-identical data.
    """
    schema: Schema = operation.output_schema
    profile = SourceProfile.from_operation(operation)
    sampler = SyntheticDataGenerator(seed=stable_seed(seed, operation.op_id, "volume"))
    sample = sampler.sample(profile)
    rows = int(sample["rows"])
    rng = np.random.default_rng(stable_seed(seed, operation.op_id, "values"))

    columns: dict[str, list] = {
        f.name: _column_values(f.name, f.dtype, f.key, rows, rng) for f in schema
    }
    if not columns:
        columns = {"value": [int(v) for v in rng.integers(0, 100, size=rows)]}
    if rows == 0:
        return columns

    names = list(columns)
    # Duplicates first: trailing rows become copies of earlier rows, keys
    # included, so key-based deduplication genuinely removes them.
    duplicate_rows = min(int(sample["duplicate_rows"]), rows - 1)
    if duplicate_rows > 0:
        originals = rng.integers(0, rows - duplicate_rows, size=duplicate_rows)
        for offset, original in enumerate(originals):
            target = rows - duplicate_rows + offset
            for name in names:
                columns[name][target] = columns[name][int(original)]

    # Nulls: blank one nullable field per affected row.
    nullable = [f.name for f in schema if f.nullable]
    null_rows = min(int(sample["null_rows"]), rows)
    if nullable and null_rows > 0:
        affected = rng.choice(rows, size=null_rows, replace=False)
        for index, row in enumerate(affected):
            field_name = nullable[index % len(nullable)]
            columns[field_name][int(row)] = None

    # Errors: one recognizably broken value per affected row.
    breakable = [
        f for f in schema if f.dtype is DataType.STRING or (f.dtype.is_numeric and not f.key)
    ]
    error_rows = min(int(sample["error_rows"]), rows)
    if breakable and error_rows > 0:
        affected = rng.choice(rows, size=error_rows, replace=False)
        for index, row in enumerate(affected):
            target = breakable[index % len(breakable)]
            value = columns[target.name][int(row)]
            if value is None:
                continue
            if target.dtype is DataType.STRING:
                columns[target.name][int(row)] = ERROR_MARKER + str(value)
            else:
                columns[target.name][int(row)] = ERROR_NUMERIC + float(value)
    return columns
