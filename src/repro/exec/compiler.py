"""Compile an :class:`~repro.etl.graph.ETLGraph` into an executable DAG.

The flow model is declarative -- operations plus data edges.  Execution
needs three things the model does not spell out: a topological node
order, for each node the *slot* of each input (a router's successors
each consume a different one of its outputs, matched by edge insertion
order), and the recovery structure (which savepoint, if any, covers a
node -- the nearest ``CHECKPOINT`` on a path upstream).  Compilation
resolves all three once, and validates up front that every operation
kind is supported by the chosen backend, so execution never discovers an
unimplementable node halfway through a run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.etl.graph import ETLGraph
from repro.etl.operations import Operation, OperationKind
from repro.exec.backends import ETLBackend, LocalBackend

__all__ = ["CompileError", "CompiledNode", "ExecutablePlan", "compile_flow"]

#: Kinds whose handler returns one output frame *per outgoing edge*.
ROUTER_KINDS: frozenset[OperationKind] = frozenset(
    {
        OperationKind.SPLIT,
        OperationKind.ROUTER,
        OperationKind.PARTITION,
        OperationKind.REPLICATE,
    }
)


class CompileError(ValueError):
    """Raised when a flow cannot be compiled for a backend."""


@dataclass
class CompiledNode:
    """One executable node: its operation plus resolved input wiring.

    ``inputs`` lists ``(predecessor op_id, output slot)`` pairs in edge
    insertion order -- the order handlers receive their frames in.  For a
    non-router predecessor the slot is always 0; for a router it is the
    position of this node among the router's successors.  ``fanout`` is
    the number of output frames the node must produce (1 for ordinary
    operations, one per outgoing edge for routers).
    """

    operation: Operation
    inputs: list[tuple[str, int]] = field(default_factory=list)
    fanout: int = 1

    @property
    def op_id(self) -> str:
        return self.operation.op_id


@dataclass
class ExecutablePlan:
    """A compiled flow, ready for a backend to execute.

    Attributes
    ----------
    flow:
        The source graph (not copied; the executor never mutates it).
    order:
        Topological execution order of operation identifiers.
    nodes:
        Compiled node per operation identifier.
    savepoint_cover:
        For each node, the ``op_id`` of the nearest upstream
        ``CHECKPOINT`` operation on some path into it (or ``None``).
        The executor's retry recovery is gated on this: the paper's
        recovery-point pattern only makes a node retryable once a
        persisted savepoint exists upstream.
    """

    flow: ETLGraph
    order: list[str]
    nodes: dict[str, CompiledNode]
    savepoint_cover: dict[str, str | None]

    @property
    def sink_ids(self) -> list[str]:
        """Identifiers of the terminal (load) operations, in order."""
        return [op_id for op_id in self.order if self.flow.out_degree(op_id) == 0]

    def node(self, op_id: str) -> CompiledNode:
        return self.nodes[op_id]


def compile_flow(flow: ETLGraph, backend: ETLBackend | None = None) -> ExecutablePlan:
    """Compile a flow for a backend (default: the local reference backend).

    Raises :class:`CompileError` -- listing *all* offending operations,
    not just the first -- when the flow is empty or contains operation
    kinds the backend has no handler for (``PIVOT`` is the deliberate
    example: no backend implements it).
    """
    if len(flow) == 0:
        raise CompileError(f"flow {flow.name!r} has no operations to compile")
    backend = backend or LocalBackend()

    unsupported = sorted(
        f"{op.op_id} ({op.kind.value})"
        for op in flow.operations()
        if not backend.supports(op.kind)
    )
    if unsupported:
        raise CompileError(
            f"backend {backend.name!r} cannot execute flow {flow.name!r}: "
            f"unsupported operations: {', '.join(unsupported)}"
        )

    order = [op.op_id for op in flow.topological_order()]

    nodes: dict[str, CompiledNode] = {}
    for op_id in order:
        operation = flow.operation(op_id)
        inputs: list[tuple[str, int]] = []
        for predecessor in flow.predecessors(op_id):
            if predecessor.kind in ROUTER_KINDS:
                siblings = [s.op_id for s in flow.successors(predecessor.op_id)]
                slot = siblings.index(op_id)
            else:
                slot = 0
            inputs.append((predecessor.op_id, slot))
        fanout = (
            max(1, flow.out_degree(op_id)) if operation.kind in ROUTER_KINDS else 1
        )
        nodes[op_id] = CompiledNode(operation=operation, inputs=inputs, fanout=fanout)

    # Nearest upstream checkpoint, propagated in topological order: a
    # checkpoint covers itself and everything downstream until another
    # checkpoint takes over.
    savepoint_cover: dict[str, str | None] = {}
    for op_id in order:
        operation = nodes[op_id].operation
        if operation.kind is OperationKind.CHECKPOINT:
            savepoint_cover[op_id] = op_id
            continue
        cover = None
        for predecessor_id, _ in nodes[op_id].inputs:
            cover = savepoint_cover.get(predecessor_id)
            if cover is not None:
                break
        savepoint_cover[op_id] = cover

    return ExecutablePlan(flow=flow, order=order, nodes=nodes, savepoint_cover=savepoint_cover)
