"""Executable flows: compile :class:`~repro.etl.graph.ETLGraph` and run it.

The planner's output is a *plan*; this package makes it runnable.  A
flow compiles (:func:`compile_flow`) into an executable DAG, any of the
interchangeable dataframe backends (:func:`create_backend`) runs it
under a :class:`FlowExecutor` with error-routed recovery, and
:func:`execute_top_k` closes the simulated-vs-measured loop by executing
the planner's best alternatives on sampled data and scoring the
simulator's ranking with Spearman correlation.

See ``docs/execution.md`` for the backend protocol and the calibration
workflow.
"""

from repro.exec.backends import (
    EXECUTOR_BACKENDS,
    BackendUnavailableError,
    ETLBackend,
    LocalBackend,
    PandasBackend,
    PolarsBackend,
    UnsupportedOperationError,
    available_backends,
    create_backend,
)
from repro.exec.compiler import CompileError, CompiledNode, ExecutablePlan, compile_flow
from repro.exec.executor import (
    EXHAUSTION_ROUTES,
    ExecutionError,
    ExecutionReport,
    FaultInjected,
    FlowExecutor,
    NodeRun,
    RecoveryPolicy,
)
from repro.exec.frame import Frame, canonical_rows, frame_bytes, rows_approximately_equal
from repro.exec.measured import (
    CalibrationReport,
    MeasuredRun,
    execute_top_k,
    spearman_correlation,
)

__all__ = [
    "EXECUTOR_BACKENDS",
    "BackendUnavailableError",
    "ETLBackend",
    "LocalBackend",
    "PandasBackend",
    "PolarsBackend",
    "UnsupportedOperationError",
    "available_backends",
    "create_backend",
    "CompileError",
    "CompiledNode",
    "ExecutablePlan",
    "compile_flow",
    "EXHAUSTION_ROUTES",
    "ExecutionError",
    "ExecutionReport",
    "FaultInjected",
    "FlowExecutor",
    "NodeRun",
    "RecoveryPolicy",
    "Frame",
    "canonical_rows",
    "frame_bytes",
    "rows_approximately_equal",
    "CalibrationReport",
    "MeasuredRun",
    "execute_top_k",
    "spearman_correlation",
]
