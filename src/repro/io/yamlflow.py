"""A small YAML DSL for authoring ETL flows by hand.

The JSON interchange format (:mod:`repro.io.jsonflow`) is a faithful but
verbose serialisation of :meth:`~repro.etl.graph.ETLGraph.to_dict`; it is
what the tool persists, not what a person wants to write.  This module
adds the authoring-oriented counterpart: a compact YAML document that the
examples ship as ``examples/flow.yaml`` and that
:mod:`tools/run_flow.py <tools.run_flow>` accepts directly.

The document is one top-level ``flow`` mapping::

    flow:
      name: orders_refresh
      nodes:
        extract_orders:
          kind: extract_table
          schema: [o_orderkey:integer!, o_custkey:integer, o_total:decimal]
          config: {rows: 500}
        drop_nulls: {kind: filter_nulls}
        load_orders: {kind: load_table}
      edges:
        - extract_orders >> drop_nulls >> load_orders

* ``nodes`` maps each ``op_id`` to a mapping with a required ``kind``
  (any :class:`~repro.etl.operations.OperationKind` value) and optional
  ``name`` (defaults to the op id), ``schema``, ``config`` and
  ``properties`` (partial :class:`~repro.etl.properties.OperationProperties`
  overrides).
* Schema fields are either compact strings -- ``NAME:DTYPE`` with a
  trailing ``!`` marking a key field and ``?`` an explicitly nullable one
  (dtype names go through :meth:`~repro.etl.schema.DataType.parse`, so
  ``int``/``varchar``/``double`` aliases work) -- or explicit mappings
  ``{name, dtype, nullable, key}``.
* ``edges`` entries are either chain strings ``a >> b >> c`` (each
  ``>>`` hop becomes one edge carrying the source's output schema) or
  mappings ``{source, target, label, schema}`` for labelled router
  branches and explicit transition schemas.

Malformed documents fail with a :exc:`ValueError` naming the offending
construct (unknown operation kinds list the valid ones; edges that
reference undeclared nodes and cyclic specs are rejected) -- never with
a raw traceback from the graph internals.

:func:`flow_to_yaml` is the inverse: it emits the same dialect, omitting
everything that equals its default, so ``load -> dump -> load`` is a
fixpoint (the second dump is byte-identical to the first).  Pattern
lineage and annotations survive the round-trip; they are emitted only
when present.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping

import yaml

from repro.etl.graph import ETLGraph
from repro.etl.operations import Operation, OperationKind
from repro.etl.properties import OperationProperties
from repro.etl.schema import DataType, Field, Schema

__all__ = [
    "flow_from_yaml",
    "flow_to_yaml",
    "load_flow_yaml",
    "save_flow_yaml",
]

_VALID_KINDS = tuple(kind.value for kind in OperationKind)
_NODE_KEYS = frozenset({"kind", "name", "schema", "config", "properties"})
_EDGE_KEYS = frozenset({"source", "target", "label", "schema"})
_DEFAULT_PROPERTIES = OperationProperties().to_dict()


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------


def _parse_field(entry: Any, op_id: str) -> Field:
    """One schema field from its compact-string or mapping spelling."""
    if isinstance(entry, str):
        text = entry.strip()
        key = text.endswith("!")
        nullable = not key
        if text.endswith(("!", "?")):
            text = text[:-1]
        name, sep, dtype_text = text.partition(":")
        if not sep or not name.strip() or not dtype_text.strip():
            raise ValueError(
                f"node {op_id!r} has a malformed schema field {entry!r} "
                "(expected 'NAME:DTYPE', with optional trailing '!' for a "
                "key field or '?' for a nullable one)"
            )
        try:
            dtype = DataType.parse(dtype_text)
        except ValueError as exc:
            raise ValueError(f"node {op_id!r}: {exc}") from None
        return Field(name=name.strip(), dtype=dtype, nullable=nullable, key=key)
    if isinstance(entry, Mapping):
        unknown = set(entry) - {"name", "dtype", "type", "nullable", "key"}
        if unknown or "name" not in entry:
            raise ValueError(
                f"node {op_id!r} has a malformed schema field {dict(entry)!r} "
                "(mappings take name, dtype, nullable, key)"
            )
        dtype_text = str(entry.get("dtype", entry.get("type", "string")))
        try:
            dtype = DataType.parse(dtype_text)
        except ValueError as exc:
            raise ValueError(f"node {op_id!r}: {exc}") from None
        return Field(
            name=str(entry["name"]),
            dtype=dtype,
            nullable=bool(entry.get("nullable", True)),
            key=bool(entry.get("key", False)),
        )
    raise ValueError(
        f"node {op_id!r} has a schema field of type {type(entry).__name__}; "
        "use a 'NAME:DTYPE' string or a mapping"
    )


def _parse_schema(spec: Any, op_id: str) -> Schema:
    if spec is None:
        return Schema()
    if not isinstance(spec, (list, tuple)):
        raise ValueError(f"node {op_id!r}: schema must be a list of fields")
    return Schema([_parse_field(entry, op_id) for entry in spec])


def _parse_node(op_id: str, spec: Any) -> Operation:
    if not isinstance(spec, Mapping):
        raise ValueError(
            f"node {op_id!r} must be a mapping with at least a 'kind' entry"
        )
    unknown = set(spec) - _NODE_KEYS
    if unknown:
        raise ValueError(
            f"node {op_id!r} has unknown entries {sorted(unknown)} "
            f"(valid entries: {sorted(_NODE_KEYS)})"
        )
    if "kind" not in spec:
        raise ValueError(f"node {op_id!r} is missing the required 'kind' entry")
    kind_text = str(spec["kind"]).strip().lower()
    try:
        kind = OperationKind(kind_text)
    except ValueError:
        raise ValueError(
            f"node {op_id!r} has unknown operation kind {spec['kind']!r}; "
            f"valid kinds: {', '.join(_VALID_KINDS)}"
        ) from None
    config = spec.get("config") or {}
    if not isinstance(config, Mapping):
        raise ValueError(f"node {op_id!r}: config must be a mapping")
    properties_spec = spec.get("properties") or {}
    if not isinstance(properties_spec, Mapping):
        raise ValueError(f"node {op_id!r}: properties must be a mapping")
    unknown = set(properties_spec) - set(_DEFAULT_PROPERTIES)
    if unknown:
        raise ValueError(
            f"node {op_id!r} has unknown properties {sorted(unknown)} "
            f"(valid properties: {sorted(_DEFAULT_PROPERTIES)})"
        )
    return Operation(
        kind=kind,
        name=str(spec.get("name", op_id)),
        op_id=op_id,
        output_schema=_parse_schema(spec.get("schema"), op_id),
        config=dict(config),
        properties=OperationProperties.from_dict(properties_spec),
    )


def _edge_hops(entry: Any) -> list[dict[str, Any]]:
    """Normalise one ``edges`` entry into explicit source/target hops."""
    if isinstance(entry, str):
        stops = [stop.strip() for stop in entry.split(">>")]
        if len(stops) < 2 or any(not stop for stop in stops):
            raise ValueError(
                f"malformed edge {entry!r} (expected 'a >> b' or a chain "
                "'a >> b >> c')"
            )
        return [
            {"source": source, "target": target}
            for source, target in zip(stops, stops[1:])
        ]
    if isinstance(entry, Mapping):
        unknown = set(entry) - _EDGE_KEYS
        if unknown or "source" not in entry or "target" not in entry:
            raise ValueError(
                f"malformed edge {dict(entry)!r} (mappings take source, "
                "target, label, schema)"
            )
        return [dict(entry)]
    raise ValueError(
        f"edge entries must be '>>' strings or mappings, got "
        f"{type(entry).__name__}"
    )


def flow_from_yaml(text: str) -> ETLGraph:
    """Parse a flow from a YAML document in the DSL described above."""
    try:
        document = yaml.safe_load(text)
    except yaml.YAMLError as exc:
        raise ValueError(f"invalid YAML document: {exc}") from None
    if not isinstance(document, Mapping) or "flow" not in document:
        raise ValueError("a flow YAML document must contain a top-level 'flow' mapping")
    spec = document["flow"]
    if not isinstance(spec, Mapping):
        raise ValueError("the 'flow' entry must be a mapping")
    unknown = set(spec) - {"name", "nodes", "edges", "annotations"}
    if unknown:
        raise ValueError(
            f"the 'flow' mapping has unknown entries {sorted(unknown)} "
            "(valid entries: annotations, edges, name, nodes)"
        )
    nodes = spec.get("nodes") or {}
    if not isinstance(nodes, Mapping):
        raise ValueError("'nodes' must map operation ids to node specs")
    if not nodes:
        raise ValueError("a flow needs at least one node")

    flow = ETLGraph(name=str(spec.get("name", "etl_flow")))
    for op_id, node_spec in nodes.items():
        flow.add_operation(_parse_node(str(op_id), node_spec))

    edges = spec.get("edges") or []
    if not isinstance(edges, (list, tuple)):
        raise ValueError("'edges' must be a list of '>>' strings or mappings")
    for entry in edges:
        for hop in _edge_hops(entry):
            source, target = str(hop["source"]), str(hop["target"])
            for endpoint in (source, target):
                if endpoint not in nodes:
                    raise ValueError(
                        f"edge {source!r} -> {target!r} references undeclared "
                        f"node {endpoint!r}"
                    )
            schema = (
                _parse_schema(hop["schema"], source) if hop.get("schema") else None
            )
            try:
                flow.add_edge(
                    source, target, schema=schema, label=str(hop.get("label", ""))
                )
            except ValueError as exc:
                # Cycle probe and duplicate diagnostics, re-raised with the
                # document vocabulary instead of the graph-internal one.
                raise ValueError(f"invalid edge {source!r} -> {target!r}: {exc}") from None

    annotations = spec.get("annotations") or {}
    if not isinstance(annotations, Mapping):
        raise ValueError("'annotations' must be a mapping")
    flow.annotations.update(annotations)
    return flow


# ----------------------------------------------------------------------
# Dumping
# ----------------------------------------------------------------------


def _dump_field(field: Field) -> Any:
    default_nullable = not field.key
    if field.nullable == default_nullable:
        suffix = "!" if field.key else ""
        return f"{field.name}:{field.dtype.value}{suffix}"
    return {
        "name": field.name,
        "dtype": field.dtype.value,
        "nullable": field.nullable,
        "key": field.key,
    }


def _dump_node(operation: Operation) -> dict[str, Any]:
    node: dict[str, Any] = {"kind": operation.kind.value}
    if operation.name != operation.op_id:
        node["name"] = operation.name
    if len(operation.output_schema):
        node["schema"] = [_dump_field(field) for field in operation.output_schema]
    if operation.config:
        node["config"] = dict(operation.config)
    overrides = {
        key: value
        for key, value in operation.properties.to_dict().items()
        if value != _DEFAULT_PROPERTIES[key]
    }
    if overrides:
        node["properties"] = overrides
    return node


def flow_to_yaml(flow: ETLGraph) -> str:
    """Serialise a flow to the YAML DSL (inverse of :func:`flow_from_yaml`).

    Defaults are omitted (names equal to the op id, empty schemas and
    configs, default cost-model properties, edge schemas that match the
    source's output schema), so a document loaded and re-dumped reaches
    a byte-identical fixpoint.
    """
    nodes = {op.op_id: _dump_node(op) for op in flow.operations()}
    edges: list[Any] = []
    for edge in flow.edges():
        source_schema = flow.operation(edge.source).output_schema
        if not edge.label and edge.schema.to_dict() == source_schema.to_dict():
            edges.append(f"{edge.source} >> {edge.target}")
            continue
        entry: dict[str, Any] = {"source": edge.source, "target": edge.target}
        if edge.label:
            entry["label"] = edge.label
        if edge.schema.to_dict() != source_schema.to_dict():
            entry["schema"] = [_dump_field(field) for field in edge.schema]
        edges.append(entry)
    spec: dict[str, Any] = {"name": flow.name, "nodes": nodes, "edges": edges}
    if flow.annotations:
        spec["annotations"] = dict(flow.annotations)
    return yaml.safe_dump(
        {"flow": spec}, sort_keys=False, default_flow_style=False, width=88
    )


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------


def save_flow_yaml(flow: ETLGraph, path: str | Path) -> Path:
    """Write a flow to a ``.yaml`` file and return the path."""
    target = Path(path)
    target.write_text(flow_to_yaml(flow), encoding="utf-8")
    return target


def load_flow_yaml(path: str | Path) -> ETLGraph:
    """Read a flow from a ``.yaml`` file."""
    return flow_from_yaml(Path(path).read_text(encoding="utf-8"))
