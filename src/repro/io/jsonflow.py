"""Native JSON interchange format for ETL flows.

The JSON format is a direct serialisation of the
:meth:`repro.etl.graph.ETLGraph.to_dict` structure; it round-trips every
detail of the flow (operations, configurations, cost models, edge schemas,
annotations and pattern lineage) and is the format the examples and
benchmarks persist their artefacts in.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.etl.graph import ETLGraph


def flow_to_json(flow: ETLGraph, indent: int = 2) -> str:
    """Serialise a flow to a JSON string."""
    return json.dumps(flow.to_dict(), indent=indent, sort_keys=False)


def flow_from_json(text: str) -> ETLGraph:
    """Parse a flow from a JSON string produced by :func:`flow_to_json`."""
    data = json.loads(text)
    if not isinstance(data, dict):
        raise ValueError("a flow JSON document must contain a JSON object")
    return ETLGraph.from_dict(data)


def save_flow_json(flow: ETLGraph, path: str | Path) -> Path:
    """Write a flow to a ``.json`` file and return the path."""
    target = Path(path)
    target.write_text(flow_to_json(flow), encoding="utf-8")
    return target


def load_flow_json(path: str | Path) -> ETLGraph:
    """Read a flow from a ``.json`` file."""
    return flow_from_json(Path(path).read_text(encoding="utf-8"))
