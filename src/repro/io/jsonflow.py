"""Native JSON interchange format for ETL flows and quality profiles.

The flow format is a direct serialisation of the
:meth:`repro.etl.graph.ETLGraph.to_dict` structure; it round-trips every
detail of the flow (operations, configurations, cost models, edge schemas,
annotations and pattern lineage) and is the format the examples and
benchmarks persist their artefacts in.

The module is also the JSON codec of the service layer
(:mod:`repro.service` and the ``"http"`` cache tier):
:func:`profile_to_dict` / :func:`profile_from_dict` round-trip
:class:`~repro.quality.composite.QualityProfile` instances exactly
(floats survive because :mod:`json` serialises them with ``repr``), and
:func:`cache_key_from_jsonable` restores the nested-tuple cache keys of
:meth:`~repro.quality.estimator.QualityEstimator.cache_key` after their
trip through JSON arrays.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.etl.graph import ETLGraph
from repro.quality.composite import QualityProfile
from repro.quality.framework import MeasureValue, QualityCharacteristic


def flow_to_json(flow: ETLGraph, indent: int = 2) -> str:
    """Serialise a flow to a JSON string."""
    return json.dumps(flow.to_dict(), indent=indent, sort_keys=False)


def flow_from_json(text: str) -> ETLGraph:
    """Parse a flow from a JSON string produced by :func:`flow_to_json`."""
    data = json.loads(text)
    if not isinstance(data, dict):
        raise ValueError("a flow JSON document must contain a JSON object")
    return ETLGraph.from_dict(data)


def save_flow_json(flow: ETLGraph, path: str | Path) -> Path:
    """Write a flow to a ``.json`` file and return the path."""
    target = Path(path)
    target.write_text(flow_to_json(flow), encoding="utf-8")
    return target


def load_flow_json(path: str | Path) -> ETLGraph:
    """Read a flow from a ``.json`` file."""
    return flow_from_json(Path(path).read_text(encoding="utf-8"))


# ----------------------------------------------------------------------
# Quality profiles (the wire currency of the service layer)
# ----------------------------------------------------------------------


def profile_to_dict(profile: QualityProfile) -> dict[str, Any]:
    """Serialise a quality profile to a JSON-compatible dict.

    The inverse of :func:`profile_from_dict`; the round-trip is exact
    (scores and measure values compare equal), which the network cache
    tier relies on for its tier-equivalence guarantee.
    """
    return {
        "flow_name": profile.flow_name,
        "scores": {c.value: score for c, score in profile.scores.items()},
        "values": {
            name: {
                "measure": v.measure,
                "characteristic": v.characteristic.value,
                "value": v.value,
                "normalized": v.normalized,
                "higher_is_better": v.higher_is_better,
                "unit": v.unit,
                "description": v.description,
            }
            for name, v in profile.values.items()
        },
    }


def profile_from_dict(data: Mapping[str, Any]) -> QualityProfile:
    """Rebuild a quality profile from :func:`profile_to_dict` output."""
    values = {
        name: MeasureValue(
            measure=entry["measure"],
            characteristic=QualityCharacteristic(entry["characteristic"]),
            value=entry["value"],
            normalized=entry["normalized"],
            higher_is_better=entry["higher_is_better"],
            unit=entry.get("unit", ""),
            description=entry.get("description", ""),
        )
        for name, entry in data["values"].items()
    }
    scores = {
        QualityCharacteristic(name): score for name, score in data["scores"].items()
    }
    return QualityProfile(flow_name=data["flow_name"], scores=scores, values=values)


def cache_key_from_jsonable(data: Any) -> Any:
    """Restore a profile-cache key after its trip through JSON.

    Cache keys are nested tuples of scalars (see
    ``QualityEstimator.cache_key``); :func:`json.dumps` serialises the
    tuples as arrays, so decoding converts every array back into a tuple
    recursively.  Keys never contain real lists, so the conversion is
    unambiguous, and the result is ``repr``-identical to the original
    key -- the property the disk tier's hashed file names depend on.
    """
    if isinstance(data, list):
        return tuple(cache_key_from_jsonable(item) for item in data)
    return data
