"""Pentaho Data Integration (PDI) ``.ktr`` import/export.

PDI transformations are stored as XML documents with a
``<transformation>`` root, one ``<step>`` element per operation and an
``<order>`` section of ``<hop>`` elements wiring the steps.  This module
maps the flow model onto that structure: operation kinds are translated to
the closest PDI step types (and back via an inverse mapping), the cost
model and schemas travel in a ``<repro>`` extension element so that a
round trip through PDI format is lossless for our own documents, while
plain PDI files produced by Spoon (without the extension element) import
with sensible defaults.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from pathlib import Path
from xml.dom import minidom

from repro.etl.graph import ETLGraph
from repro.etl.operations import Operation, OperationKind
from repro.etl.properties import OperationProperties
from repro.etl.schema import Schema

# Mapping between our operation kinds and PDI step types.
_KIND_TO_STEP_TYPE: dict[OperationKind, str] = {
    OperationKind.EXTRACT_TABLE: "TableInput",
    OperationKind.EXTRACT_FILE: "TextFileInput",
    OperationKind.EXTRACT_SAVEPOINT: "TableInput",
    OperationKind.FILTER: "FilterRows",
    OperationKind.PROJECT: "SelectValues",
    OperationKind.DERIVE: "Calculator",
    OperationKind.RENAME: "SelectValues",
    OperationKind.CONVERT: "SelectValues",
    OperationKind.SURROGATE_KEY: "Sequence",
    OperationKind.LOOKUP: "DBLookup",
    OperationKind.SLOWLY_CHANGING_DIM: "DimensionLookup",
    OperationKind.AGGREGATE: "GroupBy",
    OperationKind.SORT: "SortRows",
    OperationKind.PIVOT: "Denormaliser",
    OperationKind.JOIN: "MergeJoin",
    OperationKind.UNION: "Append",
    OperationKind.MERGE: "Append",
    OperationKind.DIFF: "MergeRows",
    OperationKind.SPLIT: "SwitchCase",
    OperationKind.ROUTER: "SwitchCase",
    OperationKind.PARTITION: "SwitchCase",
    OperationKind.REPLICATE: "CloneRow",
    OperationKind.DEDUPLICATE: "Unique",
    OperationKind.FILTER_NULLS: "FilterRows",
    OperationKind.CROSSCHECK: "DBLookup",
    OperationKind.VALIDATE: "Validator",
    OperationKind.CLEANSE: "StringOperations",
    OperationKind.LOAD_TABLE: "TableOutput",
    OperationKind.LOAD_FILE: "TextFileOutput",
    OperationKind.CHECKPOINT: "TableOutput",
    OperationKind.RECOVERY_BRANCH: "FilterRows",
    OperationKind.ENCRYPT: "StringOperations",
    OperationKind.DECRYPT: "StringOperations",
    OperationKind.ACCESS_CONTROL: "StringOperations",
    OperationKind.SCHEDULE: "Dummy",
    OperationKind.NOOP: "Dummy",
}

# Inverse mapping used when no <repro> extension is present.  Ambiguous
# step types map to the most common kind.
_STEP_TYPE_TO_KIND: dict[str, OperationKind] = {
    "TableInput": OperationKind.EXTRACT_TABLE,
    "TextFileInput": OperationKind.EXTRACT_FILE,
    "CsvInput": OperationKind.EXTRACT_FILE,
    "FilterRows": OperationKind.FILTER,
    "SelectValues": OperationKind.PROJECT,
    "Calculator": OperationKind.DERIVE,
    "Sequence": OperationKind.SURROGATE_KEY,
    "DBLookup": OperationKind.LOOKUP,
    "StreamLookup": OperationKind.LOOKUP,
    "DimensionLookup": OperationKind.SLOWLY_CHANGING_DIM,
    "GroupBy": OperationKind.AGGREGATE,
    "MemoryGroupBy": OperationKind.AGGREGATE,
    "SortRows": OperationKind.SORT,
    "Denormaliser": OperationKind.PIVOT,
    "MergeJoin": OperationKind.JOIN,
    "JoinRows": OperationKind.JOIN,
    "Append": OperationKind.UNION,
    "MergeRows": OperationKind.DIFF,
    "SwitchCase": OperationKind.ROUTER,
    "CloneRow": OperationKind.REPLICATE,
    "Unique": OperationKind.DEDUPLICATE,
    "UniqueRowsByHashSet": OperationKind.DEDUPLICATE,
    "Validator": OperationKind.VALIDATE,
    "StringOperations": OperationKind.CLEANSE,
    "TableOutput": OperationKind.LOAD_TABLE,
    "InsertUpdate": OperationKind.LOAD_TABLE,
    "TextFileOutput": OperationKind.LOAD_FILE,
    "Dummy": OperationKind.NOOP,
}


def flow_to_pdi(flow: ETLGraph) -> str:
    """Serialise a flow to a PDI ``.ktr`` XML string."""
    root = ET.Element("transformation")
    info = ET.SubElement(root, "info")
    ET.SubElement(info, "name").text = flow.name
    if flow.annotations:
        ET.SubElement(info, "repro_annotations").text = json.dumps(flow.annotations)

    order = ET.SubElement(root, "order")
    for edge in flow.edges():
        hop = ET.SubElement(order, "hop")
        ET.SubElement(hop, "from").text = edge.source
        ET.SubElement(hop, "to").text = edge.target
        ET.SubElement(hop, "enabled").text = "Y"

    for op in flow.operations():
        step = ET.SubElement(root, "step")
        ET.SubElement(step, "name").text = op.op_id
        ET.SubElement(step, "type").text = _KIND_TO_STEP_TYPE.get(op.kind, "Dummy")
        ET.SubElement(step, "description").text = op.name
        # The <repro> extension preserves everything PDI cannot express.
        extension = ET.SubElement(step, "repro")
        extension.text = json.dumps(
            {
                "kind": op.kind.value,
                "schema": op.output_schema.to_dict(),
                "config": op.config,
                "properties": op.properties.to_dict(),
            }
        )

    raw = ET.tostring(root, encoding="unicode")
    return minidom.parseString(raw).toprettyxml(indent="  ")


def flow_from_pdi(text: str) -> ETLGraph:
    """Parse a flow from a PDI ``.ktr`` XML string."""
    root = ET.fromstring(text)
    if root.tag != "transformation":
        raise ValueError(f"not a PDI transformation: root element is <{root.tag}>")
    info = root.find("info")
    name = "pdi_flow"
    annotations: dict[str, object] = {}
    if info is not None:
        name_el = info.find("name")
        if name_el is not None and name_el.text:
            name = name_el.text
        annotations_el = info.find("repro_annotations")
        if annotations_el is not None and annotations_el.text:
            annotations = json.loads(annotations_el.text)

    flow = ETLGraph(name=name)
    flow.annotations = dict(annotations)

    for step in root.findall("step"):
        step_name = (step.findtext("name") or "").strip()
        step_type = (step.findtext("type") or "Dummy").strip()
        description = (step.findtext("description") or step_name).strip()
        extension_text = step.findtext("repro")
        if extension_text:
            extension = json.loads(extension_text)
            operation = Operation(
                kind=OperationKind(extension.get("kind", "noop")),
                name=description or step_name,
                op_id=step_name,
                output_schema=Schema.from_dict(extension.get("schema", [])),
                config=dict(extension.get("config", {})),
                properties=OperationProperties.from_dict(extension.get("properties", {})),
            )
        else:
            operation = Operation(
                kind=_STEP_TYPE_TO_KIND.get(step_type, OperationKind.NOOP),
                name=description or step_name,
                op_id=step_name,
            )
        flow.add_operation(operation)

    order = root.find("order")
    if order is not None:
        for hop in order.findall("hop"):
            source = (hop.findtext("from") or "").strip()
            target = (hop.findtext("to") or "").strip()
            enabled = (hop.findtext("enabled") or "Y").strip()
            if enabled.upper() != "Y":
                continue
            if source in flow and target in flow:
                flow.add_edge(source, target)
    return flow


def save_flow_pdi(flow: ETLGraph, path: str | Path) -> Path:
    """Write a flow to a ``.ktr`` file and return the path."""
    target = Path(path)
    target.write_text(flow_to_pdi(flow), encoding="utf-8")
    return target


def load_flow_pdi(path: str | Path) -> ETLGraph:
    """Read a flow from a ``.ktr`` file."""
    return flow_from_pdi(Path(path).read_text(encoding="utf-8"))
