"""xLM import/export.

xLM is the XML-based logical ETL model of Wilkinson et al. ("Leveraging
business process models for ETL design", ER 2010), the format the paper's
demo loads its TPC-DS / TPC-H processes from.  The original schema is not
publicly specified in full, so this module implements a faithful-in-spirit
dialect: a ``<design>`` document containing ``<node>`` elements (with
``<properties>`` describing the operation) and ``<edge>`` elements wiring
them, which is how xLM is described in the literature.  The writer and
reader round-trip everything the flow model needs, so externally produced
documents following the same structure can be imported as well.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from pathlib import Path
from xml.dom import minidom

from repro.etl.graph import ETLGraph
from repro.etl.operations import Operation, OperationKind
from repro.etl.properties import OperationProperties
from repro.etl.schema import DataType, Field, Schema


def flow_to_xlm(flow: ETLGraph) -> str:
    """Serialise a flow to an xLM XML string."""
    root = ET.Element("design", attrib={"name": flow.name})
    if flow.annotations:
        annotations = ET.SubElement(root, "annotations")
        for key, value in flow.annotations.items():
            ET.SubElement(annotations, "annotation", attrib={"key": key}).text = json.dumps(value)

    nodes = ET.SubElement(root, "nodes")
    for op in flow.operations():
        node = ET.SubElement(
            nodes,
            "node",
            attrib={"id": op.op_id, "name": op.name, "optype": op.kind.value},
        )
        schema_el = ET.SubElement(node, "schema")
        for field in op.output_schema:
            ET.SubElement(
                schema_el,
                "attribute",
                attrib={
                    "name": field.name,
                    "type": field.dtype.value,
                    "nullable": str(field.nullable).lower(),
                    "key": str(field.key).lower(),
                },
            )
        properties = ET.SubElement(node, "properties")
        for key, value in op.properties.to_dict().items():
            if key == "extra":
                continue
            ET.SubElement(properties, "property", attrib={"name": key}).text = str(value)
        config = ET.SubElement(node, "configuration")
        for key, value in op.config.items():
            ET.SubElement(config, "parameter", attrib={"name": key}).text = json.dumps(value)

    edges = ET.SubElement(root, "edges")
    for edge in flow.edges():
        edge_el = ET.SubElement(
            edges,
            "edge",
            attrib={"from": edge.source, "to": edge.target, "label": edge.label},
        )
        schema_el = ET.SubElement(edge_el, "schema")
        for field in edge.schema:
            ET.SubElement(
                schema_el,
                "attribute",
                attrib={
                    "name": field.name,
                    "type": field.dtype.value,
                    "nullable": str(field.nullable).lower(),
                    "key": str(field.key).lower(),
                },
            )

    raw = ET.tostring(root, encoding="unicode")
    return minidom.parseString(raw).toprettyxml(indent="  ")


def _parse_schema(schema_el: ET.Element | None) -> Schema:
    if schema_el is None:
        return Schema()
    fields = []
    for attribute in schema_el.findall("attribute"):
        fields.append(
            Field(
                name=attribute.get("name", ""),
                dtype=DataType(attribute.get("type", "string")),
                nullable=attribute.get("nullable", "true") == "true",
                key=attribute.get("key", "false") == "true",
            )
        )
    return Schema(tuple(fields))


def flow_from_xlm(text: str) -> ETLGraph:
    """Parse a flow from an xLM XML string."""
    root = ET.fromstring(text)
    if root.tag != "design":
        raise ValueError(f"not an xLM document: root element is <{root.tag}>")
    flow = ETLGraph(name=root.get("name", "etl_flow"))

    annotations = root.find("annotations")
    if annotations is not None:
        for annotation in annotations.findall("annotation"):
            key = annotation.get("key", "")
            flow.annotations[key] = json.loads(annotation.text or "null")

    nodes = root.find("nodes")
    if nodes is None:
        raise ValueError("xLM document has no <nodes> section")
    for node in nodes.findall("node"):
        properties_data: dict[str, float] = {}
        properties_el = node.find("properties")
        if properties_el is not None:
            for prop in properties_el.findall("property"):
                try:
                    properties_data[prop.get("name", "")] = float(prop.text or "0")
                except ValueError:
                    continue
        config: dict[str, object] = {}
        config_el = node.find("configuration")
        if config_el is not None:
            for parameter in config_el.findall("parameter"):
                raw = parameter.text or "null"
                try:
                    config[parameter.get("name", "")] = json.loads(raw)
                except json.JSONDecodeError:
                    config[parameter.get("name", "")] = raw
        operation = Operation(
            kind=OperationKind(node.get("optype", "noop")),
            name=node.get("name", ""),
            op_id=node.get("id", ""),
            output_schema=_parse_schema(node.find("schema")),
            config=config,
            properties=OperationProperties.from_dict(properties_data),
        )
        flow.add_operation(operation)

    edges = root.find("edges")
    if edges is not None:
        for edge in edges.findall("edge"):
            flow.add_edge(
                edge.get("from", ""),
                edge.get("to", ""),
                schema=_parse_schema(edge.find("schema")),
                label=edge.get("label", ""),
            )
    return flow


def save_flow_xlm(flow: ETLGraph, path: str | Path) -> Path:
    """Write a flow to an ``.xlm`` (XML) file and return the path."""
    target = Path(path)
    target.write_text(flow_to_xlm(flow), encoding="utf-8")
    return target


def load_flow_xlm(path: str | Path) -> ETLGraph:
    """Read a flow from an ``.xlm`` (XML) file."""
    return flow_from_xlm(Path(path).read_text(encoding="utf-8"))
