"""Graphviz DOT export of ETL flows.

The tool's UI visualises the process representation of each alternative
flow; this reproduction exports flows to DOT so that they can be rendered
with Graphviz (or simply inspected as text).  Node shapes and colours
encode the operation category, making the grafted pattern operations easy
to spot next to the original flow.
"""

from __future__ import annotations

from pathlib import Path

from repro.etl.graph import ETLGraph
from repro.etl.operations import OperationCategory

_CATEGORY_STYLES: dict[OperationCategory, tuple[str, str]] = {
    OperationCategory.EXTRACTION: ("box3d", "lightblue"),
    OperationCategory.TRANSFORMATION: ("box", "white"),
    OperationCategory.ROUTING: ("diamond", "lightyellow"),
    OperationCategory.DATA_QUALITY: ("box", "lightgreen"),
    OperationCategory.LOADING: ("box3d", "lightsalmon"),
    OperationCategory.CONTROL: ("octagon", "lightgrey"),
}


def _escape(label: str) -> str:
    return label.replace('"', r"\"")


def flow_to_dot(flow: ETLGraph, rankdir: str = "LR") -> str:
    """Render a flow as a Graphviz DOT digraph string."""
    lines = [f'digraph "{_escape(flow.name)}" {{', f"  rankdir={rankdir};", "  node [fontsize=10];"]
    for op in flow.operations():
        shape, color = _CATEGORY_STYLES[op.category]
        label = f"{op.name}\\n[{op.kind.value}]"
        lines.append(
            f'  "{_escape(op.op_id)}" [label="{_escape(label)}", shape={shape}, '
            f'style=filled, fillcolor={color}];'
        )
    for edge in flow.edges():
        attributes = f' [label="{_escape(edge.label)}"]' if edge.label else ""
        lines.append(f'  "{_escape(edge.source)}" -> "{_escape(edge.target)}"{attributes};')
    lines.append("}")
    return "\n".join(lines) + "\n"


def save_flow_dot(flow: ETLGraph, path: str | Path) -> Path:
    """Write the DOT rendering of a flow to a file and return the path."""
    target = Path(path)
    target.write_text(flow_to_dot(flow), encoding="utf-8")
    return target
