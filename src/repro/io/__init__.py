"""Import/export of logical ETL process models.

The first step of a POIESIS session is to import an initial ETL model;
the paper currently supports the loading of xLM and PDI (Pentaho Data
Integration) documents.  This package provides readers and writers for
both formats, a native JSON interchange format, a compact YAML authoring
DSL, and a Graphviz DOT export used for inspection.
"""

from repro.io.jsonflow import flow_from_json, flow_to_json, load_flow_json, save_flow_json
from repro.io.yamlflow import flow_from_yaml, flow_to_yaml, load_flow_yaml, save_flow_yaml
from repro.io.xlm import flow_from_xlm, flow_to_xlm, load_flow_xlm, save_flow_xlm
from repro.io.pdi import flow_from_pdi, flow_to_pdi, load_flow_pdi, save_flow_pdi
from repro.io.dot import flow_to_dot

__all__ = [
    "flow_from_json",
    "flow_to_json",
    "load_flow_json",
    "save_flow_json",
    "flow_from_yaml",
    "flow_to_yaml",
    "load_flow_yaml",
    "save_flow_yaml",
    "flow_from_xlm",
    "flow_to_xlm",
    "load_flow_xlm",
    "save_flow_xlm",
    "flow_from_pdi",
    "flow_to_pdi",
    "load_flow_pdi",
    "save_flow_pdi",
    "flow_to_dot",
]
