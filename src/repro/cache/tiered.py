"""The memory-over-disk composite profile-cache tier.

Combines the speed of the in-process LRU with the persistence of the
disk store: lookups hit memory first, fall back to disk, and *promote*
disk hits into the memory tier so a profile is deserialized at most once
per process.  Writes go through to both tiers (the disk write may be
buffered -- see :attr:`DiskProfileCache.batch_writes`).

The composite keeps its own *logical* :class:`CacheStats` -- exactly one
hit or miss per :meth:`get`, whichever tier served it -- so existing
consumers of ``cache.stats`` (benchmarks, session histories) read the
same numbers regardless of tier; :meth:`tier_stats` exposes the
per-tier breakdown, including promotions counted as memory puts.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Sequence

from repro.cache.backend import CacheStats, observe_get_many
from repro.cache.disk import DiskProfileCache
from repro.cache.memory import ProfileCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.quality.composite import QualityProfile


class TieredProfileCache:
    """Two-level profile cache: an in-memory LRU in front of a disk store."""

    def __init__(
        self,
        memory: ProfileCache,
        disk: DiskProfileCache,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        self.memory = memory
        self.disk = disk
        self.stats = CacheStats()
        # Observability only (logical hits/misses under "cache.tiered");
        # the sub-tiers carry their own registries.  Not pickled.
        self.metrics_registry = registry
        self._stats_lock = threading.Lock()

    # ------------------------------------------------------------------

    def get(self, key: tuple) -> QualityProfile | None:
        """Memory first, then disk (promoting the hit); one logical count."""
        profile = self.memory.get(key)
        if profile is None:
            profile = self.disk.get(key)
            if profile is not None:
                self.memory.put(key, profile)
        with self._stats_lock:
            if profile is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
        return profile

    def get_many(self, keys: Sequence[tuple]) -> list["QualityProfile | None"]:
        """Batched lookup: memory first, then one disk pass for the misses."""
        start = time.perf_counter()
        results: list[QualityProfile | None] = self.memory.get_many(keys)
        missing = [index for index, profile in enumerate(results) if profile is None]
        if missing:
            from_disk = self.disk.get_many([keys[index] for index in missing])
            for index, profile in zip(missing, from_disk):
                if profile is not None:
                    self.memory.put(keys[index], profile)
                    results[index] = profile
        with self._stats_lock:
            for profile in results:
                if profile is None:
                    self.stats.misses += 1
                else:
                    self.stats.hits += 1
        observe_get_many(
            self.metrics_registry, "tiered", time.perf_counter() - start, results
        )
        return results

    def put(self, key: tuple, profile: QualityProfile) -> None:
        """Write through to both tiers (the disk write may be buffered)."""
        self.memory.put(key, profile)
        self.disk.put(key, profile)

    def flush(self) -> None:
        """Publish the disk tier's buffered writes."""
        self.disk.flush()

    def clear(self) -> None:
        """Drop both tiers and reset every statistic (logical and per-tier)."""
        self.memory.clear()
        self.disk.clear()
        with self._stats_lock:
            self.stats = CacheStats()

    def tier_stats(self) -> dict[str, dict[str, float]]:
        """Logical plus per-tier breakdown (``overall`` / ``memory`` / ``disk``)."""
        return {
            "overall": self.stats.as_dict(),
            "memory": self.memory.stats.as_dict(),
            "disk": self.disk.stats.as_dict(),
        }

    def __len__(self) -> int:
        # The disk tier is a superset of the memory tier (every put goes
        # through to it), so its entry count is the cache's entry count.
        return len(self.disk)

    def __contains__(self, key: tuple) -> bool:
        return key in self.memory or key in self.disk

    # ------------------------------------------------------------------
    # Pickling: delegate to the tiers (entry-less memory, disk handle),
    # round-tripping the logical stats; the lock is rebuilt fresh.
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict[str, object]:
        return {"memory": self.memory, "disk": self.disk, "stats": self.stats}

    def __setstate__(self, state: dict[str, object]) -> None:
        self.memory = state["memory"]  # type: ignore[assignment]
        self.disk = state["disk"]  # type: ignore[assignment]
        self.stats = state["stats"]  # type: ignore[assignment]
        self.metrics_registry = None
        self._stats_lock = threading.Lock()
