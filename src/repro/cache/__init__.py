"""Tiered quality-profile caching.

The planning loop re-estimates quality profiles for every candidate
flow; profiles are pure functions of (flow fingerprint, estimation
settings, measure registry), which makes them ideal cache currency.
This package provides the cache tiers behind
``ProcessingConfiguration.cache_tier``:

``"memory"``
    :class:`ProfileCache` -- the in-process LRU (the default; the seed
    behaviour).
``"disk"``
    :class:`DiskProfileCache` -- a persistent, process-shared store
    under ``cache_dir`` (atomic writes, versioned self-verifying
    entries, corruption-tolerant reads, size-capped LRU eviction).
``"tiered"``
    :class:`TieredProfileCache` -- memory over disk with promotion on
    disk hits; the right choice for repeated/parallel runs.
``"http"``
    :class:`HTTPProfileCache` -- a client onto a shared network cache
    service (:class:`repro.service.CacheServer`), so a fleet of machines
    shares one store; degrades gracefully to a local memory tier when
    the server is unreachable.
``"sharded"``
    :class:`~repro.fleet.ShardedProfileCache` -- a consistent-hash ring
    of ``"http"`` clients partitioning the store across N cache servers
    (``cache_urls``); each shard degrades and recovers independently.
    See ``docs/fleet.md``.

All tiers implement the :class:`CacheBackend` protocol.  See
``docs/caching.md`` for the selection guide, the key/versioning scheme
and the invalidation rules, and ``docs/service.md`` for the network
tier's wire protocol.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.cache.backend import CacheBackend, CacheStats, cache_stats_dict
from repro.cache.disk import CACHE_SCHEMA_VERSION, DiskProfileCache, key_digest
from repro.cache.memory import ProfileCache
from repro.cache.tiered import TieredProfileCache

# Safe to import eagerly: repro.cache.http defers its JSON-codec imports
# (repro.io -> repro.quality -> repro.cache) to call time, so no cycle.
from repro.cache.http import (  # noqa: E402  (after siblings)
    DEFAULT_MAX_PENDING,
    DEFAULT_RECOVERY_INTERVAL,
    HTTPProfileCache,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

#: The valid values of ``ProcessingConfiguration.cache_tier``.
CACHE_TIERS = ("memory", "disk", "tiered", "http", "sharded")

#: Default ``ProcessingConfiguration.cache_timeout`` (seconds per request).
DEFAULT_CACHE_TIMEOUT = 5.0


def build_profile_cache(
    tier: str = "memory",
    cache_dir: str | os.PathLike | None = None,
    max_bytes: int | None = None,
    url: str | None = None,
    timeout: float = DEFAULT_CACHE_TIMEOUT,
    compression: bool = True,
    auth_token: str | None = None,
    recovery_interval: float | None = DEFAULT_RECOVERY_INTERVAL,
    max_pending: int = DEFAULT_MAX_PENDING,
    urls: tuple[str, ...] | None = None,
    ring_replicas: int | None = None,
    registry: "MetricsRegistry | None" = None,
) -> CacheBackend:
    """Build the cache backend selected by the configuration knobs.

    Mirrors the ``cache_tier`` / ``cache_dir`` / ``cache_max_bytes`` /
    ``cache_url`` / ``cache_timeout`` fields of
    :class:`~repro.core.configuration.ProcessingConfiguration` -- plus
    the ``"http"`` tier's wire knobs (``cache_compression``,
    ``cache_auth_token``, ``cache_recovery_interval``,
    ``cache_max_pending``) and the ``"sharded"`` tier's ring knobs
    (``cache_urls`` -> ``urls``, ``fleet_ring_replicas`` ->
    ``ring_replicas``); the configuration validates the combination up
    front and the planner calls this when ``cache_profiles`` is
    enabled.  ``tier="memory"`` ignores the other arguments and
    reproduces the original in-process behaviour.  ``registry``
    (``metrics_enabled`` -> :func:`repro.obs.enabled_registry`) hangs a
    metrics registry on the built tier so its batched lookups report
    ``cache.<tier>.*`` instruments; ``None`` (the default) keeps every
    tier observation-free.
    """
    if tier == "memory":
        return ProfileCache(registry=registry)
    if tier not in CACHE_TIERS:
        raise ValueError(f"unknown cache tier: {tier!r} (use one of {CACHE_TIERS})")
    if tier == "sharded":
        if not urls:
            raise ValueError('cache_tier="sharded" requires cache_urls')
        # Imported lazily: repro.fleet.sharded imports this package.
        from repro.fleet.sharded import ShardedProfileCache

        kwargs: dict = dict(
            timeout=timeout,
            compression=compression,
            auth_token=auth_token,
            recovery_interval=recovery_interval,
            max_pending=max_pending,
        )
        if ring_replicas is not None:
            kwargs["ring_replicas"] = ring_replicas
        return ShardedProfileCache(urls, registry=registry, **kwargs)
    if tier == "http":
        if url is None:
            raise ValueError('cache_tier="http" requires a cache_url')
        return HTTPProfileCache(
            url,
            timeout=timeout,
            compression=compression,
            auth_token=auth_token,
            recovery_interval=recovery_interval,
            max_pending=max_pending,
            registry=registry,
        )
    if cache_dir is None:
        raise ValueError(f"cache_tier={tier!r} requires a cache_dir")
    disk = DiskProfileCache(cache_dir, max_bytes=max_bytes, registry=registry)
    if tier == "disk":
        return disk
    return TieredProfileCache(ProfileCache(registry=registry), disk, registry=registry)


__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CACHE_TIERS",
    "DEFAULT_CACHE_TIMEOUT",
    "CacheBackend",
    "CacheStats",
    "DiskProfileCache",
    "HTTPProfileCache",
    "ProfileCache",
    "TieredProfileCache",
    "build_profile_cache",
    "cache_stats_dict",
    "key_digest",
]
