"""The cache backend contract shared by every profile-cache tier.

:class:`CacheBackend` is the protocol extracted from the original
in-memory ``ProfileCache`` (PR 1) so that the planner, the estimator and
the parallel evaluator can be handed *any* cache tier -- in-memory LRU
(:class:`~repro.cache.memory.ProfileCache`), disk-backed
(:class:`~repro.cache.disk.DiskProfileCache`) or the memory-over-disk
composite (:class:`~repro.cache.tiered.TieredProfileCache`) -- without
knowing which one they got.

Keys are opaque hashable tuples produced by
:meth:`repro.quality.estimator.QualityEstimator.cache_key`; they already
fold in the flow content fingerprint, the estimation settings and the
measure registry, so two estimators with different settings can safely
share one backend.  Values are
:class:`~repro.quality.composite.QualityProfile` instances; backends
must treat them as immutable snapshots (callers already store copies).

See ``docs/caching.md`` for the tier-selection guide and the
key/versioning scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.quality.composite import QualityProfile


@dataclass
class CacheStats:
    """Hit/miss/evict accounting of one cache tier.

    Every backend owns one instance; the tiered composite additionally
    keeps a *logical* aggregate (one hit or miss per lookup, whichever
    tier served it).  ``invalid`` counts disk entries that were dropped
    on read because they were corrupted, truncated, or written by an
    incompatible cache schema version -- they are also counted as
    misses, so ``lookups`` stays the true lookup count.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalid: int = 0

    @property
    def lookups(self) -> int:
        """Total number of cache lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never used)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        """JSON-friendly snapshot (used by session histories and benchmarks)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalid": self.invalid,
            "lookups": self.lookups,
            "hit_rate": self.hit_rate,
        }


def cache_stats_dict(cache: "CacheBackend") -> dict[str, object]:
    """The one stats serialization every cache consumer shares.

    Logical counters (:meth:`CacheStats.as_dict`) at the top level plus
    the per-tier breakdown under ``"tiers"`` -- the shape
    ``RedesignSession.cache_stats``, the ``/stats`` routes and the
    ``/metrics`` exporters all return.  Keep conversions here; call
    sites must not re-assemble the dict by hand.
    """
    stats: dict[str, object] = dict(cache.stats.as_dict())
    stats["tiers"] = cache.tier_stats()
    return stats


def observe_get_many(
    registry: "MetricsRegistry | None",
    tier: str,
    elapsed_seconds: float,
    results: "Sequence[QualityProfile | None]",
) -> None:
    """Record one batched lookup into a metrics registry (if any).

    Shared by every tier's ``get_many``: one observation on
    ``cache.<tier>.get_many_seconds`` plus result-derived
    ``cache.<tier>.hits`` / ``.misses`` counter bumps.  Deriving the
    counts from the *results* (instead of diffing :attr:`stats`) keeps
    them exact under concurrent lookups on a shared backend.  ``invalid``
    is not derivable from results; the disk tier mirrors it at the site
    that detects the damage.
    """
    if registry is None:
        return
    registry.histogram(f"cache.{tier}.get_many_seconds").observe(elapsed_seconds)
    hits = sum(1 for result in results if result is not None)
    misses = len(results) - hits
    if hits:
        registry.counter(f"cache.{tier}.hits").inc(hits)
    if misses:
        registry.counter(f"cache.{tier}.misses").inc(misses)


@runtime_checkable
class CacheBackend(Protocol):
    """What the estimator/evaluator/planner require of a profile cache.

    The contract, beyond the method signatures:

    * ``get``/``put`` must be safe to call concurrently from multiple
      threads of one process (the streaming evaluator does), and a
      shared *disk* backend must additionally tolerate concurrent
      writers from other processes (two planners pointed at one
      ``cache_dir``) -- last-writer-wins per entry, readers never see a
      torn entry.
    * ``get`` counts exactly one hit or one miss in :attr:`stats` per
      call; ``put`` never touches hit/miss counts.
    * ``put`` may buffer (see ``flush``); a buffered entry must still be
      visible to ``get``/``__contains__`` of the same backend instance.
    * ``flush`` persists any buffered writes; it is a no-op for fully
      synchronous backends.  Callers that batch work (the parallel
      evaluator's process pool) call it once on teardown.
    * ``clear`` drops every entry *and* resets the statistics.
    """

    stats: CacheStats

    def get(self, key: tuple) -> "QualityProfile | None":
        """Look up a profile, counting the hit or miss."""
        ...

    def get_many(self, keys: "Sequence[tuple]") -> "list[QualityProfile | None]":
        """Batched lookup: one result (and one hit/miss count) per key.

        Semantically equivalent to ``[self.get(k) for k in keys]`` but
        backends amortize the per-lookup overhead -- one lock acquisition
        for the in-memory tier, one locked pass over the entry files for
        the disk tier, one network round-trip for the HTTP tier.  The
        parallel evaluator resolves whole evaluation chunks this way.
        """
        ...

    def put(self, key: tuple, profile: "QualityProfile") -> None:
        """Insert (or refresh) a profile; does not affect hit/miss counts."""
        ...

    def flush(self) -> None:
        """Persist buffered writes (no-op for synchronous backends)."""
        ...

    def clear(self) -> None:
        """Drop every entry and reset the statistics."""
        ...

    def tier_stats(self) -> dict[str, dict[str, float]]:
        """Per-tier statistics snapshots, keyed by tier name."""
        ...

    def __len__(self) -> int: ...

    def __contains__(self, key: tuple) -> bool: ...
