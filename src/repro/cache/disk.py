"""The disk-backed profile-cache tier.

Persists fingerprint-keyed quality profiles under a directory so that
*separate runs* amortize estimation work: repeated benchmark invocations,
re-plans in new processes, and parallel sessions pointed at one
``cache_dir`` all share profiles.  Design points:

* **One file per entry.**  The file name is the SHA-256 of the versioned
  key, so lookups are a single ``stat``/read and concurrent writers
  never contend on a shared index.
* **Atomic writes.**  Entries are written to a unique temporary file in
  the same directory and published with :func:`os.replace`, so readers
  (including readers in other processes) see either the old entry or the
  new one, never a torn write.
* **Versioned, self-verifying payloads.**  Each payload records the
  cache schema version and the full key it was stored under; reads
  verify both, so entries written by an incompatible schema (or the
  astronomically unlikely hash collision) are treated as misses and
  deleted instead of served stale.  The *key* already folds in the
  estimator settings and measure-registry fingerprints (see
  ``QualityEstimator.cache_key``), so changing simulation settings can
  never hit an entry computed under different ones.
* **Corruption tolerance.**  A truncated, garbled or unreadable entry is
  counted in ``stats.invalid``, removed best-effort, and reported as a
  miss -- a damaged cache directory degrades to a cold cache, it never
  raises into a planning run.
* **Size-capped LRU eviction.**  With ``max_bytes`` set, every publish
  sweeps the directory and deletes least-recently-*used* entries (hits
  refresh the file mtime) until the total size fits.  Long-running
  *servers* can move that sweep off the write path entirely:
  :meth:`start_background_eviction` runs it on an opt-in daemon thread
  at a fixed interval instead (the in-line sweep stays the default for
  library use, where the process may exit at any time).
* **Optional write batching.**  With :attr:`batch_writes` enabled, puts
  accumulate in memory and :meth:`flush` publishes them in one pass with
  a single eviction sweep -- the parallel evaluator turns this on for
  the duration of a process-pool stream and flushes on pool teardown.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.cache.backend import CacheStats, observe_get_many

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.quality.composite import QualityProfile

#: Version of the on-disk entry layout.  Folded into the hashed file name
#: *and* recorded inside every payload: bumping it makes every existing
#: entry invisible (new hashes) and unreadable-as-stale (version check),
#: so schema changes can never serve stale profiles.
CACHE_SCHEMA_VERSION = 1

_ENTRY_SUFFIX = ".profile.pkl"

#: The shape of a :func:`key_digest` value.  Digest-addressed lookups
#: validate against this before building a file path, so a caller-
#: supplied "digest" containing ``/`` or ``..`` (e.g. from an
#: unauthenticated cache-service client) can never name a file outside
#: ``cache_dir``.
_DIGEST_RE = re.compile(r"[0-9a-f]{64}")


def key_digest(key: tuple) -> str:
    """The hashed identity of a versioned cache key (hex SHA-256).

    This is the disk tier's file-name digest, exported because it is
    also the *wire identity* of an entry in the cache service protocol:
    HTTP clients hash their keys locally and send only the digest, so
    the multi-kilobyte flow fingerprints never cross the network on the
    lookup path, and a cache server fronting a ``cache_dir`` addresses
    exactly the same files a local planner would.
    """
    return hashlib.sha256(repr((CACHE_SCHEMA_VERSION, key)).encode("utf-8")).hexdigest()


class DiskProfileCache:
    """A persistent, process-shared profile cache rooted at a directory.

    Parameters
    ----------
    cache_dir:
        Directory holding the entries; created (with parents) on first
        use.  Point several planners/processes at the same directory to
        share profiles between them.
    max_bytes:
        Optional cap on the total size of the entry files; exceeding it
        evicts least-recently-used entries.  ``None`` means unbounded.
    batch_writes:
        When true, :meth:`put` buffers entries in memory and only
        :meth:`flush` publishes them to disk.  Buffered entries are
        still served by :meth:`get` / ``in`` of this instance.
    """

    def __init__(
        self,
        cache_dir: str | os.PathLike,
        max_bytes: int | None = None,
        batch_writes: bool = False,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be at least 1 (or None for unbounded)")
        self.cache_dir = Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.batch_writes = batch_writes
        self.stats = CacheStats()
        # Observability only; not pickled -- the handle clone re-attaches
        # its own registry (or none).
        self.metrics_registry = registry
        self._pending: dict[tuple, QualityProfile] = {}
        self._lock = threading.Lock()
        # Write-batch refcount (begin/end_write_batch): how many streams
        # currently own a batching scope, and what to restore at zero.
        self._batch_depth = 0
        self._configured_batch_writes = batch_writes
        # In-line eviction is the default; start_background_eviction()
        # hands the sweep to a daemon thread instead (server mode).
        self._sweep_inline = True
        self._sweeper: threading.Thread | None = None
        self._sweeper_stop: threading.Event | None = None

    # ------------------------------------------------------------------
    # Key -> file mapping
    # ------------------------------------------------------------------

    def _path(self, key: tuple) -> Path:
        return self.cache_dir / f"{key_digest(key)}{_ENTRY_SUFFIX}"

    def _entry_files(self) -> list[Path]:
        try:
            return [p for p in self.cache_dir.iterdir() if p.name.endswith(_ENTRY_SUFFIX)]
        except OSError:
            return []

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------

    def get(self, key: tuple) -> QualityProfile | None:
        """Look up a profile, counting the hit or miss.

        A hit refreshes the entry's mtime so size-capped eviction is
        least-recently-*used*, not least-recently-written.
        """
        with self._lock:
            pending = self._pending.get(key)
            if pending is not None:
                self.stats.hits += 1
                return pending
            profile = self._read(key)
            if profile is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            return profile

    def _count_invalid(self) -> None:
        """One damaged entry: counted in stats and mirrored to metrics."""
        self.stats.invalid += 1
        if self.metrics_registry is not None:
            self.metrics_registry.counter("cache.disk.invalid").inc()

    def _read(self, key: tuple) -> QualityProfile | None:
        """Read and verify one entry; invalid entries are dropped, not raised."""
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return None  # absent (or unreadable, which amounts to the same)
        try:
            payload = pickle.loads(raw)
            version = payload["version"]
            stored_key = payload["key"]
            profile = payload["profile"]
        except Exception:
            # Truncated write, garbage bytes, unpicklable class, wrong
            # payload shape: degrade to a miss and drop the entry.
            self._count_invalid()
            self._discard(path)
            return None
        if version != CACHE_SCHEMA_VERSION or stored_key != key:
            self._count_invalid()
            self._discard(path)
            return None
        try:
            os.utime(path)
        except OSError:
            pass  # a concurrent eviction won the race; the hit still counts
        return profile

    def get_many(self, keys: Sequence[tuple]) -> list["QualityProfile | None"]:
        """Batched lookup: one locked pass over pending buffer and files."""
        start = time.perf_counter()
        with self._lock:
            results: list[QualityProfile | None] = []
            for key in keys:
                pending = self._pending.get(key)
                if pending is not None:
                    self.stats.hits += 1
                    results.append(pending)
                    continue
                profile = self._read(key)
                if profile is None:
                    self.stats.misses += 1
                else:
                    self.stats.hits += 1
                results.append(profile)
        observe_get_many(
            self.metrics_registry, "disk", time.perf_counter() - start, results
        )
        return results

    def get_by_digest(self, digest: str) -> "tuple[tuple, QualityProfile] | None":
        """Look up one entry by its :func:`key_digest` (the service fast path).

        Returns ``(stored_key, profile)`` so callers holding only the
        digest (a cache server) can promote or re-index the entry.
        Counts one hit or miss.  Trust model: :meth:`_write` derives the
        file name from the key inside the payload, so an intact,
        version-matching entry at ``<digest>.profile.pkl`` is the entry
        for that digest by construction -- the full stored-key
        comparison of the keyed path is replaced by the write invariant
        plus the unpickle/version integrity checks.
        """
        with self._lock:
            if not isinstance(digest, str) or _DIGEST_RE.fullmatch(digest) is None:
                self.stats.misses += 1
                return None
            if self._pending:
                for key, profile in self._pending.items():
                    if key_digest(key) == digest:
                        self.stats.hits += 1
                        return key, profile
            path = self.cache_dir / f"{digest}{_ENTRY_SUFFIX}"
            try:
                raw = path.read_bytes()
            except OSError:
                self.stats.misses += 1
                return None
            try:
                payload = pickle.loads(raw)
                version = payload["version"]
                stored_key = payload["key"]
                profile = payload["profile"]
            except Exception:
                self._count_invalid()
                self.stats.misses += 1
                self._discard(path)
                return None
            if version != CACHE_SCHEMA_VERSION:
                self._count_invalid()
                self.stats.misses += 1
                self._discard(path)
                return None
            try:
                os.utime(path)
            except OSError:
                pass  # a concurrent eviction won the race; the hit still counts
            self.stats.hits += 1
            return stored_key, profile

    def put(self, key: tuple, profile: QualityProfile) -> None:
        """Insert (or refresh) a profile; does not affect hit/miss counts."""
        with self._lock:
            if self.batch_writes:
                self._pending[key] = profile
                return
            self._write(key, profile)
            if self._sweep_inline:
                self._evict_to_cap()

    def flush(self) -> None:
        """Publish buffered entries in one pass (single eviction sweep)."""
        with self._lock:
            if not self._pending:
                return
            for key, profile in self._pending.items():
                self._write(key, profile)
            self._pending.clear()
            if self._sweep_inline:
                self._evict_to_cap()

    def begin_write_batch(self) -> None:
        """Enter a batching scope (refcounted; see :meth:`end_write_batch`).

        The parallel evaluator brackets each evaluation stream with
        begin/end instead of toggling :attr:`batch_writes` directly, so
        *concurrent* streams over one shared cache (the redesign
        service's worker pool) compose: writes stay buffered until the
        last stream ends its scope, rather than whichever stream
        finishes first silently switching everyone back to inline
        publishing.
        """
        with self._lock:
            self._batch_depth += 1
            self.batch_writes = True

    def end_write_batch(self) -> None:
        """Leave a batching scope, restoring the configured mode at zero."""
        with self._lock:
            self._batch_depth = max(0, self._batch_depth - 1)
            if self._batch_depth == 0:
                self.batch_writes = self._configured_batch_writes

    def _write(self, key: tuple, profile: QualityProfile) -> None:
        payload = {"version": CACHE_SCHEMA_VERSION, "key": key, "profile": profile}
        path = self._path(key)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
        try:
            tmp.write_bytes(pickle.dumps(payload))
            os.replace(tmp, path)
        except OSError:
            # A full/read-only disk degrades the cache to write-through
            # failure, never a planning failure.
            self._discard(tmp)

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Size-capped eviction
    # ------------------------------------------------------------------

    def _evict_to_cap(self) -> None:
        if self.max_bytes is None:
            return
        entries: list[tuple[float, int, Path]] = []
        total = 0
        for path in self._entry_files():
            try:
                stat = path.stat()
            except OSError:
                continue  # concurrently evicted by another process
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        entries.sort()  # oldest mtime first == least recently used
        for _, size, path in entries:
            if total <= self.max_bytes:
                break
            self._discard(path)
            self.stats.evictions += 1
            total -= size

    # ------------------------------------------------------------------
    # Background eviction (server mode)
    # ------------------------------------------------------------------

    def start_background_eviction(self, interval: float = 30.0) -> None:
        """Move the size-cap sweep off the write path onto a daemon thread.

        Opt-in, meant for long-running cache *servers* fronting a large
        store: with the sweeper running, ``put``/``flush`` publish
        without scanning the directory, and the sweep runs every
        ``interval`` seconds instead.  The store may transiently exceed
        ``max_bytes`` between sweeps -- that is the trade.  In-line
        eviction (the default) is restored by
        :meth:`stop_background_eviction`.
        """
        if interval <= 0:
            raise ValueError("interval must be positive (seconds)")
        with self._lock:
            if self._sweeper is not None:
                raise RuntimeError("background eviction is already running")
            self._sweep_inline = False
            self._sweeper_stop = threading.Event()
            self._sweeper = threading.Thread(
                target=self._sweep_loop,
                args=(interval, self._sweeper_stop),
                name="repro-cache-sweeper",
                daemon=True,
            )
            self._sweeper.start()

    def stop_background_eviction(self, final_sweep: bool = True) -> None:
        """Stop the sweeper thread and restore in-line eviction.

        ``final_sweep`` (the default) runs one last sweep so the store
        is back under ``max_bytes`` when the method returns.  A no-op if
        the sweeper is not running.
        """
        with self._lock:
            thread, stop = self._sweeper, self._sweeper_stop
            self._sweeper = None
            self._sweeper_stop = None
            self._sweep_inline = True
        if thread is not None and stop is not None:
            stop.set()
            thread.join(timeout=5.0)
        if final_sweep:
            with self._lock:
                self._evict_to_cap()

    def _sweep_loop(self, interval: float, stop: threading.Event) -> None:
        while not stop.wait(interval):
            with self._lock:
                self._evict_to_cap()

    # ------------------------------------------------------------------
    # Maintenance / introspection
    # ------------------------------------------------------------------

    def clear(self) -> None:
        """Drop every entry (pending and on disk) and reset the statistics."""
        with self._lock:
            self._pending.clear()
            for path in self._entry_files():
                self._discard(path)
            self.stats = CacheStats()

    def size_bytes(self) -> int:
        """Total size of the on-disk entries (excludes the pending buffer)."""
        total = 0
        for path in self._entry_files():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def tier_stats(self) -> dict[str, dict[str, float]]:
        """Per-tier statistics (a single ``"disk"`` tier)."""
        return {"disk": self.stats.as_dict()}

    def __len__(self) -> int:
        with self._lock:
            on_disk = self._entry_files()
            extra = sum(1 for key in self._pending if not self._path(key).exists())
            return len(on_disk) + extra

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._pending or self._path(key).exists()

    # ------------------------------------------------------------------
    # Pickling: a disk cache is a *handle*; the clone re-opens the same
    # directory with a fresh lock and an empty write buffer.  Stats
    # round-trip (consistent with the in-memory tier).
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict[str, object]:
        return {
            "cache_dir": str(self.cache_dir),
            "max_bytes": self.max_bytes,
            "batch_writes": self.batch_writes,
            "stats": self.stats,
        }

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__init__(  # type: ignore[misc]
            state["cache_dir"],
            max_bytes=state.get("max_bytes"),
            batch_writes=bool(state.get("batch_writes", False)),
        )
        stats = state.get("stats")
        if stats is not None:
            self.stats = stats  # type: ignore[assignment]
