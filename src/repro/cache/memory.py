"""The in-memory LRU profile-cache tier.

This is the original ``ProfileCache`` of the streaming pipeline (PR 1),
relocated from :mod:`repro.quality.estimator` when the
:class:`~repro.cache.backend.CacheBackend` protocol was extracted; the
old import path still works (the estimator module re-exports it).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Sequence

from repro.cache.backend import CacheStats, observe_get_many

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.quality.composite import QualityProfile


class ProfileCache:
    """A bounded, thread-safe memo of quality profiles keyed by flow fingerprint.

    The default (and fastest) cache tier: entries live in this process
    only and die with it.  Shared by the full and the static (screening)
    estimators of a planner and across the iterations of a redesign
    session.  Lookups are counted in :attr:`stats`; entries are evicted
    least-recently-used when ``max_entries`` is set.

    Pickling contract
    -----------------
    The cache pickles as an *entry-less* cache: the memo and the lock
    are dropped, but ``max_entries`` and the accumulated :attr:`stats`
    survive the round-trip.  Process-pool workers therefore receive a
    blank but fully functional memo (the parent re-inserts their
    results, so no entry is lost and nothing large crosses the process
    boundary), while hit/miss accounting is never silently zeroed by a
    transfer.
    """

    def __init__(
        self,
        max_entries: int | None = None,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be at least 1 (or None for unbounded)")
        self.max_entries = max_entries
        self.stats = CacheStats()
        # Observability only; dropped on pickling like the lock (the
        # registry itself travels as a handle, but an entry-less worker
        # copy should not double-report the memory tier).
        self.metrics_registry = registry
        self._entries: OrderedDict[tuple, QualityProfile] = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def get(self, key: tuple) -> QualityProfile | None:
        """Look up a profile, counting the hit or miss."""
        with self._lock:
            profile = self._entries.get(key)
            if profile is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return profile

    def get_many(self, keys: Sequence[tuple]) -> list["QualityProfile | None"]:
        """Batched lookup under a single lock acquisition."""
        start = time.perf_counter()
        with self._lock:
            results: list[QualityProfile | None] = []
            for key in keys:
                profile = self._entries.get(key)
                if profile is None:
                    self.stats.misses += 1
                else:
                    self._entries.move_to_end(key)
                    self.stats.hits += 1
                results.append(profile)
        observe_get_many(
            self.metrics_registry, "memory", time.perf_counter() - start, results
        )
        return results

    def put(self, key: tuple, profile: QualityProfile) -> None:
        """Insert (or refresh) a profile; does not affect hit/miss counts."""
        with self._lock:
            self._entries[key] = profile
            self._entries.move_to_end(key)
            if self.max_entries is not None:
                while len(self._entries) > self.max_entries:
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1

    def flush(self) -> None:
        """No-op: in-memory writes are always synchronous."""

    def drain(self) -> list[tuple[tuple, "QualityProfile"]]:
        """Remove and return every entry, *keeping* the statistics.

        Unlike :meth:`clear` (drop everything, reset accounting), this
        hands the contents over for re-publication elsewhere -- the
        network tier uses it to push fallback entries back to a
        recovered cache server without losing the fallback's hit/miss
        history.
        """
        with self._lock:
            entries = list(self._entries.items())
            self._entries.clear()
        return entries

    def clear(self) -> None:
        """Drop every entry and reset the statistics."""
        with self._lock:
            self._entries.clear()
            self.stats = CacheStats()

    def tier_stats(self) -> dict[str, dict[str, float]]:
        """Per-tier statistics (a single ``"memory"`` tier)."""
        return {"memory": self.stats.as_dict()}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            return key in self._entries

    # ------------------------------------------------------------------
    # Pickling (process-pool workers must not drag the memo or the lock;
    # the stats DO round-trip -- see the class docstring)
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict[str, object]:
        return {"max_entries": self.max_entries, "stats": self.stats}

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__init__(max_entries=state.get("max_entries"))  # type: ignore[misc]
        stats = state.get("stats")
        if stats is not None:
            self.stats = stats  # type: ignore[assignment]
