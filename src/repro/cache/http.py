"""The network (HTTP) profile-cache tier.

:class:`HTTPProfileCache` implements the :class:`~repro.cache.backend.CacheBackend`
protocol on top of a remote cache service (:class:`repro.service.CacheServer`)
so that a *fleet* of planners -- separate processes, separate machines --
can share one profile store without mounting a common ``cache_dir``.
Selected by ``ProcessingConfiguration.cache_tier="http"`` with the server
address in ``cache_url`` and the per-request budget in ``cache_timeout``.

Design points, mirroring the disk tier where the analogy holds:

* **JSON wire format, digests on the hot path.**  Lookups send only the
  :func:`~repro.cache.key_digest` of each key (the disk tier's file-name
  hash, computed client-side), because the keys themselves are
  multi-kilobyte flow fingerprints; writes carry the full keys (restored
  server-side by :func:`repro.io.jsonflow.cache_key_from_jsonable`) so
  on-disk entries stay self-verifying.  Profiles travel as
  :func:`repro.io.jsonflow.profile_to_dict` documents; the round-trip is
  exact, so the tier-equivalence property (identical planning results
  across tiers) holds over the network too.
* **Client-side write batching.**  ``put`` always buffers; ``flush``
  publishes the buffer in a single ``POST /put`` -- the same discipline
  the parallel evaluator already applies to the disk tier, so a planning
  stream costs one round-trip per campaign, not one per stored profile.
  Buffered entries are served by ``get``/``in`` of this instance.
* **Batched lookups.**  :meth:`get_many` resolves a whole evaluation
  chunk in one ``POST /get_many`` round-trip (the per-task read-through
  of process-pool workers uses this).
* **Graceful degradation.**  A server that is unreachable, times out or
  misbehaves *never* fails a plan: the first failure is logged once
  (``repro.cache.http`` logger), pending writes move into a local
  in-memory fallback tier, and every later operation is served locally.
  The plan completes with identical results -- cache tiers trade
  wall-clock, never correctness.
* **Pickling.**  Like the disk tier, the client is a *handle*: a clone
  re-opens the same URL with a fresh buffer and a fresh (non-degraded)
  connection state, while the accumulated hit/miss statistics survive
  the round-trip.  Process-pool workers therefore get read-through to
  the shared server.
"""

from __future__ import annotations

import http.client
import json
import logging
import threading
import urllib.error
import urllib.request
from typing import TYPE_CHECKING, Sequence

from repro.cache.backend import CacheStats
from repro.cache.disk import key_digest
from repro.cache.memory import ProfileCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.quality.composite import QualityProfile

logger = logging.getLogger("repro.cache.http")

#: Default per-request budget, in seconds (``ProcessingConfiguration.cache_timeout``).
DEFAULT_TIMEOUT = 5.0


class HTTPProfileCache:
    """A profile-cache tier served by a remote :class:`~repro.service.CacheServer`.

    Parameters
    ----------
    url:
        Base URL of the cache service, e.g. ``"http://127.0.0.1:8731"``.
    timeout:
        Per-request timeout in seconds; a request exceeding it degrades
        the client to its local fallback tier (it never raises).
    fallback_max_entries:
        Optional LRU bound on the local in-memory tier used after
        degradation (``None`` = unbounded, matching the default
        ``ProfileCache``).
    """

    def __init__(
        self,
        url: str,
        timeout: float = DEFAULT_TIMEOUT,
        fallback_max_entries: int | None = None,
    ) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive (seconds)")
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.stats = CacheStats()
        self.fallback = ProfileCache(max_entries=fallback_max_entries)
        self._fallback_max_entries = fallback_max_entries
        self._pending: dict[tuple, QualityProfile] = {}
        self._degraded = False
        self._lock = threading.Lock()

    #: Puts always buffer until :meth:`flush` -- advertised so the
    #: parallel evaluator does not layer its own batching on top (the
    #: same attribute the disk tier exposes).
    batch_writes = True

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------

    def _request(self, path: str, payload: dict | None = None) -> dict | None:
        """One JSON round-trip; ``None`` (after degrading) on any failure."""
        if self._degraded:
            return None
        # Everything from serialising the payload (TypeError on a key a
        # client somehow made non-JSON-able) to a misbehaving server
        # (http.client.BadStatusLine is an HTTPException, not an
        # OSError) degrades -- a cache failure must never fail a plan.
        try:
            if payload is None:
                request = urllib.request.Request(self.url + path, method="GET")
            else:
                request = urllib.request.Request(
                    self.url + path,
                    data=json.dumps(payload).encode("utf-8"),
                    headers={"Content-Type": "application/json"},
                    method="POST",
                )
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                parsed = json.loads(response.read().decode("utf-8"))
            if not isinstance(parsed, dict):
                raise ValueError(
                    f"expected a JSON object response, got {type(parsed).__name__}"
                )
            return parsed
        except (
            urllib.error.URLError,
            http.client.HTTPException,
            OSError,
            ValueError,
            TypeError,
        ) as exc:
            self._degrade(exc)
            return None

    def _degrade(self, exc: Exception) -> None:
        """Switch permanently to the local fallback tier, logging once."""
        with self._lock:
            if self._degraded:
                return
            self._degraded = True
            pending = dict(self._pending)
            self._pending.clear()
        # Outside the lock: ProfileCache.put takes its own lock.
        for key, profile in pending.items():
            self.fallback.put(key, profile)
        logger.warning(
            "profile cache server %s unreachable (%s); falling back to a local "
            "in-memory tier for the rest of this process",
            self.url,
            exc,
        )

    @property
    def degraded(self) -> bool:
        """Whether the client has fallen back to its local memory tier."""
        return self._degraded

    # ------------------------------------------------------------------
    # CacheBackend protocol
    # ------------------------------------------------------------------

    def get(self, key: tuple) -> QualityProfile | None:
        """Look up a profile (pending buffer, then server, then fallback)."""
        return self.get_many([key])[0]

    def get_many(self, keys: Sequence[tuple]) -> list["QualityProfile | None"]:
        """Batched lookup: one round-trip for every key not buffered locally.

        Keys are hashed locally (:func:`repro.cache.key_digest`) and
        only the digests travel, so looking up a whole evaluation window
        moves a few bytes per profile.  Counts exactly one hit or miss
        per key, whichever side served it.
        """
        from repro.io.jsonflow import profile_from_dict

        results: list[QualityProfile | None] = [None] * len(keys)
        remote: list[int] = []
        with self._lock:
            for index, key in enumerate(keys):
                pending = self._pending.get(key)
                if pending is not None:
                    results[index] = pending
                else:
                    remote.append(index)
        if remote:
            # Check degradation before hashing: once fallen back there is
            # no point computing SHA-256 digests of multi-kilobyte keys
            # just for _request to return None.
            response = (
                self._request(
                    "/get_many",
                    {"digests": [key_digest(keys[index]) for index in remote]},
                )
                if not self._degraded
                else None
            )
            if response is not None:
                try:
                    profiles = response.get("profiles")
                    if not isinstance(profiles, list) or len(profiles) != len(remote):
                        raise ValueError(
                            f"expected {len(remote)} profile documents in the "
                            "response, got "
                            + (
                                str(len(profiles))
                                if isinstance(profiles, list)
                                else type(profiles).__name__
                            )
                        )
                    decoded = [
                        (profile_from_dict(entry) if entry else None, index)
                        for index, entry in zip(remote, profiles)
                    ]
                except (KeyError, TypeError, ValueError, AttributeError) as exc:
                    # A 200 carrying non-profile documents is as
                    # misbehaving as a dead socket: degrade rather than
                    # raise into the plan.
                    self._degrade(exc)
                    response = None
                else:
                    for profile, index in decoded:
                        results[index] = profile
            if response is None:
                # Degraded (now or earlier): the local tier answers, and
                # its own stats record the fallback traffic.
                for index in remote:
                    results[index] = self.fallback.get(keys[index])
        with self._lock:
            for profile in results:
                if profile is None:
                    self.stats.misses += 1
                else:
                    self.stats.hits += 1
        return results

    def put(self, key: tuple, profile: QualityProfile) -> None:
        """Buffer an insert; :meth:`flush` publishes the buffer in one batch.

        The degraded check happens under the same lock :meth:`_degrade`
        drains the buffer with, so a put racing with the degradation can
        never strand an entry in a buffer nothing will ever flush.
        """
        with self._lock:
            if not self._degraded:
                self._pending[key] = profile
                return
        self.fallback.put(key, profile)

    def flush(self) -> None:
        """Publish every buffered entry to the server in a single request."""
        from repro.io.jsonflow import profile_to_dict

        with self._lock:
            if not self._pending:
                return
            batch = dict(self._pending)
            if self._degraded:  # pragma: no cover - put/degrade race window
                self._pending.clear()
        if self._degraded:
            for key, profile in batch.items():
                self.fallback.put(key, profile)
            return
        response = self._request(
            "/put",
            {
                "entries": [
                    {"key": key, "profile": profile_to_dict(profile)}
                    for key, profile in batch.items()
                ]
            },
        )
        if response is not None:
            with self._lock:
                # Only drop what was sent; puts racing with the request stay.
                for key in batch:
                    self._pending.pop(key, None)
        # On failure _degrade already moved the buffer into the fallback.

    def clear(self) -> None:
        """Drop the buffer, the fallback and (best-effort) the server store."""
        with self._lock:
            self._pending.clear()
            self.stats = CacheStats()
        self.fallback.clear()
        self._request("/clear", {})

    def tier_stats(self) -> dict[str, dict[str, float]]:
        """Client, server and fallback breakdowns.

        ``"http"`` is this client's logical accounting (one hit or miss
        per lookup, whichever side served it), ``"server"`` the remote
        backend's own counters (fetched best-effort; omitted when the
        server is unreachable), and ``"fallback"`` the local tier that
        serves after degradation.
        """
        tiers: dict[str, dict[str, float]] = {}
        with self._lock:
            tiers["http"] = self.stats.as_dict()
        response = self._request("/stats")
        if response is not None and "stats" in response:
            tiers["server"] = response["stats"]
        tiers["fallback"] = self.fallback.stats.as_dict()
        return tiers

    def __len__(self) -> int:
        """Entry count: server entries plus unflushed buffer (approximate
        across the flush boundary), or the fallback after degradation."""
        response = self._request("/stats")
        with self._lock:
            pending = len(self._pending)
        if response is None:
            return len(self.fallback) + pending
        return int(response.get("entries", 0)) + pending

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            if key in self._pending:
                return True
        response = self._request("/contains", {"digest": key_digest(key)})
        if response is None:
            return key in self.fallback
        return bool(response.get("contains", False))

    # ------------------------------------------------------------------
    # Pickling: a handle onto the same server -- fresh buffer, fresh
    # connection state (a degraded parent does not doom its clones), the
    # statistics round-trip (consistent with the other tiers).
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict[str, object]:
        return {
            "url": self.url,
            "timeout": self.timeout,
            "fallback_max_entries": self._fallback_max_entries,
            "stats": self.stats,
        }

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__init__(  # type: ignore[misc]
            state["url"],
            timeout=state.get("timeout", DEFAULT_TIMEOUT),
            fallback_max_entries=state.get("fallback_max_entries"),
        )
        stats = state.get("stats")
        if stats is not None:
            self.stats = stats  # type: ignore[assignment]
