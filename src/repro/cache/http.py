"""The network (HTTP) profile-cache tier.

:class:`HTTPProfileCache` implements the :class:`~repro.cache.backend.CacheBackend`
protocol on top of a remote cache service (:class:`repro.service.CacheServer`)
so that a *fleet* of planners -- separate processes, separate machines --
can share one profile store without mounting a common ``cache_dir``.
Selected by ``ProcessingConfiguration.cache_tier="http"`` with the server
address in ``cache_url`` and the per-request budget in ``cache_timeout``.

Design points, mirroring the disk tier where the analogy holds:

* **JSON wire format, digests on the hot path.**  Lookups send only the
  :func:`~repro.cache.key_digest` of each key (the disk tier's file-name
  hash, computed client-side), because the keys themselves are
  multi-kilobyte flow fingerprints; writes carry the full keys (restored
  server-side by :func:`repro.io.jsonflow.cache_key_from_jsonable`) so
  on-disk entries stay self-verifying.  Profiles travel as
  :func:`repro.io.jsonflow.profile_to_dict` documents; the round-trip is
  exact, so the tier-equivalence property (identical planning results
  across tiers) holds over the network too.
* **Pooled keep-alive connections.**  Requests ride the per-thread
  persistent connections of :class:`repro.wire.PooledJSONClient`: the
  TCP handshake is paid once per thread, a keep-alive socket that went
  stale while idle (server restart) is replaced and the request retried
  exactly once, and protocol garbage is never retried.  Large bodies
  are gzip-compressed transparently (``compression`` knob).
* **Client-side write batching.**  ``put`` buffers; ``flush`` publishes
  the buffer in a single ``POST /put`` -- the same discipline the
  parallel evaluator already applies to the disk tier, so a planning
  stream costs one round-trip per campaign, not one per stored profile.
  A campaign that outgrows ``max_pending`` buffered entries publishes
  early (memory stays bounded on flows that never flush).  Buffered
  entries are served by ``get``/``in`` of this instance.
* **Batched lookups.**  :meth:`get_many` resolves a whole evaluation
  chunk in one ``POST /get_many`` round-trip (the per-task read-through
  of process-pool workers uses this).
* **Graceful degradation, with recovery.**  A server that is
  unreachable, times out or misbehaves *never* fails a plan: the first
  failure is logged once (``repro.cache.http`` logger), pending writes
  move into a local in-memory fallback tier, and operations are served
  locally.  A degraded client then probes ``GET /health`` on an
  exponential-backoff timer (``recovery_interval``; doubling up to
  16x); when the server answers again the client re-attaches,
  republishes everything the fallback accumulated in one batch, and
  the server wins traffic back -- no process restart needed.  Plans
  complete with identical results throughout: cache tiers trade
  wall-clock, never correctness.
* **Observability never degrades.**  :meth:`tier_stats` and
  :meth:`__len__` are read-only monitoring surfaces: a failed ``/stats``
  poll returns the local view *without* flipping the client into
  fallback mode -- a monitoring scrape must never downgrade the hot
  path.
* **Authentication fails loudly.**  With the server started under a
  shared token, a client holding the wrong one gets ``401`` -- surfaced
  as :class:`CacheAuthError`, *not* silent local fallback: running an
  entire campaign cold because of a misconfigured token is exactly the
  failure an operator wants to see immediately.
* **Pickling.**  Like the disk tier, the client is a *handle*: a clone
  re-opens the same URL with a fresh buffer and a fresh (non-degraded)
  connection pool, while the accumulated hit/miss statistics survive
  the round-trip.  Process-pool workers therefore get read-through to
  the shared server.
"""

from __future__ import annotations

import http.client
import logging
import threading
import time
from typing import TYPE_CHECKING, Sequence

from repro.cache.backend import CacheStats, observe_get_many
from repro.cache.disk import key_digest
from repro.cache.memory import ProfileCache
from repro.wire import COMPRESS_MIN_BYTES, PooledJSONClient, WireError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.quality.composite import QualityProfile

logger = logging.getLogger("repro.cache.http")

#: Default per-request budget, in seconds (``ProcessingConfiguration.cache_timeout``).
DEFAULT_TIMEOUT = 5.0

#: Default first recovery-probe delay, in seconds
#: (``ProcessingConfiguration.cache_recovery_interval``).
DEFAULT_RECOVERY_INTERVAL = 5.0

#: Default bound on the unflushed write buffer
#: (``ProcessingConfiguration.cache_max_pending``).
DEFAULT_MAX_PENDING = 1024

#: The probe delay doubles after each failed probe, up to this multiple
#: of ``recovery_interval``.
RECOVERY_BACKOFF_CAP = 16


class CacheAuthError(RuntimeError):
    """The cache server rejected this client's token (HTTP 401).

    Deliberately *not* handled by degradation: an auth failure is
    deterministic misconfiguration, and silently running a whole fleet
    on cold local caches would hide it.  Fix the token
    (``cache_auth_token`` / the server's ``--auth-token``) instead.
    """


class HTTPProfileCache:
    """A profile-cache tier served by a remote :class:`~repro.service.CacheServer`.

    Parameters
    ----------
    url:
        Base URL of the cache service, e.g. ``"http://127.0.0.1:8731"``.
    timeout:
        Per-request timeout in seconds; a request exceeding it degrades
        the client to its local fallback tier (it never raises).
    fallback_max_entries:
        Optional LRU bound on the local in-memory tier used after
        degradation (``None`` = unbounded, matching the default
        ``ProfileCache``).
    compression:
        Gzip request bodies at/above ``compress_min_bytes`` and accept
        compressed responses (``ProcessingConfiguration.cache_compression``).
    compress_min_bytes:
        Size threshold of the request compressor.
    auth_token:
        Shared token sent as ``Authorization: Bearer <token>``
        (``ProcessingConfiguration.cache_auth_token``); a ``401``
        raises :class:`CacheAuthError` instead of degrading.
    recovery_interval:
        First recovery-probe delay after degradation, in seconds; the
        delay doubles per failed probe up to 16x.  ``None`` disables
        probing (degradation is then permanent for the process, the
        pre-overhaul behaviour).
    max_pending:
        Auto-publish the write buffer once it holds this many entries
        (campaigns below it keep the one-round-trip-per-campaign
        discipline).
    pool:
        ``False`` tears the connection down after every request -- the
        per-request TCP behaviour the wire benchmark compares against.
    """

    def __init__(
        self,
        url: str,
        timeout: float = DEFAULT_TIMEOUT,
        fallback_max_entries: int | None = None,
        compression: bool = True,
        compress_min_bytes: int = COMPRESS_MIN_BYTES,
        auth_token: str | None = None,
        recovery_interval: float | None = DEFAULT_RECOVERY_INTERVAL,
        max_pending: int = DEFAULT_MAX_PENDING,
        pool: bool = True,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive (seconds)")
        if recovery_interval is not None and recovery_interval <= 0:
            raise ValueError("recovery_interval must be positive seconds (or None)")
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.stats = CacheStats()
        # Observability only (client-side view of the network tier); not
        # pickled -- handle clones come back with ``registry=None``.
        self.metrics_registry = registry
        self.fallback = ProfileCache(max_entries=fallback_max_entries)
        self._fallback_max_entries = fallback_max_entries
        self.recovery_interval = recovery_interval
        self.max_pending = max_pending
        self._client = PooledJSONClient(
            self.url,
            timeout,
            compression=compression,
            compress_min_bytes=compress_min_bytes,
            auth_token=auth_token,
            keep_alive=pool,
        )
        # The transport mirrors wire.* byte counters into the same
        # registry (compression ratio = raw_bytes / bytes on the wire).
        self._client.metrics_registry = registry
        self._pending: dict[tuple, QualityProfile] = {}
        self._degraded = False
        self._closed = False
        self._probe_timer: threading.Timer | None = None
        self._probe_interval = recovery_interval or 0.0
        self._recoveries = 0
        self._lock = threading.Lock()

    #: Puts always buffer until :meth:`flush` -- advertised so the
    #: parallel evaluator does not layer its own batching on top (the
    #: same attribute the disk tier exposes).
    batch_writes = True

    # ------------------------------------------------------------------
    # Wire helpers
    # ------------------------------------------------------------------

    def _request(
        self, path: str, payload: dict | None = None, *, best_effort: bool = False
    ) -> dict | None:
        """One JSON round-trip; ``None`` on any failure.

        Hot-path calls degrade the client on failure (the local
        fallback serves from then on); ``best_effort`` calls -- the
        read-only observability surfaces -- just return ``None``, so a
        failed monitoring poll can never downgrade planning traffic.
        A ``401`` always raises :class:`CacheAuthError`.
        """
        if self._degraded:
            return None
        # Everything from serialising the payload (TypeError on a key a
        # client somehow made non-JSON-able) to a misbehaving server
        # (http.client's protocol exceptions are not OSErrors) degrades
        # -- a cache failure must never fail a plan.
        try:
            if payload is None:
                parsed = self._client.request_json("GET", path)
            else:
                parsed = self._client.request_json("POST", path, payload)
            if not isinstance(parsed, dict):
                raise ValueError(
                    f"expected a JSON object response, got {type(parsed).__name__}"
                )
            return parsed
        except WireError as exc:
            if exc.status == 401:
                raise CacheAuthError(
                    f"cache server {self.url} rejected the auth token: {exc.message} "
                    "(set cache_auth_token to the server's --auth-token)"
                ) from None
            if best_effort:
                return None
            self._degrade(exc)
            return None
        except (
            http.client.HTTPException,
            OSError,
            ValueError,
            TypeError,
        ) as exc:
            if best_effort:
                return None
            self._degrade(exc)
            return None

    def _degrade(self, exc: Exception) -> None:
        """Switch to the local fallback tier, logging once per outage.

        With ``recovery_interval`` set, degradation is no longer
        terminal: a backoff timer starts probing ``/health`` and
        re-attaches when the server answers (see :meth:`_probe`).
        """
        with self._lock:
            if self._degraded:
                return
            self._degraded = True
            pending = dict(self._pending)
            self._pending.clear()
        # Outside the lock: ProfileCache.put takes its own lock.
        for key, profile in pending.items():
            self.fallback.put(key, profile)
        logger.warning(
            "profile cache server %s unreachable (%s); falling back to a local "
            "in-memory tier%s",
            self.url,
            exc,
            (
                f" (probing for recovery every {self.recovery_interval:g}s, backing off)"
                if self.recovery_interval is not None
                else " for the rest of this process"
            ),
        )
        if self.recovery_interval is not None:
            self._schedule_probe(self.recovery_interval)

    # ------------------------------------------------------------------
    # Recovery probes
    # ------------------------------------------------------------------

    def _schedule_probe(self, interval: float) -> None:
        with self._lock:
            if self._closed or not self._degraded:
                return
            self._probe_interval = interval
            timer = threading.Timer(interval, self._probe)
            timer.daemon = True
            self._probe_timer = timer
            timer.start()

    def _probe(self) -> None:
        """One recovery attempt (runs on the backoff timer's thread)."""
        if self._closed or not self._degraded:
            return
        try:
            self._client.request_json("GET", "/health")
        except WireError as exc:
            if exc.status == 401:
                # Probing can't fix a bad token; stop and say so.
                logger.error(
                    "cache server %s is back but rejected the auth token (%s); "
                    "staying on the local fallback -- fix cache_auth_token",
                    self.url,
                    exc.message,
                )
                return
            self._schedule_probe(self._next_probe_interval())
        except (http.client.HTTPException, OSError, ValueError):
            self._schedule_probe(self._next_probe_interval())
        else:
            self._reattach()

    def _next_probe_interval(self) -> float:
        cap = (self.recovery_interval or 1.0) * RECOVERY_BACKOFF_CAP
        return min(self._probe_interval * 2, cap)

    def _reattach(self) -> None:
        """Return traffic to a recovered server, republishing the fallback."""
        with self._lock:
            if not self._degraded:
                return
            self._degraded = False
            self._probe_timer = None
            self._recoveries += 1
        entries = self.fallback.drain()
        with self._lock:
            for key, profile in entries:
                self._pending.setdefault(key, profile)
            republished = len(self._pending)
        logger.warning(
            "profile cache server %s is reachable again; re-attached "
            "(republishing %d fallback entr%s)",
            self.url,
            republished,
            "y" if republished == 1 else "ies",
        )
        if republished:
            self.flush()  # a failure here degrades again (timer restarts)

    @property
    def degraded(self) -> bool:
        """Whether the client is currently on its local memory tier."""
        return self._degraded

    @property
    def recoveries(self) -> int:
        """How many times a recovery probe has re-attached the server."""
        return self._recoveries

    def wire_stats(self) -> dict[str, int]:
        """Transport accounting of the pooled connection layer."""
        client = self._client
        return {
            "requests": client.requests,
            "connections_opened": client.connections_opened,
            "reconnects": client.reconnects,
            "compressed_requests": client.compressed_requests,
            "compressed_responses": client.compressed_responses,
            "bytes_sent": client.bytes_sent,
            "bytes_received": client.bytes_received,
            "raw_bytes_sent": client.raw_bytes_sent,
            "raw_bytes_received": client.raw_bytes_received,
            "recoveries": self._recoveries,
        }

    def close(self) -> None:
        """Cancel any recovery probe and drop every pooled connection.

        Idempotent and terminal for the probe timer; buffered writes are
        *not* flushed (call :meth:`flush` first if they should be).
        """
        with self._lock:
            self._closed = True
            timer, self._probe_timer = self._probe_timer, None
        if timer is not None:
            timer.cancel()
        self._client.close()

    # ------------------------------------------------------------------
    # CacheBackend protocol
    # ------------------------------------------------------------------

    def get(self, key: tuple) -> QualityProfile | None:
        """Look up a profile (pending buffer, then server, then fallback)."""
        return self.get_many([key])[0]

    def get_many(self, keys: Sequence[tuple]) -> list["QualityProfile | None"]:
        """Batched lookup: one round-trip for every key not buffered locally.

        Keys are hashed locally (:func:`repro.cache.key_digest`) and
        only the digests travel, so looking up a whole evaluation window
        moves a few bytes per profile.  Counts exactly one hit or miss
        per key, whichever side served it.
        """
        from repro.io.jsonflow import profile_from_dict

        start = time.perf_counter()
        results: list[QualityProfile | None] = [None] * len(keys)
        remote: list[int] = []
        with self._lock:
            for index, key in enumerate(keys):
                pending = self._pending.get(key)
                if pending is not None:
                    results[index] = pending
                else:
                    remote.append(index)
        if remote:
            # Check degradation before hashing: once fallen back there is
            # no point computing SHA-256 digests of multi-kilobyte keys
            # just for _request to return None.
            response = (
                self._request(
                    "/get_many",
                    {"digests": [key_digest(keys[index]) for index in remote]},
                )
                if not self._degraded
                else None
            )
            if response is not None:
                try:
                    profiles = response.get("profiles")
                    if not isinstance(profiles, list) or len(profiles) != len(remote):
                        raise ValueError(
                            f"expected {len(remote)} profile documents in the "
                            "response, got "
                            + (
                                str(len(profiles))
                                if isinstance(profiles, list)
                                else type(profiles).__name__
                            )
                        )
                    decoded = [
                        (profile_from_dict(entry) if entry else None, index)
                        for index, entry in zip(remote, profiles)
                    ]
                except (KeyError, TypeError, ValueError, AttributeError) as exc:
                    # A 200 carrying non-profile documents is as
                    # misbehaving as a dead socket: degrade rather than
                    # raise into the plan.
                    self._degrade(exc)
                    response = None
                else:
                    for profile, index in decoded:
                        results[index] = profile
            if response is None:
                # Degraded (now or earlier): the local tier answers, and
                # its own stats record the fallback traffic.
                for index in remote:
                    results[index] = self.fallback.get(keys[index])
        with self._lock:
            for profile in results:
                if profile is None:
                    self.stats.misses += 1
                else:
                    self.stats.hits += 1
        observe_get_many(
            self.metrics_registry, "http", time.perf_counter() - start, results
        )
        return results

    def put(self, key: tuple, profile: QualityProfile) -> None:
        """Buffer an insert; :meth:`flush` publishes the buffer in one batch.

        The degraded check happens under the same lock :meth:`_degrade`
        drains the buffer with, so a put racing with the degradation can
        never strand an entry in a buffer nothing will ever flush.  A
        buffer reaching ``max_pending`` entries publishes immediately --
        a campaign that never flushes cannot hold every profile it ever
        produced in memory.
        """
        with self._lock:
            if not self._degraded:
                self._pending[key] = profile
                if len(self._pending) < self.max_pending:
                    return
            else:
                self.fallback.put(key, profile)
                return
        self.flush()

    def flush(self) -> None:
        """Publish every buffered entry to the server in a single request."""
        from repro.io.jsonflow import profile_to_dict

        with self._lock:
            if not self._pending:
                return
            batch = dict(self._pending)
            if self._degraded:  # pragma: no cover - put/degrade race window
                self._pending.clear()
        if self._degraded:
            for key, profile in batch.items():
                self.fallback.put(key, profile)
            return
        response = self._request(
            "/put",
            {
                "entries": [
                    {"key": key, "profile": profile_to_dict(profile)}
                    for key, profile in batch.items()
                ]
            },
        )
        if response is not None:
            with self._lock:
                # Only drop what was sent; puts racing with the request stay.
                for key in batch:
                    self._pending.pop(key, None)
        # On failure _degrade already moved the buffer into the fallback.

    def clear(self) -> None:
        """Drop the buffer, the fallback and (best-effort) the server store."""
        with self._lock:
            self._pending.clear()
            self.stats = CacheStats()
        self.fallback.clear()
        self._request("/clear", {})

    def tier_stats(self) -> dict[str, dict[str, float]]:
        """Client, server and fallback breakdowns.

        ``"http"`` is this client's logical accounting (one hit or miss
        per lookup, whichever side served it), ``"server"`` the remote
        backend's own counters (fetched best-effort; omitted when the
        server is unreachable), and ``"fallback"`` the local tier that
        serves after degradation.  Best-effort throughout: a failed
        stats poll never degrades the hot path.
        """
        tiers: dict[str, dict[str, float]] = {}
        with self._lock:
            tiers["http"] = self.stats.as_dict()
        response = self._request("/stats", best_effort=True)
        if response is not None and "stats" in response:
            tiers["server"] = response["stats"]
        tiers["fallback"] = self.fallback.stats.as_dict()
        return tiers

    def __len__(self) -> int:
        """Entry count: server entries plus unflushed buffer (approximate
        across the flush boundary), or the fallback after degradation.
        Best-effort: an unreachable server yields the local count
        without degrading the client."""
        response = self._request("/stats", best_effort=True)
        with self._lock:
            pending = len(self._pending)
        if response is None:
            return len(self.fallback) + pending
        return int(response.get("entries", 0)) + pending

    def __contains__(self, key: tuple) -> bool:
        with self._lock:
            if key in self._pending:
                return True
        response = self._request("/contains", {"digest": key_digest(key)})
        if response is None:
            return key in self.fallback
        return bool(response.get("contains", False))

    # ------------------------------------------------------------------
    # Pickling: a handle onto the same server -- fresh buffer, fresh
    # connection pool (a degraded parent does not doom its clones), the
    # statistics round-trip (consistent with the other tiers).
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict[str, object]:
        return {
            "url": self.url,
            "timeout": self.timeout,
            "fallback_max_entries": self._fallback_max_entries,
            "compression": self._client.compression,
            "compress_min_bytes": self._client.compress_min_bytes,
            "auth_token": self._client.auth_token,
            "recovery_interval": self.recovery_interval,
            "max_pending": self.max_pending,
            "pool": self._client.keep_alive,
            "stats": self.stats,
        }

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__init__(  # type: ignore[misc]
            state["url"],
            timeout=state.get("timeout", DEFAULT_TIMEOUT),
            fallback_max_entries=state.get("fallback_max_entries"),
            compression=state.get("compression", True),
            compress_min_bytes=state.get("compress_min_bytes", COMPRESS_MIN_BYTES),
            auth_token=state.get("auth_token"),
            recovery_interval=state.get("recovery_interval", DEFAULT_RECOVERY_INTERVAL),
            max_pending=state.get("max_pending", DEFAULT_MAX_PENDING),
            pool=state.get("pool", True),
        )
        stats = state.get("stats")
        if stats is not None:
            self.stats = stats  # type: ignore[assignment]
