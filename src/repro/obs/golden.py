"""Golden metrics: the one health definition benchmarks and dashboards share.

Four top-line signals summarise a fleet member (the observability doc
calls them the *golden metrics*): cache hit rate, p50/p99 plan latency,
queue depth and worker liveness.  :func:`golden_metrics` derives them
from a metrics snapshot (a :meth:`MetricsRegistry.snapshot` dict or a
``GET /metrics`` payload), and :func:`evaluate_golden` gates them
against configurable :class:`GoldenThresholds`, returning one
:class:`Violation` per breach.

Missing signals are *skipped*, not failed: a cache shard has no queue,
a front-end has no cache counters, and a threshold can only gate what
the endpoint actually reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

__all__ = [
    "GoldenThresholds",
    "Violation",
    "golden_metrics",
    "evaluate_golden",
]


@dataclass(frozen=True)
class GoldenThresholds:
    """Configurable gates over the golden metrics.

    Set a field to ``None`` to disable that gate.  The defaults are
    deliberately loose -- they catch a cold cache, a stuck queue or a
    dead worker pool, not a slow afternoon.
    """

    min_cache_hit_rate: float | None = 0.5
    max_plan_p50_seconds: float | None = 60.0
    max_plan_p99_seconds: float | None = 300.0
    max_queue_depth: float | None = 100.0
    min_workers_alive: float | None = 1.0


@dataclass(frozen=True)
class Violation:
    """One golden-metric threshold breach."""

    metric: str
    value: float
    threshold: float
    comparison: str  # ">=" when the value must stay at or above, "<=" below

    def describe(self) -> str:
        return (
            f"{self.metric}={self.value:.4g} violates "
            f"{self.metric} {self.comparison} {self.threshold:.4g}"
        )


def _metrics_of(snapshot: Mapping[str, object]) -> Mapping[str, object]:
    """Accept either a raw registry snapshot or a ``/metrics`` payload."""
    inner = snapshot.get("metrics")
    if isinstance(inner, Mapping) and (
        "counters" in inner or "gauges" in inner or "histograms" in inner
    ):
        return inner
    return snapshot


def golden_metrics(snapshot: Mapping[str, object]) -> dict[str, float]:
    """Derive the golden metrics present in ``snapshot``.

    Returns a dict with any of ``cache_hit_rate``, ``plan_p50_seconds``,
    ``plan_p99_seconds``, ``plan_count``, ``queue_depth`` and
    ``workers_alive`` -- omitting the ones the snapshot has no data for.
    If the snapshot is a full ``/metrics`` payload that already carries a
    ``"golden"`` dict, the derived values are unioned over it (the
    payload's own figures win).
    """
    metrics = _metrics_of(snapshot)
    counters = metrics.get("counters", {}) or {}
    gauges = metrics.get("gauges", {}) or {}
    histograms = metrics.get("histograms", {}) or {}

    golden: dict[str, float] = {}

    hits = sum(value for name, value in counters.items() if name.endswith(".hits"))
    misses = sum(value for name, value in counters.items() if name.endswith(".misses"))
    if hits or misses:
        golden["cache_hit_rate"] = hits / (hits + misses)

    plan = histograms.get("service.plan_seconds") or histograms.get(
        "planner.plan_seconds"
    )
    if plan and plan.get("count"):
        golden["plan_count"] = float(plan["count"])
        golden["plan_p50_seconds"] = float(plan["p50"])
        golden["plan_p99_seconds"] = float(plan["p99"])

    if "queue.depth" in gauges:
        golden["queue_depth"] = float(gauges["queue.depth"])
    if "fleet.workers_alive" in gauges:
        golden["workers_alive"] = float(gauges["fleet.workers_alive"])

    declared = snapshot.get("golden")
    if isinstance(declared, Mapping):
        golden.update({name: float(value) for name, value in declared.items()})
    return golden


def evaluate_golden(
    snapshot: Mapping[str, object],
    thresholds: GoldenThresholds | None = None,
) -> list[Violation]:
    """Gate the golden metrics in ``snapshot``; one violation per breach.

    ``snapshot`` may be a registry snapshot, a ``/metrics`` payload, or
    an already-derived :func:`golden_metrics` dict.  An empty list means
    every *reported* golden metric is within its threshold.
    """
    thresholds = thresholds or GoldenThresholds()
    if any(
        key in snapshot
        for key in ("counters", "gauges", "histograms", "metrics", "golden")
    ):
        golden = golden_metrics(snapshot)
    else:
        golden = {name: float(value) for name, value in snapshot.items()}

    violations: list[Violation] = []

    def gate_floor(metric: str, threshold: float | None) -> None:
        if threshold is not None and metric in golden and golden[metric] < threshold:
            violations.append(Violation(metric, golden[metric], threshold, ">="))

    def gate_ceiling(metric: str, threshold: float | None) -> None:
        if threshold is not None and metric in golden and golden[metric] > threshold:
            violations.append(Violation(metric, golden[metric], threshold, "<="))

    gate_floor("cache_hit_rate", thresholds.min_cache_hit_rate)
    gate_ceiling("plan_p50_seconds", thresholds.max_plan_p50_seconds)
    gate_ceiling("plan_p99_seconds", thresholds.max_plan_p99_seconds)
    gate_ceiling("queue_depth", thresholds.max_queue_depth)
    gate_floor("workers_alive", thresholds.min_workers_alive)
    return violations
