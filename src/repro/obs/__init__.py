"""Observability layer: metrics registry, spans and golden-metrics gates.

See :mod:`repro.obs.metrics` for the instrument core and
:mod:`repro.obs.golden` for the derived health definition shared by the
``/metrics`` endpoints, ``tools/obs.py`` dashboard and the benchmarks.
"""

from repro.obs.golden import (
    GoldenThresholds,
    Violation,
    evaluate_golden,
    golden_metrics,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    default_registry,
    enabled_registry,
    maybe_timer,
    render_prometheus,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "DEFAULT_LATENCY_BOUNDS",
    "default_registry",
    "enabled_registry",
    "maybe_timer",
    "render_prometheus",
    "GoldenThresholds",
    "Violation",
    "evaluate_golden",
    "golden_metrics",
]
