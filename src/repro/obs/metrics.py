"""Dependency-free metrics core: counters, gauges, histograms, spans.

The fleet grew faster than its instrumentation: benchmarks reach into
in-process stats objects, and a running cache shard or redesign
front-end exposes nothing beyond ``/health`` and a best-effort
``/stats``.  This module is the measurement substrate the rest of the
observability layer builds on -- a :class:`MetricsRegistry` holding
thread-safe :class:`Counter`, :class:`Gauge` and fixed-bucket
:class:`Histogram` instruments, with consistent snapshots, cross-process
merging and a :class:`Timer` context-manager span API.

Contract
--------
* One ``threading.RLock`` per registry guards every instrument it owns.
  ``snapshot()`` acquires it once, so a reader never observes a *torn*
  snapshot (a histogram whose ``count`` disagrees with its bucket sum,
  or a counter that went backwards).
* Histograms use fixed upper bounds (seconds-scale latency buckets by
  default) and estimate p50/p95/p99 by linear interpolation inside the
  bucket containing the target rank, clamped to the observed min/max.
  The estimate is therefore never off by more than the width of one
  bucket.
* ``merge()`` adds counters and histogram buckets and overwrites
  gauges; it accepts either another registry or a ``snapshot()`` dict
  (which is how process-pool workers and remote scrapes fold in).
* Registries pickle as *handles*, never as data: unpickling the
  process-wide default registry (see :func:`default_registry`) resolves
  to the receiving process's own default, and any other registry
  unpickles empty.  A process-pool worker therefore accumulates into a
  local registry and the parent folds the drained deltas back in --
  counts are never duplicated across the fork/spawn boundary.

``enabled_registry(configuration)`` is the one gate the hot paths use:
it returns ``None`` unless metrics are switched on, and every
instrumentation site is a cheap ``if registry is not None`` guard, so
the metrics-off path stays free.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "DEFAULT_LATENCY_BOUNDS",
    "default_registry",
    "enabled_registry",
    "maybe_timer",
    "render_prometheus",
]

#: Upper bucket bounds (seconds) used by latency histograms unless the
#: call site provides its own.  Log-spaced from 100 microseconds to half
#: a minute; everything above lands in the implicit overflow bucket.
DEFAULT_LATENCY_BOUNDS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class Counter:
    """Monotone counter; only ever increments."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value


class Gauge:
    """Point-in-time value; set, inc or dec freely."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: int | float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with interpolated quantile estimation.

    ``bounds`` are inclusive upper bounds per bucket; one overflow
    bucket catches everything above the last bound.  Quantiles are
    estimated by walking the cumulative counts to the target rank and
    interpolating linearly within the bucket, clamped to the observed
    min/max -- accurate to within one bucket width by construction.
    """

    __slots__ = ("_lock", "bounds", "_counts", "_count", "_sum", "_min", "_max")

    def __init__(self, lock: threading.RLock, bounds: Iterable[float] = DEFAULT_LATENCY_BOUNDS) -> None:
        ordered = tuple(sorted(float(bound) for bound in bounds))
        if not ordered:
            raise ValueError("a histogram needs at least one bucket bound")
        self._lock = lock
        self.bounds = ordered
        self._counts = [0] * (len(ordered) + 1)  # +1: overflow bucket
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: int | float) -> None:
        value = float(value)
        with self._lock:
            index = len(self.bounds)
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    index = i
                    break
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile of everything observed so far."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        with self._lock:
            return self._quantile_locked(q)

    def _quantile_locked(self, q: float) -> float:
        if self._count == 0:
            return 0.0
        target = q * self._count
        cumulative = 0
        for i, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                cumulative += bucket_count
                continue
            if cumulative + bucket_count >= target:
                lower = self.bounds[i - 1] if i > 0 else min(self._min, self.bounds[0])
                upper = self.bounds[i] if i < len(self.bounds) else self._max
                fraction = (target - cumulative) / bucket_count
                estimate = lower + (upper - lower) * max(0.0, min(1.0, fraction))
                return max(self._min, min(self._max, estimate))
            cumulative += bucket_count
        return self._max  # pragma: no cover - unreachable with count > 0

    def percentiles(self) -> dict[str, float]:
        with self._lock:
            return {
                "p50": self._quantile_locked(0.50),
                "p95": self._quantile_locked(0.95),
                "p99": self._quantile_locked(0.99),
            }

    def as_dict(self) -> dict[str, object]:
        with self._lock:
            summary: dict[str, object] = {
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else 0.0,
                "max": self._max if self._count else 0.0,
                "p50": self._quantile_locked(0.50),
                "p95": self._quantile_locked(0.95),
                "p99": self._quantile_locked(0.99),
                "buckets": [
                    [bound, count]
                    for bound, count in zip(list(self.bounds) + ["+Inf"], self._counts)
                ],
            }
            return summary


class Timer:
    """Context-manager span that observes its elapsed seconds.

    ``with registry.timer("planner.phase.generate_seconds"):`` is the
    span API every phase timing in the codebase uses.  The elapsed time
    is also kept on :attr:`elapsed` for call sites that want the number
    without a second clock read.
    """

    __slots__ = ("_histogram", "_start", "elapsed")

    def __init__(self, histogram: Histogram | None) -> None:
        self._histogram = histogram
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start
        if self._histogram is not None:
            self._histogram.observe(self.elapsed)


def maybe_timer(registry: "MetricsRegistry | None", name: str) -> Timer:
    """A :class:`Timer` on ``registry``, or a recording-free one.

    Lets instrumented call sites keep a single ``with`` block whether or
    not metrics are enabled -- the null timer still measures
    :attr:`Timer.elapsed` but observes nothing.
    """
    if registry is None:
        return Timer(None)
    return registry.timer(name)


class MetricsRegistry:
    """Thread-safe home for named counters, gauges and histograms.

    Instruments are created on first use (``registry.counter(name)``)
    and shared on every later request for the same name.  Names are
    dotted lowercase paths (``cache.memory.hits``); the Prometheus
    exposition sanitises them on the way out.
    """

    def __init__(self, _default: bool = False) -> None:
        self._lock = threading.RLock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._is_default = _default

    # -- instrument accessors ------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(self._lock)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(self._lock)
            return instrument

    def histogram(self, name: str, bounds: Iterable[float] = DEFAULT_LATENCY_BOUNDS) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(self._lock, bounds)
            return instrument

    def timer(self, name: str, bounds: Iterable[float] = DEFAULT_LATENCY_BOUNDS) -> Timer:
        return Timer(self.histogram(name, bounds))

    # -- snapshots ------------------------------------------------------

    def snapshot(self) -> dict[str, dict[str, object]]:
        """One consistent view of every instrument (never torn)."""
        with self._lock:
            return {
                "counters": {name: c.value for name, c in sorted(self._counters.items())},
                "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
                "histograms": {
                    name: h.as_dict() for name, h in sorted(self._histograms.items())
                },
            }

    def as_dict(self) -> dict[str, dict[str, object]]:
        """Alias of :meth:`snapshot` -- the repo-wide stats contract."""
        return self.snapshot()

    def merge(self, other: "MetricsRegistry | Mapping[str, object]") -> None:
        """Fold another registry (or a ``snapshot()`` dict) into this one.

        Counters and histogram buckets add; gauges take the incoming
        value.  Histograms must agree on bucket bounds.
        """
        if isinstance(other, MetricsRegistry):
            other = other.snapshot()
        counters = other.get("counters", {})
        gauges = other.get("gauges", {})
        histograms = other.get("histograms", {})
        with self._lock:
            for name, value in counters.items():
                self.counter(name).inc(value)
            for name, value in gauges.items():
                self.gauge(name).set(value)
            for name, data in histograms.items():
                buckets = data.get("buckets", [])
                bounds = [b for b, _ in buckets if b != "+Inf"]
                histogram = self.histogram(name, bounds or DEFAULT_LATENCY_BOUNDS)
                incoming = [count for _, count in buckets]
                if len(incoming) != len(histogram._counts):
                    raise ValueError(
                        f"histogram {name!r}: bucket bounds do not match for merge"
                    )
                for index, count in enumerate(incoming):
                    histogram._counts[index] += count
                histogram._count += data.get("count", 0)
                histogram._sum += data.get("sum", 0.0)
                if data.get("count"):
                    histogram._min = min(histogram._min, data.get("min", math.inf))
                    histogram._max = max(histogram._max, data.get("max", -math.inf))

    def drain(self) -> dict[str, dict[str, object]]:
        """Snapshot then reset -- how pool workers flush their deltas."""
        with self._lock:
            snapshot = self.snapshot()
            self.reset()
            return snapshot

    def reset(self) -> None:
        """Drop every instrument (tests and drained worker registries)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- pickling: registries travel as handles, never as data ----------

    def __reduce__(self):
        if self._is_default:
            return (default_registry, ())
        return (MetricsRegistry, ())


_DEFAULT_REGISTRY: MetricsRegistry | None = None
_DEFAULT_LOCK = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The process-wide default registry (created on first use)."""
    global _DEFAULT_REGISTRY
    with _DEFAULT_LOCK:
        if _DEFAULT_REGISTRY is None:
            _DEFAULT_REGISTRY = MetricsRegistry(_default=True)
        return _DEFAULT_REGISTRY


def enabled_registry(configuration) -> MetricsRegistry | None:
    """The registry a component should instrument against, or ``None``.

    Components gate every instrumentation site on the returned value, so
    ``metrics_enabled=False`` (the default) costs one attribute check.
    """
    if configuration is None or not getattr(configuration, "metrics_enabled", False):
        return None
    return getattr(configuration, "metrics_registry", None) or default_registry()


def _prom_name(name: str) -> str:
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def render_prometheus(snapshot: Mapping[str, object], prefix: str = "repro") -> str:
    """Render a ``snapshot()`` dict in the Prometheus text exposition.

    Counter and gauge names map one-to-one; histograms expand into the
    conventional ``_bucket{le=...}`` cumulative series plus ``_sum`` and
    ``_count``.
    """
    lines: list[str] = []
    for name, value in snapshot.get("counters", {}).items():
        metric = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name, value in snapshot.get("gauges", {}).items():
        metric = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    for name, data in snapshot.get("histograms", {}).items():
        metric = f"{prefix}_{_prom_name(name)}"
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in data.get("buckets", []):
            cumulative += count
            label = "+Inf" if bound == "+Inf" else repr(float(bound))
            lines.append(f'{metric}_bucket{{le="{label}"}} {cumulative}')
        lines.append(f"{metric}_sum {data.get('sum', 0.0)}")
        lines.append(f"{metric}_count {data.get('count', 0)}")
    return "\n".join(lines) + "\n"
