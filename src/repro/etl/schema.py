"""Record schemas for ETL flows.

Every transition (edge) in an ETL flow graph carries a :class:`Schema`
describing the records that move from one operation to its successor.
Schemas are the basis of the *applicability prerequisites* of Flow
Component Patterns -- e.g. ``FilterNullValues`` requires at least one
nullable field on the edge, ``ParallelizeTask`` requires a field usable as
a partition key.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Mapping, Sequence


class DataType(enum.Enum):
    """Primitive data types of ETL record fields."""

    INTEGER = "integer"
    DECIMAL = "decimal"
    STRING = "string"
    DATE = "date"
    TIMESTAMP = "timestamp"
    BOOLEAN = "boolean"
    BINARY = "binary"

    @property
    def is_numeric(self) -> bool:
        """Whether the type supports arithmetic (used by derivation patterns)."""
        return self in (DataType.INTEGER, DataType.DECIMAL)

    @property
    def is_temporal(self) -> bool:
        """Whether the type denotes a point in time (used by freshness measures)."""
        return self in (DataType.DATE, DataType.TIMESTAMP)

    @classmethod
    def parse(cls, text: str) -> "DataType":
        """Parse a type name as found in xLM / PDI documents."""
        normalized = text.strip().lower()
        aliases = {
            "int": cls.INTEGER,
            "integer": cls.INTEGER,
            "bigint": cls.INTEGER,
            "smallint": cls.INTEGER,
            "number": cls.DECIMAL,
            "numeric": cls.DECIMAL,
            "decimal": cls.DECIMAL,
            "float": cls.DECIMAL,
            "double": cls.DECIMAL,
            "real": cls.DECIMAL,
            "string": cls.STRING,
            "varchar": cls.STRING,
            "char": cls.STRING,
            "text": cls.STRING,
            "date": cls.DATE,
            "timestamp": cls.TIMESTAMP,
            "datetime": cls.TIMESTAMP,
            "boolean": cls.BOOLEAN,
            "bool": cls.BOOLEAN,
            "binary": cls.BINARY,
            "blob": cls.BINARY,
        }
        try:
            return aliases[normalized]
        except KeyError as exc:
            raise ValueError(f"unknown data type name: {text!r}") from exc


@dataclass(frozen=True)
class Field:
    """A single named, typed field of a record schema.

    Parameters
    ----------
    name:
        Field name, unique within its schema.
    dtype:
        Primitive :class:`DataType`.
    nullable:
        Whether the field may hold NULL values.  Data-quality patterns such
        as ``FilterNullValues`` only apply when nullable fields exist.
    key:
        Whether the field participates in the record identity (used by
        duplicate removal and partitioning patterns).
    """

    name: str
    dtype: DataType = DataType.STRING
    nullable: bool = True
    key: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("field name must be non-empty")

    def renamed(self, new_name: str) -> "Field":
        """Return a copy of this field with a different name."""
        return replace(self, name=new_name)

    def with_nullability(self, nullable: bool) -> "Field":
        """Return a copy of this field with ``nullable`` set as given."""
        return replace(self, nullable=nullable)


#: Memo of ``Schema.is_compatible_with`` results keyed by the object-id
#: pair; values pin the schemas so the ids cannot be recycled.  Bounded:
#: once full it is flushed wholesale (entries are trivially recomputable),
#: so long-lived processes churning through many workloads cannot leak.
_COMPATIBILITY_MEMO: dict[tuple[int, int], tuple["Schema", "Schema", bool]] = {}
_COMPATIBILITY_MEMO_LIMIT = 4096


@dataclass(frozen=True)
class Schema:
    """An ordered collection of uniquely named fields.

    Schemas are immutable; all mutating operations return new instances.
    """

    fields: tuple[Field, ...] = ()

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(f"duplicate field names in schema: {sorted(duplicates)}")

    # -- constructors ---------------------------------------------------

    @classmethod
    def of(cls, *fields: Field) -> "Schema":
        """Build a schema from individual fields."""
        return cls(tuple(fields))

    @classmethod
    def from_pairs(cls, pairs: Iterable[tuple[str, DataType]]) -> "Schema":
        """Build a schema from ``(name, dtype)`` pairs (all nullable, non-key)."""
        return cls(tuple(Field(name, dtype) for name, dtype in pairs))

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, DataType]) -> "Schema":
        """Build a schema from a ``name -> dtype`` mapping."""
        return cls.from_pairs(mapping.items())

    # -- introspection --------------------------------------------------

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self.fields)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name()

    def _by_name(self) -> dict[str, Field]:
        """A lazily built name index (schemas are immutable, so it never stales)."""
        try:
            return self._name_index  # type: ignore[attr-defined]
        except AttributeError:
            index = {f.name: f for f in self.fields}
            object.__setattr__(self, "_name_index", index)
            return index

    @property
    def names(self) -> tuple[str, ...]:
        """Field names in declaration order."""
        return tuple(f.name for f in self.fields)

    @property
    def key_fields(self) -> tuple[Field, ...]:
        """Fields flagged as part of the record identity."""
        return tuple(f for f in self.fields if f.key)

    @property
    def nullable_fields(self) -> tuple[Field, ...]:
        """Fields that may carry NULL values."""
        return tuple(f for f in self.fields if f.nullable)

    @property
    def numeric_fields(self) -> tuple[Field, ...]:
        """Fields whose type supports arithmetic."""
        return tuple(f for f in self.fields if f.dtype.is_numeric)

    @property
    def temporal_fields(self) -> tuple[Field, ...]:
        """Fields whose type denotes a point in time."""
        return tuple(f for f in self.fields if f.dtype.is_temporal)

    def field(self, name: str) -> Field:
        """Return the field called ``name``.

        Raises
        ------
        KeyError
            If no field with that name exists.
        """
        return self._by_name()[name]

    def get(self, name: str) -> Field | None:
        """Return the field called ``name`` or ``None`` if absent."""
        return self._by_name().get(name)

    # -- derivation -----------------------------------------------------

    def project(self, names: Sequence[str]) -> "Schema":
        """Return a schema containing only the given fields, in the given order."""
        missing = [n for n in names if n not in self]
        if missing:
            raise KeyError(f"cannot project on missing fields: {missing}")
        by_name = {f.name: f for f in self.fields}
        return Schema(tuple(by_name[n] for n in names))

    def drop(self, names: Sequence[str]) -> "Schema":
        """Return a schema without the given fields."""
        unknown = [n for n in names if n not in self]
        if unknown:
            raise KeyError(f"cannot drop missing fields: {unknown}")
        excluded = set(names)
        return Schema(tuple(f for f in self.fields if f.name not in excluded))

    def extend(self, *new_fields: Field) -> "Schema":
        """Return a schema with additional fields appended."""
        return Schema(self.fields + tuple(new_fields))

    def rename(self, mapping: Mapping[str, str]) -> "Schema":
        """Return a schema with fields renamed according to ``mapping``."""
        unknown = [n for n in mapping if n not in self]
        if unknown:
            raise KeyError(f"cannot rename missing fields: {unknown}")
        return Schema(
            tuple(f.renamed(mapping[f.name]) if f.name in mapping else f for f in self.fields)
        )

    def merge(self, other: "Schema", prefix: str = "") -> "Schema":
        """Return the concatenation of two schemas.

        Name collisions in ``other`` are disambiguated by prepending
        ``prefix`` (or ``"r_"`` if no prefix is supplied).
        """
        effective_prefix = prefix or "r_"
        merged = list(self.fields)
        taken = set(self.names)
        for f in other.fields:
            name = f.name
            while name in taken:
                name = effective_prefix + name
            merged.append(f.renamed(name))
            taken.add(name)
        return Schema(tuple(merged))

    def without_nulls(self) -> "Schema":
        """Return a copy of the schema where every field is non-nullable.

        Used to propagate the effect of null-filtering patterns downstream.
        """
        return Schema(tuple(f.with_nullability(False) for f in self.fields))

    def is_compatible_with(self, other: "Schema") -> bool:
        """Whether records of this schema can flow into a consumer expecting ``other``.

        Compatibility is positional-name based: every field required by
        ``other`` must be present here with the same data type.  Results
        are memoized per schema-object pair: flow validation re-checks
        the same shared schema objects across thousands of candidate
        flows, so the answer is almost always already known.
        """
        key = (id(self), id(other))
        hit = _COMPATIBILITY_MEMO.get(key)
        if hit is not None:
            return hit[2]
        index = self._by_name()
        result = True
        for required in other.fields:
            actual = index.get(required.name)
            if actual is None or actual.dtype != required.dtype:
                result = False
                break
        # The memo pins both schemas, keeping their ids stable for the
        # lifetime of the entry; distinct schema objects number in the
        # dozens per workload, so the memo rarely reaches its bound.
        if len(_COMPATIBILITY_MEMO) >= _COMPATIBILITY_MEMO_LIMIT:
            _COMPATIBILITY_MEMO.clear()
        _COMPATIBILITY_MEMO[key] = (self, other, result)
        return result

    def to_dict(self) -> list[dict[str, object]]:
        """Serialise the schema to a JSON-friendly structure."""
        return [
            {
                "name": f.name,
                "dtype": f.dtype.value,
                "nullable": f.nullable,
                "key": f.key,
            }
            for f in self.fields
        ]

    @classmethod
    def from_dict(cls, data: Iterable[Mapping[str, object]]) -> "Schema":
        """Deserialise a schema produced by :meth:`to_dict`."""
        return cls(
            tuple(
                Field(
                    name=str(item["name"]),
                    dtype=DataType(item.get("dtype", "string")),
                    nullable=bool(item.get("nullable", True)),
                    key=bool(item.get("key", False)),
                )
                for item in data
            )
        )


EMPTY_SCHEMA = Schema()
"""A schema with no fields, used for control-only transitions."""
