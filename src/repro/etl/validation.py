"""Structural and semantic validation of ETL flows.

Pattern application must never break the flow: after every FCP insertion
the planner re-validates the resulting graph.  Validation covers
structure (acyclicity is enforced at insertion time; connectivity, sources
and sinks are checked here), router/merger arity versus configuration, and
schema compatibility along transitions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

from repro.etl.graph import ETLGraph
from repro.etl.operations import OperationKind


class Severity(enum.Enum):
    """Severity of a validation issue."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class ValidationIssue:
    """A single problem discovered while validating a flow."""

    severity: Severity
    code: str
    message: str
    op_id: str = ""

    def __str__(self) -> str:
        location = f" [{self.op_id}]" if self.op_id else ""
        return f"{self.severity.value.upper()} {self.code}{location}: {self.message}"


class ValidationError(Exception):
    """Raised when a flow fails validation with at least one error."""

    def __init__(self, issues: Iterable[ValidationIssue]):
        self.issues = [i for i in issues if i.severity is Severity.ERROR]
        message = "; ".join(str(i) for i in self.issues) or "flow validation failed"
        super().__init__(message)


def validate_flow(flow: ETLGraph, raise_on_error: bool = False) -> list[ValidationIssue]:
    """Validate an ETL flow and return the list of issues found.

    Parameters
    ----------
    flow:
        The flow to validate.
    raise_on_error:
        When true, a :class:`ValidationError` is raised if any issue of
        severity ``ERROR`` is present.
    """
    issues: list[ValidationIssue] = []
    issues.extend(_check_non_empty(flow))
    if flow.node_count:
        issues.extend(_check_connectivity(flow))
        issues.extend(_check_sources_and_sinks(flow))
        issues.extend(_check_arities(flow))
        issues.extend(_check_schemas(flow))
    if raise_on_error and any(i.severity is Severity.ERROR for i in issues):
        raise ValidationError(issues)
    return issues


def is_valid(flow: ETLGraph) -> bool:
    """Whether the flow has no validation errors (warnings are tolerated)."""
    return not any(i.severity is Severity.ERROR for i in validate_flow(flow))


def _check_non_empty(flow: ETLGraph) -> list[ValidationIssue]:
    if flow.node_count == 0:
        return [
            ValidationIssue(
                Severity.ERROR, "EMPTY_FLOW", "the flow contains no operations"
            )
        ]
    return []


def _check_connectivity(flow: ETLGraph) -> list[ValidationIssue]:
    issues: list[ValidationIssue] = []
    if not flow.is_connected():
        issues.append(
            ValidationIssue(
                Severity.ERROR,
                "DISCONNECTED",
                "the flow is split into several disconnected components",
            )
        )
    for op in flow.operations():
        isolated = flow.in_degree(op.op_id) == 0 and flow.out_degree(op.op_id) == 0
        if isolated and flow.node_count > 1:
            issues.append(
                ValidationIssue(
                    Severity.ERROR,
                    "ISOLATED_OPERATION",
                    f"operation {op.name!r} is not connected to the flow",
                    op_id=op.op_id,
                )
            )
    return issues


def _check_sources_and_sinks(flow: ETLGraph) -> list[ValidationIssue]:
    issues: list[ValidationIssue] = []
    if not flow.sources():
        issues.append(
            ValidationIssue(Severity.ERROR, "NO_SOURCE", "the flow has no source operation")
        )
    if not flow.sinks():
        issues.append(
            ValidationIssue(Severity.ERROR, "NO_SINK", "the flow has no sink operation")
        )
    for op in flow.sources():
        if not op.kind.is_source and op.kind is not OperationKind.NOOP:
            issues.append(
                ValidationIssue(
                    Severity.WARNING,
                    "NON_EXTRACT_SOURCE",
                    f"flow entry point {op.name!r} is a {op.kind.value} operation, "
                    "not an extraction",
                    op_id=op.op_id,
                )
            )
    for op in flow.sinks():
        if not op.kind.is_sink and op.kind not in (
            OperationKind.CHECKPOINT,
            OperationKind.NOOP,
        ):
            issues.append(
                ValidationIssue(
                    Severity.WARNING,
                    "NON_LOAD_SINK",
                    f"flow exit point {op.name!r} is a {op.kind.value} operation, not a load",
                    op_id=op.op_id,
                )
            )
    return issues


def _check_arities(flow: ETLGraph) -> list[ValidationIssue]:
    issues: list[ValidationIssue] = []
    for op in flow.operations():
        in_degree = flow.in_degree(op.op_id)
        out_degree = flow.out_degree(op.op_id)
        # EXTRACT_SAVEPOINT re-reads persisted intermediary data and may
        # legitimately sit in the middle of a flow (Fig. 2b of the paper).
        true_source = op.kind.is_source and op.kind is not OperationKind.EXTRACT_SAVEPOINT
        if true_source and in_degree > 0:
            issues.append(
                ValidationIssue(
                    Severity.ERROR,
                    "SOURCE_WITH_INPUT",
                    f"extraction operation {op.name!r} must not have incoming transitions",
                    op_id=op.op_id,
                )
            )
        if op.kind.is_sink and out_degree > 0:
            issues.append(
                ValidationIssue(
                    Severity.WARNING,
                    "SINK_WITH_OUTPUT",
                    f"load operation {op.name!r} has outgoing transitions",
                    op_id=op.op_id,
                )
            )
        if op.kind is OperationKind.JOIN and in_degree < 2:
            issues.append(
                ValidationIssue(
                    Severity.ERROR,
                    "JOIN_ARITY",
                    f"join operation {op.name!r} needs at least two inputs, has {in_degree}",
                    op_id=op.op_id,
                )
            )
        if op.kind.is_router and out_degree < 2:
            issues.append(
                ValidationIssue(
                    Severity.WARNING,
                    "ROUTER_ARITY",
                    f"routing operation {op.name!r} has fewer than two outputs "
                    f"({out_degree})",
                    op_id=op.op_id,
                )
            )
    return issues


def _check_schemas(flow: ETLGraph) -> list[ValidationIssue]:
    issues: list[ValidationIssue] = []
    for edge in flow.edges():
        source_schema = flow.operation(edge.source).output_schema
        if len(edge.schema) and len(source_schema):
            if not source_schema.is_compatible_with(edge.schema):
                issues.append(
                    ValidationIssue(
                        Severity.WARNING,
                        "SCHEMA_MISMATCH",
                        "transition schema requires fields that the source operation "
                        f"{edge.source!r} does not produce",
                        op_id=edge.source,
                    )
                )
    return issues
