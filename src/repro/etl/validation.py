"""Structural and semantic validation of ETL flows.

Pattern application must never break the flow: after every FCP insertion
the planner re-validates the resulting graph.  Validation covers
structure (acyclicity is enforced at insertion time; connectivity, sources
and sinks are checked here), router/merger arity versus configuration, and
schema compatibility along transitions.

Two entry points are provided.  :func:`validate_flow` is the oracle: it
walks the whole flow.  :func:`validate_delta` exploits the structured
:class:`~repro.etl.graph.GraphDelta` a copy-on-write graph records against
its parent: given the parent's issue list it re-checks only the
operations whose neighbourhood the delta touched, carries the remaining
parent issues over, and refreshes the cheap global invariants -- so
validating one pattern application costs O(delta), not O(flow).  Both
functions produce the same issue *set* for any flow derived from a
validated parent (the property suite asserts this agreement).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.etl.graph import ETLGraph, GraphDelta
from repro.etl.operations import OperationKind


class Severity(enum.Enum):
    """Severity of a validation issue."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class ValidationIssue:
    """A single problem discovered while validating a flow."""

    severity: Severity
    code: str
    message: str
    op_id: str = ""

    def __str__(self) -> str:
        location = f" [{self.op_id}]" if self.op_id else ""
        return f"{self.severity.value.upper()} {self.code}{location}: {self.message}"


class ValidationError(Exception):
    """Raised when a flow fails validation with at least one error."""

    def __init__(self, issues: Iterable[ValidationIssue]):
        self.issues = [i for i in issues if i.severity is Severity.ERROR]
        message = "; ".join(str(i) for i in self.issues) or "flow validation failed"
        super().__init__(message)


def validate_flow(flow: ETLGraph, raise_on_error: bool = False) -> list[ValidationIssue]:
    """Validate an ETL flow and return the list of issues found.

    Parameters
    ----------
    flow:
        The flow to validate.
    raise_on_error:
        When true, a :class:`ValidationError` is raised if any issue of
        severity ``ERROR`` is present.
    """
    issues: list[ValidationIssue] = []
    issues.extend(_check_non_empty(flow))
    if flow.node_count:
        issues.extend(_check_connectivity(flow))
        issues.extend(_check_sources_and_sinks(flow))
        issues.extend(_check_arities(flow))
        issues.extend(_check_schemas(flow))
    if raise_on_error and any(i.severity is Severity.ERROR for i in issues):
        raise ValidationError(issues)
    return issues


def is_valid(flow: ETLGraph) -> bool:
    """Whether the flow has no validation errors (warnings are tolerated)."""
    return not has_errors(validate_flow(flow))


def has_errors(issues: Iterable[ValidationIssue]) -> bool:
    """Whether an issue list contains at least one ``ERROR``-severity issue.

    The validity criterion shared by the whole-flow oracle and the
    incremental paths: a flow is adoptable iff its issue list -- however
    it was obtained (:func:`validate_flow`, one :func:`validate_delta`
    call, or a chain of them along a prefix of pattern applications) --
    has no errors.  Warnings never disqualify a flow.
    """
    return any(i.severity is Severity.ERROR for i in issues)


def validate_delta(
    flow: ETLGraph,
    delta: GraphDelta,
    parent_issues: Sequence[ValidationIssue] = (),
) -> list[ValidationIssue]:
    """Validate a flow derived from a validated parent by ``delta``.

    Instead of re-walking the whole flow, only the operations whose
    neighbourhood the delta touched (added/materialized operations and
    every endpoint of a changed transition) are re-checked; the parent's
    per-operation issues are carried over for untouched operations, and
    the cheap flow-wide invariants (emptiness, weak connectivity, source
    and sink existence) are recomputed.  The result contains exactly the
    same issues as ``validate_flow(flow)``, up to ordering, provided
    ``parent_issues`` is the parent's complete issue list.

    Because the output is again a complete issue list, calls chain: the
    alternative generator's prefix cache stores the issue list of each
    intermediate flow of a pattern combination and *resumes* validation
    from the deepest cached prefix, so extending ``(a, b)`` to
    ``(a, b, c)`` validates only ``c``'s delta against the cached
    ``(a, b)`` issues.

    Parameters
    ----------
    flow:
        The derived flow (typically a COW child carrying ``delta``).
    delta:
        The recorded difference between the parent and ``flow``.
    parent_issues:
        The parent flow's issues, as returned by :func:`validate_flow` or
        by a previous :func:`validate_delta` in a chain of pattern
        applications.
    """
    if not delta.is_structural():
        # Annotation-only deltas (graph-level patterns) cannot change any
        # validation outcome; the parent's issues are the flow's issues.
        return list(parent_issues)

    issues: list[ValidationIssue] = []
    issues.extend(_check_non_empty(flow))
    if flow.node_count:
        if not _still_connected(flow, delta, parent_issues):
            issues.append(_DISCONNECTED_ISSUE)
        if not flow.has_source():
            issues.append(_NO_SOURCE_ISSUE)
        if not flow.has_sink():
            issues.append(_NO_SINK_ISSUE)

    touched = delta.touched_operations(flow)
    removed = delta.ops_removed
    for issue in parent_issues:
        if issue.code in _GLOBAL_CODES:
            continue  # recomputed above
        if not issue.op_id or issue.op_id in removed or issue.op_id in touched:
            continue
        if issue.op_id not in flow:
            continue
        issues.append(issue)

    for op_id in sorted(touched):
        op = flow.operation(op_id)
        isolated = _isolated_issue(flow, op_id)
        if isolated is not None:
            issues.append(isolated)
        if flow.in_degree(op_id) == 0:
            entry_issue = _non_extract_source_issue(op)
            if entry_issue is not None:
                issues.append(entry_issue)
        if flow.out_degree(op_id) == 0:
            exit_issue = _non_load_sink_issue(op)
            if exit_issue is not None:
                issues.append(exit_issue)
        issues.extend(_arity_issues(flow, op_id))
        # Schema compatibility is attributed to the edge source, so each
        # touched operation re-checks its outgoing transitions; incoming
        # ones are covered by their own (touched or carried-over) source.
        for successor in flow.successors(op_id):
            schema_issue = _edge_schema_issue(flow, op_id, successor.op_id)
            if schema_issue is not None:
                issues.append(schema_issue)
    return issues


def _check_non_empty(flow: ETLGraph) -> list[ValidationIssue]:
    if flow.node_count == 0:
        return [
            ValidationIssue(
                Severity.ERROR, "EMPTY_FLOW", "the flow contains no operations"
            )
        ]
    return []


def _check_connectivity(flow: ETLGraph) -> list[ValidationIssue]:
    issues: list[ValidationIssue] = []
    if not flow.is_connected():
        issues.append(_DISCONNECTED_ISSUE)
    for op in flow.operations():
        isolated = _isolated_issue(flow, op.op_id)
        if isolated is not None:
            issues.append(isolated)
    return issues


def _check_sources_and_sinks(flow: ETLGraph) -> list[ValidationIssue]:
    issues: list[ValidationIssue] = []
    if not flow.sources():
        issues.append(_NO_SOURCE_ISSUE)
    if not flow.sinks():
        issues.append(_NO_SINK_ISSUE)
    for op in flow.sources():
        issue = _non_extract_source_issue(op)
        if issue is not None:
            issues.append(issue)
    for op in flow.sinks():
        issue = _non_load_sink_issue(op)
        if issue is not None:
            issues.append(issue)
    return issues


def _check_arities(flow: ETLGraph) -> list[ValidationIssue]:
    issues: list[ValidationIssue] = []
    for op in flow.operations():
        issues.extend(_arity_issues(flow, op.op_id))
    return issues


def _check_schemas(flow: ETLGraph) -> list[ValidationIssue]:
    issues: list[ValidationIssue] = []
    for edge in flow.edges():
        issue = _edge_schema_issue(flow, edge.source, edge.target)
        if issue is not None:
            issues.append(issue)
    return issues


def _still_connected(
    flow: ETLGraph, delta: GraphDelta, parent_issues: Sequence[ValidationIssue]
) -> bool:
    """Weak connectivity of a derived flow, proven locally when possible.

    If the parent was connected, no operation was removed, and (a) every
    removed transition's endpoints are re-connected through the *added*
    transitions while (b) every added operation reaches a pre-existing
    one through them, the flow is still connected -- a proof that costs
    O(delta).  Any other shape (node removals, uncompensated edge
    removals, a disconnected parent) falls back to the full traversal.
    """
    if delta.ops_removed or any(i.code == "DISCONNECTED" for i in parent_issues):
        return flow.is_connected()
    if not delta.edges_removed and not delta.ops_added:
        # Only additions on a connected flow: still connected.
        return True

    adjacency: dict[str, list[str]] = {}
    for source, target in delta.edges_added:
        adjacency.setdefault(source, []).append(target)
        adjacency.setdefault(target, []).append(source)

    def reaches(start: str, accept) -> bool:
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            if accept(node):
                return True
            for neighbour in adjacency.get(node, ()):
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return False

    for source, target in delta.edges_removed:
        if not reaches(source, lambda node, goal=target: node == goal):
            return flow.is_connected()
    added = delta.ops_added
    for op_id in added:
        if op_id in flow and not reaches(op_id, lambda node: node not in added):
            return flow.is_connected()
    return True


# ---------------------------------------------------------------------------
# Per-element checks (shared between the whole-flow oracle and delta
# validation, so the two can never drift apart)
# ---------------------------------------------------------------------------

_DISCONNECTED_ISSUE = ValidationIssue(
    Severity.ERROR,
    "DISCONNECTED",
    "the flow is split into several disconnected components",
)
_NO_SOURCE_ISSUE = ValidationIssue(
    Severity.ERROR, "NO_SOURCE", "the flow has no source operation"
)
_NO_SINK_ISSUE = ValidationIssue(
    Severity.ERROR, "NO_SINK", "the flow has no sink operation"
)

#: Codes of flow-wide issues that delta validation always recomputes
#: instead of carrying over from the parent.
_GLOBAL_CODES = frozenset({"EMPTY_FLOW", "DISCONNECTED", "NO_SOURCE", "NO_SINK"})


def _isolated_issue(flow: ETLGraph, op_id: str) -> ValidationIssue | None:
    if flow.in_degree(op_id) == 0 and flow.out_degree(op_id) == 0 and flow.node_count > 1:
        return ValidationIssue(
            Severity.ERROR,
            "ISOLATED_OPERATION",
            f"operation {flow.operation(op_id).name!r} is not connected to the flow",
            op_id=op_id,
        )
    return None


def _non_extract_source_issue(op) -> ValidationIssue | None:
    if not op.kind.is_source and op.kind is not OperationKind.NOOP:
        return ValidationIssue(
            Severity.WARNING,
            "NON_EXTRACT_SOURCE",
            f"flow entry point {op.name!r} is a {op.kind.value} operation, "
            "not an extraction",
            op_id=op.op_id,
        )
    return None


def _non_load_sink_issue(op) -> ValidationIssue | None:
    if not op.kind.is_sink and op.kind not in (
        OperationKind.CHECKPOINT,
        OperationKind.NOOP,
    ):
        return ValidationIssue(
            Severity.WARNING,
            "NON_LOAD_SINK",
            f"flow exit point {op.name!r} is a {op.kind.value} operation, not a load",
            op_id=op.op_id,
        )
    return None


def _arity_issues(flow: ETLGraph, op_id: str) -> list[ValidationIssue]:
    op = flow.operation(op_id)
    in_degree = flow.in_degree(op_id)
    out_degree = flow.out_degree(op_id)
    issues: list[ValidationIssue] = []
    # EXTRACT_SAVEPOINT re-reads persisted intermediary data and may
    # legitimately sit in the middle of a flow (Fig. 2b of the paper).
    true_source = op.kind.is_source and op.kind is not OperationKind.EXTRACT_SAVEPOINT
    if true_source and in_degree > 0:
        issues.append(
            ValidationIssue(
                Severity.ERROR,
                "SOURCE_WITH_INPUT",
                f"extraction operation {op.name!r} must not have incoming transitions",
                op_id=op_id,
            )
        )
    if op.kind.is_sink and out_degree > 0:
        issues.append(
            ValidationIssue(
                Severity.WARNING,
                "SINK_WITH_OUTPUT",
                f"load operation {op.name!r} has outgoing transitions",
                op_id=op_id,
            )
        )
    if op.kind is OperationKind.JOIN and in_degree < 2:
        issues.append(
            ValidationIssue(
                Severity.ERROR,
                "JOIN_ARITY",
                f"join operation {op.name!r} needs at least two inputs, has {in_degree}",
                op_id=op_id,
            )
        )
    if op.kind.is_router and out_degree < 2:
        issues.append(
            ValidationIssue(
                Severity.WARNING,
                "ROUTER_ARITY",
                f"routing operation {op.name!r} has fewer than two outputs "
                f"({out_degree})",
                op_id=op_id,
            )
        )
    return issues


def _edge_schema_issue(flow: ETLGraph, source: str, target: str) -> ValidationIssue | None:
    edge = flow.edge(source, target)
    source_schema = flow.operation(source).output_schema
    if len(edge.schema) and len(source_schema):
        if not source_schema.is_compatible_with(edge.schema):
            return ValidationIssue(
                Severity.WARNING,
                "SCHEMA_MISMATCH",
                "transition schema requires fields that the source operation "
                f"{source!r} does not produce",
                op_id=source,
            )
    return None
