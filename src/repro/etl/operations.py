"""Taxonomy of ETL flow operations.

The taxonomy follows the decomposition of ETL processes into activities
referenced by the paper (Vassiliadis et al., "A taxonomy of ETL
activities", DOLAP 2009): extraction, row-level transformations, routers,
unary/binary grouping operations, data-quality operations, loading and
control/management operations.

Each node of an :class:`repro.etl.graph.ETLGraph` holds exactly one
:class:`Operation`.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.etl.properties import OperationProperties
from repro.etl.schema import Schema


class OperationCategory(enum.Enum):
    """Coarse grouping of operation kinds, used by placement heuristics."""

    EXTRACTION = "extraction"
    TRANSFORMATION = "transformation"
    ROUTING = "routing"
    DATA_QUALITY = "data_quality"
    LOADING = "loading"
    CONTROL = "control"


class OperationKind(enum.Enum):
    """Concrete ETL operation types supported by the flow model."""

    # Extraction
    EXTRACT_FILE = "extract_file"
    EXTRACT_TABLE = "extract_table"
    EXTRACT_SAVEPOINT = "extract_savepoint"
    # Row-level transformations
    FILTER = "filter"
    PROJECT = "project"
    DERIVE = "derive"
    RENAME = "rename"
    CONVERT = "convert"
    SURROGATE_KEY = "surrogate_key"
    LOOKUP = "lookup"
    SLOWLY_CHANGING_DIM = "slowly_changing_dim"
    AGGREGATE = "aggregate"
    SORT = "sort"
    PIVOT = "pivot"
    # Binary / n-ary operations
    JOIN = "join"
    UNION = "union"
    MERGE = "merge"
    DIFF = "diff"
    # Routing
    SPLIT = "split"
    ROUTER = "router"
    PARTITION = "partition"
    REPLICATE = "replicate"
    # Data quality
    DEDUPLICATE = "deduplicate"
    FILTER_NULLS = "filter_nulls"
    CROSSCHECK = "crosscheck"
    VALIDATE = "validate"
    CLEANSE = "cleanse"
    # Loading
    LOAD_TABLE = "load_table"
    LOAD_FILE = "load_file"
    # Control / management
    CHECKPOINT = "checkpoint"
    RECOVERY_BRANCH = "recovery_branch"
    ENCRYPT = "encrypt"
    DECRYPT = "decrypt"
    ACCESS_CONTROL = "access_control"
    SCHEDULE = "schedule"
    NOOP = "noop"

    @property
    def category(self) -> OperationCategory:
        """The coarse category of this operation kind."""
        return _KIND_CATEGORIES[self]

    @property
    def is_source(self) -> bool:
        """Whether the operation introduces data into the flow."""
        return self in (
            OperationKind.EXTRACT_FILE,
            OperationKind.EXTRACT_TABLE,
            OperationKind.EXTRACT_SAVEPOINT,
        )

    @property
    def is_sink(self) -> bool:
        """Whether the operation persists data out of the flow."""
        return self in (OperationKind.LOAD_TABLE, OperationKind.LOAD_FILE)

    @property
    def is_blocking(self) -> bool:
        """Whether the operation must consume its whole input before emitting.

        Blocking operations (sort, aggregate, pivot, diff) dominate the
        process cycle time estimation and are preferred application points
        for the ``ParallelizeTask`` pattern.
        """
        return self in (
            OperationKind.SORT,
            OperationKind.AGGREGATE,
            OperationKind.PIVOT,
            OperationKind.DIFF,
        )

    @property
    def is_router(self) -> bool:
        """Whether the operation has multiple data outputs."""
        return self in (
            OperationKind.SPLIT,
            OperationKind.ROUTER,
            OperationKind.PARTITION,
            OperationKind.REPLICATE,
        )

    @property
    def is_merger(self) -> bool:
        """Whether the operation combines multiple data inputs.

        The number of merger nodes is one of the manageability measures of
        Fig. 1 in the paper.
        """
        return self in (
            OperationKind.JOIN,
            OperationKind.UNION,
            OperationKind.MERGE,
            OperationKind.DIFF,
        )


_KIND_CATEGORIES: dict[OperationKind, OperationCategory] = {
    OperationKind.EXTRACT_FILE: OperationCategory.EXTRACTION,
    OperationKind.EXTRACT_TABLE: OperationCategory.EXTRACTION,
    OperationKind.EXTRACT_SAVEPOINT: OperationCategory.EXTRACTION,
    OperationKind.FILTER: OperationCategory.TRANSFORMATION,
    OperationKind.PROJECT: OperationCategory.TRANSFORMATION,
    OperationKind.DERIVE: OperationCategory.TRANSFORMATION,
    OperationKind.RENAME: OperationCategory.TRANSFORMATION,
    OperationKind.CONVERT: OperationCategory.TRANSFORMATION,
    OperationKind.SURROGATE_KEY: OperationCategory.TRANSFORMATION,
    OperationKind.LOOKUP: OperationCategory.TRANSFORMATION,
    OperationKind.SLOWLY_CHANGING_DIM: OperationCategory.TRANSFORMATION,
    OperationKind.AGGREGATE: OperationCategory.TRANSFORMATION,
    OperationKind.SORT: OperationCategory.TRANSFORMATION,
    OperationKind.PIVOT: OperationCategory.TRANSFORMATION,
    OperationKind.JOIN: OperationCategory.TRANSFORMATION,
    OperationKind.UNION: OperationCategory.TRANSFORMATION,
    OperationKind.MERGE: OperationCategory.TRANSFORMATION,
    OperationKind.DIFF: OperationCategory.TRANSFORMATION,
    OperationKind.SPLIT: OperationCategory.ROUTING,
    OperationKind.ROUTER: OperationCategory.ROUTING,
    OperationKind.PARTITION: OperationCategory.ROUTING,
    OperationKind.REPLICATE: OperationCategory.ROUTING,
    OperationKind.DEDUPLICATE: OperationCategory.DATA_QUALITY,
    OperationKind.FILTER_NULLS: OperationCategory.DATA_QUALITY,
    OperationKind.CROSSCHECK: OperationCategory.DATA_QUALITY,
    OperationKind.VALIDATE: OperationCategory.DATA_QUALITY,
    OperationKind.CLEANSE: OperationCategory.DATA_QUALITY,
    OperationKind.LOAD_TABLE: OperationCategory.LOADING,
    OperationKind.LOAD_FILE: OperationCategory.LOADING,
    OperationKind.CHECKPOINT: OperationCategory.CONTROL,
    OperationKind.RECOVERY_BRANCH: OperationCategory.CONTROL,
    OperationKind.ENCRYPT: OperationCategory.CONTROL,
    OperationKind.DECRYPT: OperationCategory.CONTROL,
    OperationKind.ACCESS_CONTROL: OperationCategory.CONTROL,
    OperationKind.SCHEDULE: OperationCategory.CONTROL,
    OperationKind.NOOP: OperationCategory.CONTROL,
}


_id_counter = itertools.count(1)


def _next_operation_id(kind: OperationKind) -> str:
    """Generate a readable unique default identifier for an operation."""
    return f"{kind.value}_{next(_id_counter)}"


@dataclass
class Operation:
    """A single ETL flow operation (one node of the flow graph).

    Parameters
    ----------
    kind:
        The :class:`OperationKind` of this operation.
    name:
        A human-readable label; defaults to the generated ``op_id``.
    op_id:
        Unique identifier within a flow.  Generated when omitted.
    output_schema:
        Schema of the records this operation emits.  Routers emit the same
        schema on every outgoing edge unless ``per_output_schemas`` is set
        in ``config``.
    config:
        Operation-specific configuration (predicate text, join keys,
        derivation expressions, target table, degree of parallelism, ...).
    properties:
        Runtime annotations used by the simulator and the static measure
        estimators (cost per tuple, selectivity, error rate, ...).
    """

    kind: OperationKind
    name: str = ""
    op_id: str = ""
    output_schema: Schema = field(default_factory=Schema)
    config: dict[str, Any] = field(default_factory=dict)
    properties: OperationProperties = field(default_factory=OperationProperties)

    def __post_init__(self) -> None:
        if not self.op_id:
            self.op_id = _next_operation_id(self.kind)
        if not self.name:
            self.name = self.op_id

    # -- convenience ----------------------------------------------------

    @property
    def category(self) -> OperationCategory:
        """Coarse category of this operation."""
        return self.kind.category

    @property
    def is_source(self) -> bool:
        return self.kind.is_source

    @property
    def is_sink(self) -> bool:
        return self.kind.is_sink

    @property
    def parallelism(self) -> int:
        """Configured degree of parallelism (1 when not parallelised)."""
        return int(self.config.get("parallelism", 1))

    def copy(self, **overrides: Any) -> "Operation":
        """Return a deep-ish copy of this operation with optional overrides.

        ``config`` and ``properties`` are copied so that mutations on the
        copy never leak back into the original flow -- pattern application
        relies on this.
        """
        new = replace(
            self,
            config=dict(self.config),
            properties=self.properties.copy(),
        )
        for key, value in overrides.items():
            setattr(new, key, value)
        return new

    def to_dict(self) -> dict[str, Any]:
        """Serialise the operation to a JSON-friendly structure."""
        return {
            "op_id": self.op_id,
            "name": self.name,
            "kind": self.kind.value,
            "output_schema": self.output_schema.to_dict(),
            "config": dict(self.config),
            "properties": self.properties.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Operation":
        """Deserialise an operation produced by :meth:`to_dict`."""
        return cls(
            kind=OperationKind(data["kind"]),
            name=str(data.get("name", "")),
            op_id=str(data.get("op_id", "")),
            output_schema=Schema.from_dict(data.get("output_schema", [])),
            config=dict(data.get("config", {})),
            properties=OperationProperties.from_dict(data.get("properties", {})),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Operation({self.kind.value!r}, id={self.op_id!r}, name={self.name!r})"
