"""ETL flow model substrate.

This package provides the data model on which the POIESIS planner operates:

* :mod:`repro.etl.schema` -- record schemas exchanged between operations,
* :mod:`repro.etl.operations` -- the taxonomy of ETL operation types,
* :mod:`repro.etl.properties` -- runtime annotations (cost, selectivity, ...),
* :mod:`repro.etl.graph` -- the ETL flow graph (nodes = operations,
  edges = transitions),
* :mod:`repro.etl.builder` -- a fluent builder for constructing flows,
* :mod:`repro.etl.validation` -- structural and schema consistency checks,
* :mod:`repro.etl.subflow` -- merging of sub-flows (pattern instances) into
  a host flow.
"""

from repro.etl.schema import DataType, Field, Schema
from repro.etl.operations import (
    Operation,
    OperationKind,
    OperationCategory,
)
from repro.etl.properties import OperationProperties
from repro.etl.graph import ETLGraph, Edge
from repro.etl.builder import FlowBuilder
from repro.etl.validation import ValidationError, ValidationIssue, validate_flow
from repro.etl.subflow import SubflowInsertion, insert_on_edge, replace_node, wrap_graph

__all__ = [
    "DataType",
    "Field",
    "Schema",
    "Operation",
    "OperationKind",
    "OperationCategory",
    "OperationProperties",
    "ETLGraph",
    "Edge",
    "FlowBuilder",
    "ValidationError",
    "ValidationIssue",
    "validate_flow",
    "SubflowInsertion",
    "insert_on_edge",
    "replace_node",
    "wrap_graph",
]
