"""Merging sub-flows (pattern instances) into a host ETL flow.

The internal representation of a Flow Component Pattern is an ETL flow in
the same format as the process flow on which it is deployed (Section 3 of
the paper).  Deploying a pattern therefore means *grafting* one ETL graph
into another at a valid application point:

* on an **edge** -- the pattern sub-flow is interposed between two
  consecutive operations (e.g. ``FilterNullValues`` between a source and
  its consumer);
* on a **node** -- the node is replaced by an equivalent sub-flow (e.g.
  ``ParallelizeTask`` replaces a derive operation by partition / parallel
  copies / merge);
* on the **graph** -- process-wide configuration is attached to the flow
  annotations (encryption, access control, scheduling).

All functions return a *new* flow; the host flow passed in is never
mutated.  The new flow is produced with ``host.copy()`` and therefore
inherits the host's copy mode: on a copy-on-write host the graft is
recorded as a structured :class:`~repro.etl.graph.GraphDelta` (operations
added, transitions rewired, annotations set) that downstream validation
and deduplication exploit, and every write to a grafted or shared
operation goes through the graph's copy-on-write fault.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.etl.graph import ETLGraph
from repro.etl.operations import Operation
from repro.etl.schema import Schema


@dataclass(frozen=True)
class SubflowInsertion:
    """Description of a sub-flow graft performed on a host flow.

    Attributes
    ----------
    host_name:
        Name of the host flow the graft was applied to.
    description:
        Human-readable description recorded in the flow lineage.
    added_operations:
        Identifiers (in the new flow) of the operations added by the graft.
    removed_operations:
        Identifiers of host operations removed by the graft (node
        replacement only).
    """

    host_name: str
    description: str
    added_operations: tuple[str, ...] = ()
    removed_operations: tuple[str, ...] = ()


def _unique_id(flow: ETLGraph, base: str) -> str:
    """Return an operation identifier not yet used in ``flow``.

    Collisions are disambiguated with a counter derived from the host
    flow itself (not from global state), so grafting is a pure function
    of the host and the sub-flow: repeated planning runs -- and the
    ``copy_mode="deep"`` vs ``"cow"`` arms of the generation benchmark --
    produce identically labelled operations.
    """
    candidate = base
    suffix = 2
    while candidate in flow:
        candidate = f"{base}__g{suffix}"
        suffix += 1
    return candidate


def _copy_subflow_into(
    host: ETLGraph, subflow: ETLGraph, suffix: str
) -> dict[str, str]:
    """Copy every operation of ``subflow`` into ``host`` with fresh identifiers.

    Returns the mapping from original sub-flow identifiers to the
    identifiers used inside the host flow.  Edges internal to the sub-flow
    are copied as well.
    """
    mapping: dict[str, str] = {}
    for op in subflow.operations():
        new_id = _unique_id(host, f"{op.op_id}__{suffix}")
        clone = op.copy()
        clone.op_id = new_id
        host.add_operation(clone)
        mapping[op.op_id] = new_id
    for edge in subflow.edges():
        # Both endpoints are freshly grafted nodes, acyclic by construction.
        host.add_edge(
            mapping[edge.source],
            mapping[edge.target],
            schema=edge.schema,
            label=edge.label,
            unchecked=True,
        )
    return mapping


def insert_on_edge(
    host: ETLGraph,
    edge_source: str,
    edge_target: str,
    subflow: ETLGraph,
    *,
    description: str = "",
    configure: Callable[[Operation, Schema], None] | None = None,
) -> tuple[ETLGraph, SubflowInsertion]:
    """Interpose ``subflow`` on the transition ``edge_source -> edge_target``.

    The sub-flow must have exactly one entry operation (no predecessors)
    and one exit operation (no successors).  The original transition is
    removed and replaced by ``edge_source -> entry`` and ``exit ->
    edge_target`` transitions.  Every grafted operation whose output schema
    is empty inherits the schema that flowed over the replaced transition,
    ensuring the consistency between data schemata the paper requires.

    Parameters
    ----------
    configure:
        Optional callback invoked for every grafted operation with the
        operation and the schema of the replaced transition, allowing the
        pattern to adapt its configuration to the application point.
    """
    if not host.has_edge(edge_source, edge_target):
        raise KeyError(f"host flow has no transition {edge_source!r} -> {edge_target!r}")
    entries = subflow.sources()
    exits = subflow.sinks()
    if len(entries) != 1 or len(exits) != 1:
        raise ValueError(
            "a sub-flow grafted on an edge needs exactly one entry and one exit "
            f"(got {len(entries)} entries, {len(exits)} exits)"
        )
    replaced_edge = host.edge(edge_source, edge_target)
    new_flow = host.copy()
    suffix = f"on_{edge_source}"
    mapping = _copy_subflow_into(new_flow, subflow, suffix)
    entry_id = mapping[entries[0].op_id]
    exit_id = mapping[exits[0].op_id]
    # Propagate the transition schema into schema-less grafted operations.
    for new_id in mapping.values():
        grafted = new_flow.mutable_operation(new_id)
        if len(grafted.output_schema) == 0:
            grafted.output_schema = replaced_edge.schema
        if configure is not None:
            configure(grafted, replaced_edge.schema)
    new_flow.remove_edge(edge_source, edge_target)
    # Interposing fresh nodes on an existing transition of a DAG cannot
    # close a cycle, so the insertion probes are skipped.
    new_flow.add_edge(
        edge_source, entry_id, schema=replaced_edge.schema, label=replaced_edge.label,
        unchecked=True,
    )
    new_flow.add_edge(
        exit_id, edge_target, schema=new_flow.operation(exit_id).output_schema, unchecked=True
    )
    insertion = SubflowInsertion(
        host_name=host.name,
        description=description or f"insert {subflow.name} on edge {edge_source}->{edge_target}",
        added_operations=tuple(mapping.values()),
    )
    new_flow.record_pattern(insertion.description)
    return new_flow, insertion


def replace_node(
    host: ETLGraph,
    op_id: str,
    subflow: ETLGraph,
    *,
    description: str = "",
    configure: Callable[[Operation, Operation], None] | None = None,
) -> tuple[ETLGraph, SubflowInsertion]:
    """Replace the operation ``op_id`` by the given sub-flow.

    Every incoming transition of the replaced node is redirected to the
    sub-flow entry, every outgoing transition leaves from the sub-flow
    exit.  The replaced operation is made available to the ``configure``
    callback so that the pattern can copy its cost model, schema or
    configuration (e.g. the parallel copies of a task must perform the same
    derivation as the original task).
    """
    if op_id not in host:
        raise KeyError(f"host flow has no operation {op_id!r}")
    entries = subflow.sources()
    exits = subflow.sinks()
    if len(entries) != 1 or len(exits) != 1:
        raise ValueError(
            "a sub-flow replacing a node needs exactly one entry and one exit "
            f"(got {len(entries)} entries, {len(exits)} exits)"
        )
    replaced = host.operation(op_id)
    incoming = [host.edge(p.op_id, op_id) for p in host.predecessors(op_id)]
    outgoing = [host.edge(op_id, s.op_id) for s in host.successors(op_id)]
    new_flow = host.copy()
    suffix = f"repl_{op_id}"
    mapping = _copy_subflow_into(new_flow, subflow, suffix)
    entry_id = mapping[entries[0].op_id]
    exit_id = mapping[exits[0].op_id]
    for new_id in mapping.values():
        grafted = new_flow.mutable_operation(new_id)
        if len(grafted.output_schema) == 0:
            grafted.output_schema = replaced.output_schema
        if configure is not None:
            configure(grafted, replaced)
    new_flow.remove_operation(op_id)
    # Rewiring the replaced node's transitions onto the fresh entry/exit
    # preserves acyclicity: any new cycle would imply a path between a
    # successor and a predecessor of the replaced node, i.e. a cycle
    # through it in the original DAG.
    for edge in incoming:
        new_flow.add_edge(edge.source, entry_id, schema=edge.schema, label=edge.label,
                          unchecked=True)
    for edge in outgoing:
        new_flow.add_edge(exit_id, edge.target, schema=edge.schema, label=edge.label,
                          unchecked=True)
    insertion = SubflowInsertion(
        host_name=host.name,
        description=description or f"replace node {op_id} by {subflow.name}",
        added_operations=tuple(mapping.values()),
        removed_operations=(op_id,),
    )
    new_flow.record_pattern(insertion.description)
    return new_flow, insertion


def wrap_graph(
    host: ETLGraph,
    annotation_key: str,
    annotation_value: object,
    *,
    description: str = "",
) -> tuple[ETLGraph, SubflowInsertion]:
    """Apply a process-wide (graph-level) configuration to the flow.

    Graph-level patterns (security configuration, resource-tier selection,
    schedule-frequency adjustment) do not add operations; they attach an
    annotation that the measure estimators interpret.
    """
    new_flow = host.copy()
    new_flow.set_annotation(annotation_key, annotation_value)
    insertion = SubflowInsertion(
        host_name=host.name,
        description=description or f"graph-level configuration {annotation_key}={annotation_value!r}",
    )
    new_flow.record_pattern(insertion.description)
    return new_flow, insertion
