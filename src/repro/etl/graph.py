"""The ETL flow graph.

Following the paper, an ETL process is modelled as one graph ``G`` with
components ``(V, E)``: each node represents an ETL flow operation and each
directed edge represents a transition from one operation to a successor
one.  :class:`ETLGraph` wraps a :class:`networkx.DiGraph` and adds the
ETL-specific structure (operations on nodes, schemas on edges, sources,
sinks, paths, cloning and annotation bookkeeping) that the planner and the
quality estimators rely on.

Pattern application produces thousands of near-identical flows, so the
graph supports two copying disciplines:

* ``copy(mode="deep")`` (the default) clones every operation payload --
  the seed behaviour, safe against arbitrary direct mutation;
* ``copy(mode="cow")`` shares the operation payloads between parent and
  child and only materializes an operation when a write touches it.  All
  mutation must then go through the graph methods (``mutable_operation``,
  ``set_annotation``, ``add_edge``, ...), which trigger the copy-on-write
  fault, record a structured :class:`GraphDelta` against the parent, and
  keep an incrementally maintained structural signature.

The delta makes downstream stages O(delta) as well: validation re-checks
only the delta neighbourhood (:func:`repro.etl.validation.validate_delta`)
and deduplication reuses the parent signature instead of re-hashing the
whole flow.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import networkx as nx

from repro.etl.operations import Operation, OperationKind
from repro.etl.schema import Schema

_graph_uid_counter = itertools.count(1)


def _probe_plain_dict_internals() -> bool:
    """Whether DiGraph stores nodes/adjacency in plain dicts (CPython default)."""
    probe = nx.DiGraph()
    try:
        return (
            isinstance(probe._node, dict)
            and isinstance(probe._succ, dict)
            and isinstance(probe._pred, dict)
        )
    except AttributeError:  # pragma: no cover - exotic networkx backends only
        return False


#: When true (the stock networkx implementation), ETLGraph copies share the
#: node/edge *attribute dicts* between parent and child and every write
#: replaces the leaf dict instead of mutating it, making a structure copy a
#: two-level dict copy.  When false, leaf dicts are copied defensively and
#: writes mutate in place (the seed behaviour).
_PLAIN_DICT_INTERNALS = _probe_plain_dict_internals()

#: networkx >= 3.3 keeps a per-graph backend-conversion cache that direct
#: adjacency writes must invalidate; older releases have no such cache, so
#: the invalidation degrades to a no-op there.
_clear_nx_cache = getattr(nx, "_clear_cache", lambda graph: None)


def _copy_structure(graph: nx.DiGraph, into: nx.DiGraph | None = None) -> nx.DiGraph:
    """A structure copy of a DiGraph sharing every inner dictionary.

    Cheaper than ``graph.copy()``: only the three *outer* dictionaries
    (nodes, successor and predecessor adjacency) are rebuilt -- flat
    pointer copies -- while the per-node adjacency dicts and the leaf
    attribute dicts (``{"operation": ...}`` / ``{"edge": ...}``) are
    shared.  Safe because :class:`ETLGraph` treats all inner dicts as
    copy-on-write: adjacency writes go through the ``_own_*`` faults and
    attribute writes replace leaf dicts instead of mutating them.  This
    runs once per pattern application, so the constant factor matters.
    """
    if not _PLAIN_DICT_INTERNALS:  # pragma: no cover - exotic backends only
        return graph.copy()
    clone = nx.DiGraph() if into is None else into
    clone.graph.update(graph.graph)
    clone._node.update(graph._node)
    clone._succ.update(graph._succ)
    clone._pred.update(graph._pred)
    return clone


@dataclass
class GraphDelta:
    """The net structural difference of a flow against its copy parent.

    Recorded automatically on graphs created with ``copy(mode="cow")``:
    every mutation performed through the :class:`ETLGraph` API updates the
    delta so that, at any point, replaying the delta on the parent yields
    the child.  Entries are *net* effects -- an operation added and then
    removed again leaves no trace.

    Attributes
    ----------
    ops_added / ops_removed:
        Identifiers of operations added to / removed from the parent.
    ops_modified:
        Identifiers of parent operations whose payload was materialized
        for writing (copy-on-write fault) or relabelled.
    edges_added / edges_removed:
        ``(source, target)`` pairs of transitions added / removed.
    edges_modified:
        Transitions whose schema was replaced in place.
    annotations_set:
        Graph annotations set through :meth:`ETLGraph.set_annotation`.
    """

    ops_added: set[str] = field(default_factory=set)
    ops_removed: set[str] = field(default_factory=set)
    ops_modified: set[str] = field(default_factory=set)
    edges_added: set[tuple[str, str]] = field(default_factory=set)
    edges_removed: set[tuple[str, str]] = field(default_factory=set)
    edges_modified: set[tuple[str, str]] = field(default_factory=set)
    annotations_set: dict[str, Any] = field(default_factory=dict)

    def is_empty(self) -> bool:
        """Whether the delta records no change at all."""
        return not (
            self.ops_added
            or self.ops_removed
            or self.ops_modified
            or self.edges_added
            or self.edges_removed
            or self.edges_modified
            or self.annotations_set
        )

    def touched_operations(self, flow: "ETLGraph") -> set[str]:
        """Identifiers of present operations whose neighbourhood changed.

        Covers added and materialized operations plus every endpoint of an
        added, removed or modified transition -- exactly the set whose
        degree, schema environment or payload may differ from the parent,
        and therefore the only operations delta validation re-checks.
        """
        ids = set(self.ops_added) | set(self.ops_modified)
        for source, target in itertools.chain(
            self.edges_added, self.edges_removed, self.edges_modified
        ):
            ids.add(source)
            ids.add(target)
        return {op_id for op_id in ids if op_id in flow}

    def summary(self) -> dict[str, int]:
        """Compact size report (used by generation statistics)."""
        return {
            "ops_added": len(self.ops_added),
            "ops_removed": len(self.ops_removed),
            "ops_modified": len(self.ops_modified),
            "edges_added": len(self.edges_added),
            "edges_removed": len(self.edges_removed),
            "edges_modified": len(self.edges_modified),
            "annotations_set": len(self.annotations_set),
        }

    def compose(self, later: "GraphDelta") -> "GraphDelta":
        """The net delta of applying this delta and then ``later``.

        Used by the alternative generator to validate a chain of pattern
        applications in one O(combined delta) pass against the base flow
        instead of once per step.  Composition goes through the same
        net-effect recording helpers, so transient changes that ``later``
        reverts (an operation added then removed, an edge restored)
        cancel out exactly as if the mutations had been recorded on one
        graph.
        """
        merged = GraphDelta(
            ops_added=set(self.ops_added),
            ops_removed=set(self.ops_removed),
            ops_modified=set(self.ops_modified),
            edges_added=set(self.edges_added),
            edges_removed=set(self.edges_removed),
            edges_modified=set(self.edges_modified),
            annotations_set=dict(self.annotations_set),
        )
        for op_id in later.ops_removed:
            merged.record_op_removed(op_id)
        for op_id in later.ops_added:
            merged.record_op_added(op_id)
        for op_id in later.ops_modified:
            merged.record_op_modified(op_id)
        for key in later.edges_removed:
            merged.record_edge_removed(key)
        for key in later.edges_added:
            merged.record_edge_added(key)
        for key in later.edges_modified:
            merged.record_edge_modified(key)
        merged.annotations_set.update(later.annotations_set)
        return merged

    def is_structural(self) -> bool:
        """Whether the delta changes anything validation could observe."""
        return bool(
            self.ops_added
            or self.ops_removed
            or self.ops_modified
            or self.edges_added
            or self.edges_removed
            or self.edges_modified
        )

    # -- recording helpers (net-effect bookkeeping) ---------------------

    def record_op_added(self, op_id: str) -> None:
        if op_id in self.ops_removed:
            # Removed and re-added: the payload may differ from the parent.
            self.ops_removed.discard(op_id)
            self.ops_modified.add(op_id)
        else:
            self.ops_added.add(op_id)

    def record_op_removed(self, op_id: str) -> None:
        if op_id in self.ops_added:
            self.ops_added.discard(op_id)
        else:
            self.ops_modified.discard(op_id)
            self.ops_removed.add(op_id)

    def record_op_modified(self, op_id: str) -> None:
        if op_id not in self.ops_added:
            self.ops_modified.add(op_id)

    def record_edge_added(self, key: tuple[str, str]) -> None:
        if key in self.edges_removed:
            self.edges_removed.discard(key)
            self.edges_modified.add(key)
        else:
            self.edges_added.add(key)

    def record_edge_removed(self, key: tuple[str, str]) -> None:
        if key in self.edges_added:
            self.edges_added.discard(key)
        else:
            self.edges_modified.discard(key)
            self.edges_removed.add(key)

    def record_edge_modified(self, key: tuple[str, str]) -> None:
        if key not in self.edges_added:
            self.edges_modified.add(key)


@dataclass(frozen=True)
class Edge:
    """A directed transition between two operations.

    The ``schema`` describes the records flowing over the transition; the
    ``label`` distinguishes multiple outputs of a router node (e.g. the
    "error"/"ok" branches of a validation split).
    """

    source: str
    target: str
    schema: Schema = field(default_factory=Schema)
    label: str = ""

    def key(self) -> tuple[str, str]:
        """The ``(source, target)`` pair identifying this edge in the graph."""
        return (self.source, self.target)


class ETLGraph:
    """A directed acyclic graph of ETL operations.

    The graph offers dictionary-style access to operations by their
    ``op_id`` and exposes the structural queries needed by the pattern
    applicability checks (sources, sinks, topological order, longest path,
    fan-in/fan-out) and by the manageability measures.
    """

    def __init__(self, name: str = "etl_flow") -> None:
        self.name = name
        self._graph: nx.DiGraph = nx.DiGraph()
        self.annotations: dict[str, Any] = {}
        self._lineage: list[str] = []
        # Copy-on-write bookkeeping.  ``_shared_ops`` holds identifiers of
        # operations whose payload is shared with another graph and must be
        # materialized before any write; ``_delta`` (COW children only)
        # records the net difference against the copy parent; ``_parent_sig``
        # snapshots the parent's structural signature at fork time so the
        # child's signature is computed by merging the delta instead of
        # re-hashing the whole flow.
        self._copy_mode: str = "deep"
        self._shared_ops: set[str] = set()
        # Adjacency copy-on-write: when ``_shared_adj`` is set (after a
        # COW fork, on both sides), the per-node adjacency dicts may be
        # shared with another graph; ``_own_succ``/``_own_pred`` name the
        # nodes whose dicts this graph has already privatized.
        self._shared_adj: bool = False
        self._own_succ: set[str] | None = None
        self._own_pred: set[str] | None = None
        self._delta: GraphDelta | None = None
        self._parent_uid: int | None = None
        self._parent_sig: tuple | None = None
        self._parent_ref: "ETLGraph | None" = None
        self._sig_cache: tuple | None = None
        self._uid: int = next(_graph_uid_counter)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _dirty(self) -> None:
        """Invalidate the cached structural signature after a mutation."""
        self._sig_cache = None

    def _succ_of(self, op_id: str) -> dict:
        """The successor dict of ``op_id``, privatized for writing."""
        graph = self._graph
        if self._shared_adj and op_id not in self._own_succ:
            graph._succ[op_id] = dict(graph._succ[op_id])
            self._own_succ.add(op_id)
        return graph._succ[op_id]

    def _pred_of(self, op_id: str) -> dict:
        """The predecessor dict of ``op_id``, privatized for writing."""
        graph = self._graph
        if self._shared_adj and op_id not in self._own_pred:
            graph._pred[op_id] = dict(graph._pred[op_id])
            self._own_pred.add(op_id)
        return graph._pred[op_id]

    def _materialize_adjacency(self) -> None:
        """Privatize every adjacency dict (before bulk nx-level mutation)."""
        if not self._shared_adj:
            return
        graph = self._graph
        for op_id in graph._succ:
            if op_id not in self._own_succ:
                graph._succ[op_id] = dict(graph._succ[op_id])
        for op_id in graph._pred:
            if op_id not in self._own_pred:
                graph._pred[op_id] = dict(graph._pred[op_id])
        self._shared_adj = False
        self._own_succ = None
        self._own_pred = None

    def _write_operation_payload(self, op_id: str, operation: Operation) -> None:
        """Replace the payload of an existing node, alias-preserving.

        A fresh leaf dict is installed so that graphs sharing the old leaf
        (copy parents/children) are unaffected.
        """
        if _PLAIN_DICT_INTERNALS:
            self._graph._node[op_id] = {"operation": operation}
        else:  # pragma: no cover - exotic networkx backends only
            self._graph.nodes[op_id]["operation"] = operation

    def _write_edge_record(self, source: str, target: str, edge: Edge) -> None:
        """Insert or replace the record of an edge, alias-preserving.

        Installs a fresh leaf dict into both adjacency directions (the
        networkx invariant: ``_succ[u][v] is _pred[v][u]``), leaving any
        old leaf shared with copies untouched.  Both endpoints must exist.
        """
        if _PLAIN_DICT_INTERNALS:
            attr = {"edge": edge}
            self._succ_of(source)[target] = attr
            self._pred_of(target)[source] = attr
            _clear_nx_cache(self._graph)
        else:  # pragma: no cover - exotic networkx backends only
            self._graph.add_edge(source, target, edge=edge)

    def add_operation(self, operation: Operation) -> Operation:
        """Add an operation as a new node.

        Raises
        ------
        ValueError
            If an operation with the same ``op_id`` already exists.
        """
        if operation.op_id in self._graph:
            raise ValueError(f"duplicate operation id: {operation.op_id!r}")
        self._graph.add_node(operation.op_id, operation=operation)
        if self._shared_adj:
            # The freshly created adjacency dicts are private already.
            self._own_succ.add(operation.op_id)
            self._own_pred.add(operation.op_id)
        self._dirty()
        if self._delta is not None:
            self._delta.record_op_added(operation.op_id)
        return operation

    def add_edge(
        self,
        source: str | Operation,
        target: str | Operation,
        schema: Schema | None = None,
        label: str = "",
        *,
        unchecked: bool = False,
    ) -> Edge:
        """Add a transition between two existing operations.

        When ``schema`` is omitted, the output schema of the source
        operation is used, which is the common case for linear pipelines.
        ``unchecked=True`` skips the cycle probe; it is reserved for
        callers that guarantee acyclicity by construction (cloning an
        existing DAG, grafting fresh nodes), where the probe would
        re-traverse the flow for nothing.
        """
        source_id = source.op_id if isinstance(source, Operation) else source
        target_id = target.op_id if isinstance(target, Operation) else target
        if source_id not in self._graph:
            raise KeyError(f"unknown source operation: {source_id!r}")
        if target_id not in self._graph:
            raise KeyError(f"unknown target operation: {target_id!r}")
        if source_id == target_id:
            raise ValueError(f"self-loop on {source_id!r} is not allowed in an ETL flow")
        # The graph was acyclic before, so the new edge closes a cycle iff
        # the target already reaches the source.  This early-exiting
        # reachability probe replaces a full-graph DAG recomputation and
        # keeps edge insertion proportional to the affected region.
        if not unchecked and nx.has_path(self._graph, target_id, source_id):
            raise ValueError(
                f"adding edge {source_id!r} -> {target_id!r} would create a cycle"
            )
        effective_schema = schema if schema is not None else self.operation(source_id).output_schema
        edge = Edge(source=source_id, target=target_id, schema=effective_schema, label=label)
        self._write_edge_record(source_id, target_id, edge)
        self._dirty()
        if self._delta is not None:
            self._delta.record_edge_added((source_id, target_id))
        return edge

    def remove_edge(self, source: str, target: str) -> None:
        """Remove the transition ``source -> target``."""
        if not self._graph.has_edge(source, target):
            raise KeyError(f"no edge {source!r} -> {target!r}")
        if _PLAIN_DICT_INTERNALS:
            del self._succ_of(source)[target]
            del self._pred_of(target)[source]
            _clear_nx_cache(self._graph)
        else:  # pragma: no cover - exotic networkx backends only
            self._graph.remove_edge(source, target)
        self._dirty()
        if self._delta is not None:
            self._delta.record_edge_removed((source, target))

    def remove_operation(self, op_id: str) -> None:
        """Remove an operation and all its incident transitions."""
        if op_id not in self._graph:
            raise KeyError(f"unknown operation: {op_id!r}")
        incident = [
            *((pred, op_id) for pred in self._graph.predecessors(op_id)),
            *((op_id, succ) for succ in self._graph.successors(op_id)),
        ]
        if _PLAIN_DICT_INTERNALS:
            graph = self._graph
            for pred, _ in incident:
                if pred != op_id:
                    del self._succ_of(pred)[op_id]
            for _, succ in incident:
                if succ != op_id:
                    del self._pred_of(succ)[op_id]
            del graph._succ[op_id]
            del graph._pred[op_id]
            del graph._node[op_id]
            if self._shared_adj:
                self._own_succ.discard(op_id)
                self._own_pred.discard(op_id)
            _clear_nx_cache(graph)
        else:  # pragma: no cover - exotic networkx backends only
            self._graph.remove_node(op_id)
        self._shared_ops.discard(op_id)
        self._dirty()
        if self._delta is not None:
            for key in incident:
                self._delta.record_edge_removed(key)
            self._delta.record_op_removed(op_id)

    def relabel_operation(self, op_id: str, new_id: str) -> None:
        """Change the identifier of an operation (keeping all edges)."""
        if op_id not in self._graph:
            raise KeyError(f"unknown operation: {op_id!r}")
        if new_id in self._graph:
            raise ValueError(f"operation id already in use: {new_id!r}")
        # Materialize before touching ``op_id``: the payload may be shared
        # with a copy parent/child, and ``nx.relabel_nodes(copy=False)``
        # would otherwise rename the operation inside *both* graphs.
        operation = self.mutable_operation(op_id)
        incident = [
            *((pred, op_id) for pred in self._graph.predecessors(op_id)),
            *((op_id, succ) for succ in self._graph.successors(op_id)),
        ]
        operation.op_id = new_id
        # ``relabel_nodes(copy=False)`` mutates adjacency dicts at the
        # networkx level, below the copy-on-write faults: privatize the
        # whole adjacency first so shared state stays untouched.
        self._materialize_adjacency()
        nx.relabel_nodes(self._graph, {op_id: new_id}, copy=False)
        self._dirty()
        if self._delta is not None:
            for key in incident:
                self._delta.record_edge_removed(key)
            self._delta.record_op_removed(op_id)
            self._delta.record_op_added(new_id)
            for source, target in incident:
                renamed = (
                    new_id if source == op_id else source,
                    new_id if target == op_id else target,
                )
                self._delta.record_edge_added(renamed)
        # Rebuild edge records referencing the old identifier (fresh leaf
        # dicts, so records shared with copies stay intact).
        for pred in list(self._graph.predecessors(new_id)):
            old_edge: Edge = self._graph.edges[pred, new_id]["edge"]
            self._write_edge_record(
                pred,
                new_id,
                Edge(source=pred, target=new_id, schema=old_edge.schema, label=old_edge.label),
            )
        for succ in list(self._graph.successors(new_id)):
            old_edge = self._graph.edges[new_id, succ]["edge"]
            self._write_edge_record(
                new_id,
                succ,
                Edge(source=new_id, target=succ, schema=old_edge.schema, label=old_edge.label),
            )

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def __contains__(self, op_id: object) -> bool:
        return op_id in self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def operation(self, op_id: str) -> Operation:
        """Return the operation with the given identifier (read-only view).

        On copy-on-write graphs the returned payload may be shared with
        the copy parent; callers intending to mutate it must use
        :meth:`mutable_operation` instead.
        """
        try:
            # Reach into the node dict directly: this is the hottest
            # accessor of the whole planner (validation, estimation and
            # pattern checks all funnel through it).
            if _PLAIN_DICT_INTERNALS:
                return self._graph._node[op_id]["operation"]
            return self._graph.nodes[op_id]["operation"]
        except KeyError as exc:
            raise KeyError(f"unknown operation: {op_id!r}") from exc

    def mutable_operation(self, op_id: str) -> Operation:
        """Return the operation, materializing it first if its payload is shared.

        This is the copy-on-write fault: on a ``copy(mode="cow")`` graph
        (or its parent) the operation payload is replaced by a private
        copy before being handed out, so in-place mutation never leaks
        across the copy boundary.  On fully owned graphs this is the same
        as :meth:`operation`.  The operation is recorded as modified in
        the graph delta and the cached signature is invalidated; callers
        must finish mutating before the signature is read again.
        """
        operation = self.operation(op_id)
        if op_id in self._shared_ops:
            operation = operation.copy()
            self._write_operation_payload(op_id, operation)
            self._shared_ops.discard(op_id)
        self._dirty()
        if self._delta is not None:
            self._delta.record_op_modified(op_id)
        return operation

    def operations(self) -> list[Operation]:
        """All operations, in insertion order."""
        return [data["operation"] for _, data in self._graph.nodes(data=True)]

    def operation_ids(self) -> list[str]:
        """All operation identifiers, in insertion order."""
        return list(self._graph.nodes())

    def edges(self) -> list[Edge]:
        """All transitions of the flow."""
        return [data["edge"] for _, _, data in self._graph.edges(data=True)]

    def edge(self, source: str, target: str) -> Edge:
        """Return the transition ``source -> target``."""
        try:
            if _PLAIN_DICT_INTERNALS:
                return self._graph._succ[source][target]["edge"]
            return self._graph.edges[source, target]["edge"]
        except KeyError as exc:
            raise KeyError(f"no edge {source!r} -> {target!r}") from exc

    def has_edge(self, source: str, target: str) -> bool:
        """Whether the transition ``source -> target`` exists."""
        return self._graph.has_edge(source, target)

    def set_edge_schema(self, source: str, target: str, schema: Schema) -> None:
        """Replace the schema carried by an existing transition."""
        existing = self.edge(source, target)
        self._write_edge_record(
            source,
            target,
            Edge(source=source, target=target, schema=schema, label=existing.label),
        )
        self._dirty()
        if self._delta is not None:
            self._delta.record_edge_modified((source, target))

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Number of operations in the flow."""
        return self._graph.number_of_nodes()

    @property
    def edge_count(self) -> int:
        """Number of transitions in the flow."""
        return self._graph.number_of_edges()

    def sources(self) -> list[Operation]:
        """Operations with no predecessors (the extraction points)."""
        return [self.operation(n) for n in self._graph.nodes() if self._graph.in_degree(n) == 0]

    def sinks(self) -> list[Operation]:
        """Operations with no successors (the loading points)."""
        return [self.operation(n) for n in self._graph.nodes() if self._graph.out_degree(n) == 0]

    def has_source(self) -> bool:
        """Whether at least one operation has no predecessors (early exit)."""
        return any(not preds for preds in self._graph.pred.values())

    def has_sink(self) -> bool:
        """Whether at least one operation has no successors (early exit)."""
        return any(not succs for succs in self._graph.succ.values())

    def predecessors(self, op_id: str) -> list[Operation]:
        """Operations feeding directly into ``op_id``."""
        return [self.operation(n) for n in self._graph.predecessors(op_id)]

    def successors(self, op_id: str) -> list[Operation]:
        """Operations fed directly by ``op_id``."""
        return [self.operation(n) for n in self._graph.successors(op_id)]

    def in_degree(self, op_id: str) -> int:
        """Number of incoming transitions of ``op_id``."""
        if _PLAIN_DICT_INTERNALS:
            return len(self._graph._pred[op_id])
        return int(self._graph.in_degree(op_id))

    def out_degree(self, op_id: str) -> int:
        """Number of outgoing transitions of ``op_id``."""
        if _PLAIN_DICT_INTERNALS:
            return len(self._graph._succ[op_id])
        return int(self._graph.out_degree(op_id))

    def topological_order(self) -> list[Operation]:
        """Operations in a topological order (sources first)."""
        return [self.operation(n) for n in nx.topological_sort(self._graph)]

    def longest_path_length(self) -> int:
        """Length (in edges) of the longest path of the flow.

        This is the "length of process workflow's longest path"
        manageability measure of Fig. 1.
        """
        if self.node_count == 0:
            return 0
        return int(nx.dag_longest_path_length(self._graph))

    def longest_path(self) -> list[Operation]:
        """Operations along one longest path of the flow."""
        if self.node_count == 0:
            return []
        return [self.operation(n) for n in nx.dag_longest_path(self._graph)]

    def upstream_of(self, op_id: str) -> set[str]:
        """Identifiers of every operation from which ``op_id`` is reachable."""
        return set(nx.ancestors(self._graph, op_id))

    def downstream_of(self, op_id: str) -> set[str]:
        """Identifiers of every operation reachable from ``op_id``."""
        return set(nx.descendants(self._graph, op_id))

    def distance_from_sources(self, op_id: str) -> int:
        """Shortest number of hops from any source operation to ``op_id``.

        Used by the placement heuristics that push data-cleaning patterns
        as close as possible to the extraction operations.
        """
        if op_id not in self._graph:
            raise KeyError(f"unknown operation: {op_id!r}")
        best: int | None = None
        for source in self.sources():
            try:
                distance = nx.shortest_path_length(self._graph, source.op_id, op_id)
            except nx.NetworkXNoPath:
                continue
            if best is None or distance < best:
                best = distance
        return 0 if best is None else int(best)

    def distance_to_sinks(self, op_id: str) -> int:
        """Shortest number of hops from ``op_id`` to any sink operation."""
        if op_id not in self._graph:
            raise KeyError(f"unknown operation: {op_id!r}")
        best: int | None = None
        for sink in self.sinks():
            try:
                distance = nx.shortest_path_length(self._graph, op_id, sink.op_id)
            except nx.NetworkXNoPath:
                continue
            if best is None or distance < best:
                best = distance
        return 0 if best is None else int(best)

    def operations_of_kind(self, *kinds: OperationKind) -> list[Operation]:
        """All operations whose kind is one of ``kinds``."""
        wanted = set(kinds)
        return [op for op in self.operations() if op.kind in wanted]

    def is_connected(self) -> bool:
        """Whether the flow forms a single weakly connected component."""
        if self.node_count == 0:
            return True
        return nx.is_weakly_connected(self._graph)

    def coupling(self) -> float:
        """Average fan-in/fan-out coupling of the flow.

        Defined as ``edges / nodes``; a linear pipeline has coupling just
        below 1, heavily branching flows have higher coupling.  This is the
        "coupling of process workflow" manageability measure of Fig. 1.
        """
        if self.node_count == 0:
            return 0.0
        return self.edge_count / self.node_count

    def merge_element_count(self) -> int:
        """Number of operations that combine multiple data inputs.

        This is the "# of merge elements in the process model"
        manageability measure of Fig. 1.  Operations with an in-degree
        above one are counted as well, because structurally they merge
        branches even if their declared kind is not a merger.
        """
        count = 0
        for op in self.operations():
            if op.kind.is_merger or self.in_degree(op.op_id) > 1:
                count += 1
        return count

    # ------------------------------------------------------------------
    # Lineage / annotations
    # ------------------------------------------------------------------

    @property
    def applied_patterns(self) -> list[str]:
        """Human-readable record of the pattern applications that produced this flow."""
        return list(self._lineage)

    def record_pattern(self, description: str) -> None:
        """Append a pattern application record to the flow lineage."""
        self._lineage.append(description)

    def set_annotation(self, key: str, value: Any) -> None:
        """Set a graph-level annotation, recording it in the delta.

        Equivalent to assigning into :attr:`annotations` directly, but
        visible to delta-based tooling; graph-level patterns go through
        here.  (The signature always reads the live annotation dict, so
        direct assignment stays correct as well.)
        """
        self.annotations[key] = value
        if self._delta is not None:
            self._delta.annotations_set[key] = value

    # ------------------------------------------------------------------
    # Delta / derivation introspection
    # ------------------------------------------------------------------

    @property
    def copy_mode(self) -> str:
        """The copy discipline later ``copy()`` calls default to."""
        return self._copy_mode

    @property
    def delta(self) -> GraphDelta | None:
        """The recorded delta against the copy parent (COW children only)."""
        return self._delta

    def derived_from(self, parent: "ETLGraph") -> bool:
        """Whether this graph was produced by ``parent.copy(mode="cow")``.

        Used by the alternative generator to decide if the recorded delta
        can be chained onto the parent's validation state.
        """
        return self._parent_uid is not None and self._parent_uid == parent._uid

    # ------------------------------------------------------------------
    # Copying / comparison
    # ------------------------------------------------------------------

    def copy(self, name: str | None = None, mode: str | None = None) -> "ETLGraph":
        """Return an independent copy of the flow.

        Both modes yield a copy that *observably* evolves independently
        of the original -- the difference is the write discipline required
        to keep it that way:

        * ``"deep"`` clones every operation payload up front.  The copy
          tolerates arbitrary direct mutation, including writing through
          ``operation(...)`` results -- the reference semantics.
        * ``"cow"`` shares operation payloads and adjacency with this
          graph until first write.  All mutation of the copy (and of
          this graph, while shared) must go through the graph API --
          :meth:`mutable_operation`, :meth:`set_annotation`,
          :meth:`add_edge`, ... -- which materializes the touched piece,
          records the change in the child's :class:`GraphDelta`
          (:attr:`delta`), and maintains :meth:`signature`
          incrementally.  Constant-time fork, O(delta) downstream
          validation/deduplication.

        Parameters
        ----------
        name:
            Optional name of the copy (defaults to this flow's name).
        mode:
            ``"deep"``, ``"cow"``, or ``None`` (the default) to inherit
            this graph's own copy mode -- so a planning run switched to
            COW propagates it through every pattern application without
            the patterns knowing.
        """
        effective = mode or self._copy_mode
        if effective == "cow":
            return self._cow_copy(name)
        if effective != "deep":
            raise ValueError(f"unknown copy mode: {effective!r}")
        clone = ETLGraph(name=name or self.name)
        for op in self.operations():
            clone.add_operation(op.copy())
        for edge in self.edges():
            # Cloning a DAG cannot introduce a cycle.
            clone.add_edge(
                edge.source, edge.target, schema=edge.schema, label=edge.label, unchecked=True
            )
        clone.annotations = dict(self.annotations)
        clone._lineage = list(self._lineage)
        return clone

    def cow_base(self, name: str | None = None) -> "ETLGraph":
        """A private deep snapshot whose future copies default to COW.

        Used by the alternative generator: the caller's flow is
        deep-copied exactly once -- so it never shares payloads with
        generated candidates and the seed idiom of mutating a deep
        flow's operations directly keeps working -- while every flow
        derived from the snapshot forks copy-on-write.
        """
        base = self.copy(name=name, mode="deep")
        base._copy_mode = "cow"
        return base

    def _cow_copy(self, name: str | None = None) -> "ETLGraph":
        """A copy sharing operation payloads with this graph (copy-on-write).

        The graph *structure* (node/edge dictionaries) is copied so the
        two flows evolve independently, but the :class:`Operation`
        payloads are shared and marked as such on **both** sides: whoever
        writes first -- through :meth:`mutable_operation` -- materializes
        a private copy, so neither graph can observe the other's
        mutations.  The child records every subsequent mutation in its
        delta and snapshots the parent's structural signature for
        incremental signature maintenance.

        Forking the *same* parent repeatedly is cheap and safe: the
        parent is never materialized, each fork only re-marks its
        payloads and adjacency as shared.  The alternative generator's
        prefix cache leans on this -- one cached prefix flow is extended
        into many sibling candidates, each a fresh fork of the same
        unchanged parent.
        """
        clone = ETLGraph(name=name or self.name)
        clone._graph = _copy_structure(self._graph, into=clone._graph)
        clone.annotations = dict(self.annotations)
        clone._lineage = list(self._lineage)
        clone._copy_mode = "cow"
        shared = set(self._graph._node if _PLAIN_DICT_INTERNALS else self._graph.nodes)
        clone._shared_ops = shared
        if len(self._shared_ops) != len(shared):
            # ``_shared_ops`` only ever holds present operations, so equal
            # size means equal sets: a parent forked repeatedly without
            # intervening writes (the prefix-cache hot path) skips
            # rebuilding its marker set on every fork.
            self._shared_ops = set(shared)
        # After the fork every adjacency dict is shared between the two
        # graphs, so both sides restart their copy-on-write tracking.
        clone._shared_adj = True
        clone._own_succ = set()
        clone._own_pred = set()
        if not self._shared_adj or self._own_succ or self._own_pred:
            self._shared_adj = True
            self._own_succ = set()
            self._own_pred = set()
        clone._delta = GraphDelta()
        clone._parent_uid = self._uid
        # The parent's structural signature is captured lazily, on the
        # child's first signature request: candidates discarded before
        # deduplication never pay for it.  The reference is dropped as
        # soon as the signature is resolved, so no parent chain is kept
        # alive beyond that point.
        clone._parent_ref = self
        return clone

    def structurally_equal(self, other: "ETLGraph") -> bool:
        """Whether two flows have the same operations (by id/kind) and transitions."""
        if set(self.operation_ids()) != set(other.operation_ids()):
            return False
        for op_id in self.operation_ids():
            if self.operation(op_id).kind != other.operation(op_id).kind:
                return False
        mine = {(e.source, e.target) for e in self.edges()}
        theirs = {(e.source, e.target) for e in other.edges()}
        return mine == theirs

    def signature(self) -> tuple:
        """A hashable signature used to deduplicate alternatives.

        Covers the structure (operations with kind and parallelism, plus
        transitions) *and* the graph annotations, so that graph-level
        (annotation-only) patterns produce distinguishable flows instead
        of being pruned as duplicates of their host.  The structural part
        is cached on copy-on-write graphs and maintained incrementally
        from the parent signature plus the recorded delta; the annotation
        part is always read live (annotation dicts are tiny and may be
        assigned directly).
        """
        nodes, edges = self._structural_signature()
        annotations = tuple(
            sorted((str(k), repr(v)) for k, v in self.annotations.items())
        )
        return (nodes, edges, annotations)

    def _structural_signature(self) -> tuple:
        """The (nodes, edges) part of the signature, cached on COW graphs."""
        if self._sig_cache is not None:
            return self._sig_cache
        if self._parent_sig is None and self._parent_ref is not None:
            self._parent_sig = self._parent_ref._structural_signature()
            self._parent_ref = None
        if self._parent_sig is not None and self._delta is not None:
            signature = self._merge_parent_signature()
        else:
            nodes = tuple(
                sorted((op.op_id, op.kind.value, op.parallelism) for op in self.operations())
            )
            edges = tuple(sorted((e.source, e.target) for e in self.edges()))
            signature = (nodes, edges)
        if self._copy_mode == "cow":
            # Only COW graphs funnel every mutation through the graph API,
            # so only they can invalidate the cache reliably; deep graphs
            # recompute each time, exactly like the seed.
            self._sig_cache = signature
        return signature

    def _merge_parent_signature(self) -> tuple:
        """Parent structural signature + delta -> this graph's signature."""
        parent_nodes, parent_edges = self._parent_sig
        delta = self._delta
        changed = delta.ops_added | delta.ops_modified
        gone = delta.ops_removed | changed
        nodes = [entry for entry in parent_nodes if entry[0] not in gone]
        for op_id in changed:
            if op_id in self._graph:
                op = self._graph.nodes[op_id]["operation"]
                nodes.append((op.op_id, op.kind.value, op.parallelism))
        edge_gone = delta.edges_removed | delta.edges_added
        edges = [key for key in parent_edges if key not in edge_gone]
        edges.extend(key for key in delta.edges_added if self._graph.has_edge(*key))
        return (tuple(sorted(nodes)), tuple(sorted(edges)))

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict[str, Any]:
        """Materialize shared operation payloads before pickling.

        Process-pool workers receive flows by pickle; materializing here
        guarantees that no operation object is shared between a parent
        and a child pickled in the same payload, so an unpickled COW
        graph is always fully self-contained and safely mutable.
        """
        state = self.__dict__.copy()
        if self._shared_ops or self._shared_adj:
            graph = self._graph.copy()
            for op_id in self._shared_ops:
                graph.nodes[op_id]["operation"] = graph.nodes[op_id]["operation"].copy()
            state["_graph"] = graph
            state["_shared_ops"] = set()
            state["_shared_adj"] = False
            state["_own_succ"] = None
            state["_own_pred"] = None
        if self._parent_ref is not None:
            # Never drag the copy-parent chain through pickle; the
            # unpickled graph recomputes its signature from scratch.
            state["_parent_ref"] = None
            state["_parent_sig"] = None
        return state

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------

    def to_networkx(self) -> nx.DiGraph:
        """Return (a copy of) the underlying networkx graph."""
        return self._graph.copy()

    def to_dict(self) -> dict[str, Any]:
        """Serialise the whole flow to a JSON-friendly structure."""
        return {
            "name": self.name,
            "annotations": dict(self.annotations),
            "applied_patterns": list(self._lineage),
            "operations": [op.to_dict() for op in self.operations()],
            "edges": [
                {
                    "source": e.source,
                    "target": e.target,
                    "label": e.label,
                    "schema": e.schema.to_dict(),
                }
                for e in self.edges()
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ETLGraph":
        """Deserialise a flow produced by :meth:`to_dict`."""
        flow = cls(name=str(data.get("name", "etl_flow")))
        for op_data in data.get("operations", []):
            flow.add_operation(Operation.from_dict(op_data))
        for edge_data in data.get("edges", []):
            flow.add_edge(
                str(edge_data["source"]),
                str(edge_data["target"]),
                schema=Schema.from_dict(edge_data.get("schema", [])),
                label=str(edge_data.get("label", "")),
            )
        flow.annotations = dict(data.get("annotations", {}))
        flow._lineage = [str(item) for item in data.get("applied_patterns", [])]
        return flow

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ETLGraph(name={self.name!r}, operations={self.node_count}, "
            f"transitions={self.edge_count})"
        )
