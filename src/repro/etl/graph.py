"""The ETL flow graph.

Following the paper, an ETL process is modelled as one graph ``G`` with
components ``(V, E)``: each node represents an ETL flow operation and each
directed edge represents a transition from one operation to a successor
one.  :class:`ETLGraph` wraps a :class:`networkx.DiGraph` and adds the
ETL-specific structure (operations on nodes, schemas on edges, sources,
sinks, paths, cloning and annotation bookkeeping) that the planner and the
quality estimators rely on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import networkx as nx

from repro.etl.operations import Operation, OperationKind
from repro.etl.schema import Schema


@dataclass(frozen=True)
class Edge:
    """A directed transition between two operations.

    The ``schema`` describes the records flowing over the transition; the
    ``label`` distinguishes multiple outputs of a router node (e.g. the
    "error"/"ok" branches of a validation split).
    """

    source: str
    target: str
    schema: Schema = field(default_factory=Schema)
    label: str = ""

    def key(self) -> tuple[str, str]:
        """The ``(source, target)`` pair identifying this edge in the graph."""
        return (self.source, self.target)


class ETLGraph:
    """A directed acyclic graph of ETL operations.

    The graph offers dictionary-style access to operations by their
    ``op_id`` and exposes the structural queries needed by the pattern
    applicability checks (sources, sinks, topological order, longest path,
    fan-in/fan-out) and by the manageability measures.
    """

    def __init__(self, name: str = "etl_flow") -> None:
        self.name = name
        self._graph: nx.DiGraph = nx.DiGraph()
        self.annotations: dict[str, Any] = {}
        self._lineage: list[str] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_operation(self, operation: Operation) -> Operation:
        """Add an operation as a new node.

        Raises
        ------
        ValueError
            If an operation with the same ``op_id`` already exists.
        """
        if operation.op_id in self._graph:
            raise ValueError(f"duplicate operation id: {operation.op_id!r}")
        self._graph.add_node(operation.op_id, operation=operation)
        return operation

    def add_edge(
        self,
        source: str | Operation,
        target: str | Operation,
        schema: Schema | None = None,
        label: str = "",
    ) -> Edge:
        """Add a transition between two existing operations.

        When ``schema`` is omitted, the output schema of the source
        operation is used, which is the common case for linear pipelines.
        """
        source_id = source.op_id if isinstance(source, Operation) else source
        target_id = target.op_id if isinstance(target, Operation) else target
        if source_id not in self._graph:
            raise KeyError(f"unknown source operation: {source_id!r}")
        if target_id not in self._graph:
            raise KeyError(f"unknown target operation: {target_id!r}")
        if source_id == target_id:
            raise ValueError(f"self-loop on {source_id!r} is not allowed in an ETL flow")
        effective_schema = schema if schema is not None else self.operation(source_id).output_schema
        edge = Edge(source=source_id, target=target_id, schema=effective_schema, label=label)
        self._graph.add_edge(source_id, target_id, edge=edge)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(source_id, target_id)
            raise ValueError(
                f"adding edge {source_id!r} -> {target_id!r} would create a cycle"
            )
        return edge

    def remove_edge(self, source: str, target: str) -> None:
        """Remove the transition ``source -> target``."""
        if not self._graph.has_edge(source, target):
            raise KeyError(f"no edge {source!r} -> {target!r}")
        self._graph.remove_edge(source, target)

    def remove_operation(self, op_id: str) -> None:
        """Remove an operation and all its incident transitions."""
        if op_id not in self._graph:
            raise KeyError(f"unknown operation: {op_id!r}")
        self._graph.remove_node(op_id)

    def relabel_operation(self, op_id: str, new_id: str) -> None:
        """Change the identifier of an operation (keeping all edges)."""
        if op_id not in self._graph:
            raise KeyError(f"unknown operation: {op_id!r}")
        if new_id in self._graph:
            raise ValueError(f"operation id already in use: {new_id!r}")
        operation = self.operation(op_id)
        operation.op_id = new_id
        nx.relabel_nodes(self._graph, {op_id: new_id}, copy=False)
        # Rebuild edge records referencing the old identifier.
        for pred in list(self._graph.predecessors(new_id)):
            old_edge: Edge = self._graph.edges[pred, new_id]["edge"]
            self._graph.edges[pred, new_id]["edge"] = Edge(
                source=pred, target=new_id, schema=old_edge.schema, label=old_edge.label
            )
        for succ in list(self._graph.successors(new_id)):
            old_edge = self._graph.edges[new_id, succ]["edge"]
            self._graph.edges[new_id, succ]["edge"] = Edge(
                source=new_id, target=succ, schema=old_edge.schema, label=old_edge.label
            )

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def __contains__(self, op_id: object) -> bool:
        return op_id in self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def operation(self, op_id: str) -> Operation:
        """Return the operation with the given identifier."""
        try:
            return self._graph.nodes[op_id]["operation"]
        except KeyError as exc:
            raise KeyError(f"unknown operation: {op_id!r}") from exc

    def operations(self) -> list[Operation]:
        """All operations, in insertion order."""
        return [data["operation"] for _, data in self._graph.nodes(data=True)]

    def operation_ids(self) -> list[str]:
        """All operation identifiers, in insertion order."""
        return list(self._graph.nodes())

    def edges(self) -> list[Edge]:
        """All transitions of the flow."""
        return [data["edge"] for _, _, data in self._graph.edges(data=True)]

    def edge(self, source: str, target: str) -> Edge:
        """Return the transition ``source -> target``."""
        try:
            return self._graph.edges[source, target]["edge"]
        except KeyError as exc:
            raise KeyError(f"no edge {source!r} -> {target!r}") from exc

    def has_edge(self, source: str, target: str) -> bool:
        """Whether the transition ``source -> target`` exists."""
        return self._graph.has_edge(source, target)

    def set_edge_schema(self, source: str, target: str, schema: Schema) -> None:
        """Replace the schema carried by an existing transition."""
        existing = self.edge(source, target)
        self._graph.edges[source, target]["edge"] = Edge(
            source=source, target=target, schema=schema, label=existing.label
        )

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Number of operations in the flow."""
        return self._graph.number_of_nodes()

    @property
    def edge_count(self) -> int:
        """Number of transitions in the flow."""
        return self._graph.number_of_edges()

    def sources(self) -> list[Operation]:
        """Operations with no predecessors (the extraction points)."""
        return [self.operation(n) for n in self._graph.nodes() if self._graph.in_degree(n) == 0]

    def sinks(self) -> list[Operation]:
        """Operations with no successors (the loading points)."""
        return [self.operation(n) for n in self._graph.nodes() if self._graph.out_degree(n) == 0]

    def predecessors(self, op_id: str) -> list[Operation]:
        """Operations feeding directly into ``op_id``."""
        return [self.operation(n) for n in self._graph.predecessors(op_id)]

    def successors(self, op_id: str) -> list[Operation]:
        """Operations fed directly by ``op_id``."""
        return [self.operation(n) for n in self._graph.successors(op_id)]

    def in_degree(self, op_id: str) -> int:
        """Number of incoming transitions of ``op_id``."""
        return int(self._graph.in_degree(op_id))

    def out_degree(self, op_id: str) -> int:
        """Number of outgoing transitions of ``op_id``."""
        return int(self._graph.out_degree(op_id))

    def topological_order(self) -> list[Operation]:
        """Operations in a topological order (sources first)."""
        return [self.operation(n) for n in nx.topological_sort(self._graph)]

    def longest_path_length(self) -> int:
        """Length (in edges) of the longest path of the flow.

        This is the "length of process workflow's longest path"
        manageability measure of Fig. 1.
        """
        if self.node_count == 0:
            return 0
        return int(nx.dag_longest_path_length(self._graph))

    def longest_path(self) -> list[Operation]:
        """Operations along one longest path of the flow."""
        if self.node_count == 0:
            return []
        return [self.operation(n) for n in nx.dag_longest_path(self._graph)]

    def upstream_of(self, op_id: str) -> set[str]:
        """Identifiers of every operation from which ``op_id`` is reachable."""
        return set(nx.ancestors(self._graph, op_id))

    def downstream_of(self, op_id: str) -> set[str]:
        """Identifiers of every operation reachable from ``op_id``."""
        return set(nx.descendants(self._graph, op_id))

    def distance_from_sources(self, op_id: str) -> int:
        """Shortest number of hops from any source operation to ``op_id``.

        Used by the placement heuristics that push data-cleaning patterns
        as close as possible to the extraction operations.
        """
        if op_id not in self._graph:
            raise KeyError(f"unknown operation: {op_id!r}")
        best: int | None = None
        for source in self.sources():
            try:
                distance = nx.shortest_path_length(self._graph, source.op_id, op_id)
            except nx.NetworkXNoPath:
                continue
            if best is None or distance < best:
                best = distance
        return 0 if best is None else int(best)

    def distance_to_sinks(self, op_id: str) -> int:
        """Shortest number of hops from ``op_id`` to any sink operation."""
        if op_id not in self._graph:
            raise KeyError(f"unknown operation: {op_id!r}")
        best: int | None = None
        for sink in self.sinks():
            try:
                distance = nx.shortest_path_length(self._graph, op_id, sink.op_id)
            except nx.NetworkXNoPath:
                continue
            if best is None or distance < best:
                best = distance
        return 0 if best is None else int(best)

    def operations_of_kind(self, *kinds: OperationKind) -> list[Operation]:
        """All operations whose kind is one of ``kinds``."""
        wanted = set(kinds)
        return [op for op in self.operations() if op.kind in wanted]

    def is_connected(self) -> bool:
        """Whether the flow forms a single weakly connected component."""
        if self.node_count == 0:
            return True
        return nx.is_weakly_connected(self._graph)

    def coupling(self) -> float:
        """Average fan-in/fan-out coupling of the flow.

        Defined as ``edges / nodes``; a linear pipeline has coupling just
        below 1, heavily branching flows have higher coupling.  This is the
        "coupling of process workflow" manageability measure of Fig. 1.
        """
        if self.node_count == 0:
            return 0.0
        return self.edge_count / self.node_count

    def merge_element_count(self) -> int:
        """Number of operations that combine multiple data inputs.

        This is the "# of merge elements in the process model"
        manageability measure of Fig. 1.  Operations with an in-degree
        above one are counted as well, because structurally they merge
        branches even if their declared kind is not a merger.
        """
        count = 0
        for op in self.operations():
            if op.kind.is_merger or self.in_degree(op.op_id) > 1:
                count += 1
        return count

    # ------------------------------------------------------------------
    # Lineage / annotations
    # ------------------------------------------------------------------

    @property
    def applied_patterns(self) -> list[str]:
        """Human-readable record of the pattern applications that produced this flow."""
        return list(self._lineage)

    def record_pattern(self, description: str) -> None:
        """Append a pattern application record to the flow lineage."""
        self._lineage.append(description)

    # ------------------------------------------------------------------
    # Copying / comparison
    # ------------------------------------------------------------------

    def copy(self, name: str | None = None) -> "ETLGraph":
        """Return an independent copy of the flow.

        Operations are copied (so pattern application on the copy cannot
        mutate the original), edge schemas are shared (immutable).
        """
        clone = ETLGraph(name=name or self.name)
        for op in self.operations():
            clone.add_operation(op.copy())
        for edge in self.edges():
            clone.add_edge(edge.source, edge.target, schema=edge.schema, label=edge.label)
        clone.annotations = dict(self.annotations)
        clone._lineage = list(self._lineage)
        return clone

    def structurally_equal(self, other: "ETLGraph") -> bool:
        """Whether two flows have the same operations (by id/kind) and transitions."""
        if set(self.operation_ids()) != set(other.operation_ids()):
            return False
        for op_id in self.operation_ids():
            if self.operation(op_id).kind != other.operation(op_id).kind:
                return False
        mine = {(e.source, e.target) for e in self.edges()}
        theirs = {(e.source, e.target) for e in other.edges()}
        return mine == theirs

    def signature(self) -> tuple:
        """A hashable structural signature used to deduplicate alternatives."""
        nodes = tuple(sorted((op.op_id, op.kind.value, op.parallelism) for op in self.operations()))
        edges = tuple(sorted((e.source, e.target) for e in self.edges()))
        return (nodes, edges)

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------

    def to_networkx(self) -> nx.DiGraph:
        """Return (a copy of) the underlying networkx graph."""
        return self._graph.copy()

    def to_dict(self) -> dict[str, Any]:
        """Serialise the whole flow to a JSON-friendly structure."""
        return {
            "name": self.name,
            "annotations": dict(self.annotations),
            "applied_patterns": list(self._lineage),
            "operations": [op.to_dict() for op in self.operations()],
            "edges": [
                {
                    "source": e.source,
                    "target": e.target,
                    "label": e.label,
                    "schema": e.schema.to_dict(),
                }
                for e in self.edges()
            ],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ETLGraph":
        """Deserialise a flow produced by :meth:`to_dict`."""
        flow = cls(name=str(data.get("name", "etl_flow")))
        for op_data in data.get("operations", []):
            flow.add_operation(Operation.from_dict(op_data))
        for edge_data in data.get("edges", []):
            flow.add_edge(
                str(edge_data["source"]),
                str(edge_data["target"]),
                schema=Schema.from_dict(edge_data.get("schema", [])),
                label=str(edge_data.get("label", "")),
            )
        flow.annotations = dict(data.get("annotations", {}))
        flow._lineage = [str(item) for item in data.get("applied_patterns", [])]
        return flow

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ETLGraph(name={self.name!r}, operations={self.node_count}, "
            f"transitions={self.edge_count})"
        )
