"""Fluent builder for ETL flows.

The builder makes it convenient to express the linear-with-branches shape
of typical ETL processes (extract, chain of transformations, occasional
splits and joins, load) without manually wiring every edge, and it keeps
edge schemas consistent with the output schemas of preceding operations.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.etl.graph import ETLGraph
from repro.etl.operations import Operation, OperationKind
from repro.etl.properties import OperationProperties
from repro.etl.schema import Schema


class FlowBuilder:
    """Incrementally construct an :class:`~repro.etl.graph.ETLGraph`.

    Example
    -------
    >>> builder = FlowBuilder("orders")
    >>> src = builder.extract_table("orders_src", schema=orders_schema, rows=1000)
    >>> flt = builder.filter("recent_orders", predicate="o_orderdate > :cutoff",
    ...                      selectivity=0.4, after=src)
    >>> builder.load_table("orders_dw", after=flt)
    >>> flow = builder.build()
    """

    def __init__(self, name: str = "etl_flow") -> None:
        self._flow = ETLGraph(name=name)
        self._last: Operation | None = None

    # ------------------------------------------------------------------
    # Generic node creation
    # ------------------------------------------------------------------

    def add(
        self,
        kind: OperationKind,
        name: str,
        *,
        schema: Schema | None = None,
        after: Operation | str | Sequence[Operation | str] | None = None,
        op_id: str = "",
        config: dict[str, Any] | None = None,
        properties: OperationProperties | None = None,
        edge_label: str = "",
    ) -> Operation:
        """Add an operation and connect it to its predecessors.

        Parameters
        ----------
        kind, name, schema, op_id, config, properties:
            Forwarded to :class:`~repro.etl.operations.Operation`.
        after:
            Predecessor(s).  ``None`` links to the previously added
            operation (or nothing if this is the first / a new source).
        edge_label:
            Label put on every created incoming edge.
        """
        predecessors = self._resolve_predecessors(after)
        if schema is None:
            if predecessors:
                schema = self._flow.operation(predecessors[0]).output_schema
            else:
                schema = Schema()
        if not op_id:
            op_id = self._identifier_from_name(name)
        operation = Operation(
            kind=kind,
            name=name,
            op_id=op_id,
            output_schema=schema,
            config=dict(config or {}),
            properties=properties or OperationProperties(),
        )
        self._flow.add_operation(operation)
        for pred in predecessors:
            self._flow.add_edge(pred, operation.op_id, label=edge_label)
        self._last = operation
        return operation

    def _identifier_from_name(self, name: str) -> str:
        """Derive a deterministic, unique operation identifier from its name.

        Deterministic identifiers keep builder-produced flows reproducible
        (two identically built flows are structurally equal) and make the
        planner's reports readable.
        """
        base = "".join(ch if ch.isalnum() else "_" for ch in name.strip().lower()) or "op"
        candidate = base
        suffix = 2
        while candidate in self._flow:
            candidate = f"{base}_{suffix}"
            suffix += 1
        return candidate

    def _resolve_predecessors(
        self, after: Operation | str | Sequence[Operation | str] | None
    ) -> list[str]:
        if after is None:
            return [self._last.op_id] if self._last is not None else []
        if isinstance(after, (Operation, str)):
            after = [after]
        resolved: list[str] = []
        for item in after:
            resolved.append(item.op_id if isinstance(item, Operation) else item)
        return resolved

    # ------------------------------------------------------------------
    # Extraction
    # ------------------------------------------------------------------

    def extract_table(
        self,
        name: str,
        *,
        schema: Schema,
        rows: int = 1000,
        table: str = "",
        null_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        error_rate: float = 0.0,
        freshness_lag: float = 0.0,
        update_frequency: float = 24.0,
        cost_per_tuple: float = 0.005,
        **extra: Any,
    ) -> Operation:
        """Add a table-extraction source operation."""
        properties = OperationProperties(
            cost_per_tuple=cost_per_tuple,
            null_rate=null_rate,
            duplicate_rate=duplicate_rate,
            error_rate=error_rate,
            freshness_lag=freshness_lag,
            update_frequency=update_frequency,
        )
        config: dict[str, Any] = {"rows": rows, "table": table or name}
        config.update(extra)
        return self.add(
            OperationKind.EXTRACT_TABLE,
            name,
            schema=schema,
            after=[],
            config=config,
            properties=properties,
        )

    def extract_file(
        self,
        name: str,
        *,
        schema: Schema,
        rows: int = 1000,
        path: str = "",
        null_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        error_rate: float = 0.0,
        **extra: Any,
    ) -> Operation:
        """Add a flat-file extraction source operation."""
        properties = OperationProperties(
            cost_per_tuple=0.008,
            null_rate=null_rate,
            duplicate_rate=duplicate_rate,
            error_rate=error_rate,
        )
        config: dict[str, Any] = {"rows": rows, "path": path or f"{name}.csv"}
        config.update(extra)
        return self.add(
            OperationKind.EXTRACT_FILE,
            name,
            schema=schema,
            after=[],
            config=config,
            properties=properties,
        )

    # ------------------------------------------------------------------
    # Row-level transformations
    # ------------------------------------------------------------------

    def filter(
        self,
        name: str,
        *,
        predicate: str,
        selectivity: float = 0.5,
        after: Operation | str | Sequence[Operation | str] | None = None,
        cost_per_tuple: float = 0.005,
    ) -> Operation:
        """Add a row filter with the given predicate text and selectivity."""
        return self.add(
            OperationKind.FILTER,
            name,
            after=after,
            config={"predicate": predicate},
            properties=OperationProperties(
                cost_per_tuple=cost_per_tuple, selectivity=selectivity
            ),
        )

    def project(
        self,
        name: str,
        *,
        keep: Sequence[str],
        after: Operation | str | Sequence[Operation | str] | None = None,
    ) -> Operation:
        """Add a projection keeping only the listed fields."""
        predecessors = self._resolve_predecessors(after)
        if predecessors:
            input_schema = self._flow.operation(predecessors[0]).output_schema
            schema = input_schema.project(list(keep))
        else:
            schema = Schema()
        return self.add(
            OperationKind.PROJECT,
            name,
            schema=schema,
            after=predecessors,
            config={"keep": list(keep)},
            properties=OperationProperties(cost_per_tuple=0.002),
        )

    def derive(
        self,
        name: str,
        *,
        expressions: dict[str, str] | None = None,
        cost_per_tuple: float = 0.02,
        after: Operation | str | Sequence[Operation | str] | None = None,
        schema: Schema | None = None,
    ) -> Operation:
        """Add a derive-values operation (computed columns / enrichment)."""
        return self.add(
            OperationKind.DERIVE,
            name,
            schema=schema,
            after=after,
            config={"expressions": dict(expressions or {})},
            properties=OperationProperties(cost_per_tuple=cost_per_tuple),
        )

    def lookup(
        self,
        name: str,
        *,
        reference: str,
        on: Sequence[str],
        cost_per_tuple: float = 0.015,
        error_rate: float = 0.0,
        after: Operation | str | Sequence[Operation | str] | None = None,
        schema: Schema | None = None,
    ) -> Operation:
        """Add a lookup against a reference table."""
        return self.add(
            OperationKind.LOOKUP,
            name,
            schema=schema,
            after=after,
            config={"reference": reference, "on": list(on)},
            properties=OperationProperties(
                cost_per_tuple=cost_per_tuple, error_rate=error_rate
            ),
        )

    def surrogate_key(
        self,
        name: str,
        *,
        key_field: str,
        after: Operation | str | Sequence[Operation | str] | None = None,
    ) -> Operation:
        """Add a surrogate-key assignment operation."""
        return self.add(
            OperationKind.SURROGATE_KEY,
            name,
            after=after,
            config={"key_field": key_field},
            properties=OperationProperties(cost_per_tuple=0.008),
        )

    def aggregate(
        self,
        name: str,
        *,
        group_by: Sequence[str],
        aggregations: dict[str, str] | None = None,
        selectivity: float = 0.1,
        cost_per_tuple: float = 0.03,
        after: Operation | str | Sequence[Operation | str] | None = None,
        schema: Schema | None = None,
    ) -> Operation:
        """Add a grouping/aggregation (blocking) operation."""
        return self.add(
            OperationKind.AGGREGATE,
            name,
            schema=schema,
            after=after,
            config={"group_by": list(group_by), "aggregations": dict(aggregations or {})},
            properties=OperationProperties(
                cost_per_tuple=cost_per_tuple, selectivity=selectivity, fixed_cost=50.0
            ),
        )

    def sort(
        self,
        name: str,
        *,
        by: Sequence[str],
        after: Operation | str | Sequence[Operation | str] | None = None,
    ) -> Operation:
        """Add a sort (blocking) operation."""
        return self.add(
            OperationKind.SORT,
            name,
            after=after,
            config={"by": list(by)},
            properties=OperationProperties(cost_per_tuple=0.02, fixed_cost=30.0),
        )

    def join(
        self,
        name: str,
        left: Operation | str,
        right: Operation | str,
        *,
        on: Sequence[str],
        selectivity: float = 1.0,
        cost_per_tuple: float = 0.025,
        schema: Schema | None = None,
    ) -> Operation:
        """Add a binary join of two branches."""
        if schema is None:
            left_id = left.op_id if isinstance(left, Operation) else left
            right_id = right.op_id if isinstance(right, Operation) else right
            schema = self._flow.operation(left_id).output_schema.merge(
                self._flow.operation(right_id).output_schema
            )
        return self.add(
            OperationKind.JOIN,
            name,
            schema=schema,
            after=[left, right],
            config={"on": list(on)},
            properties=OperationProperties(
                cost_per_tuple=cost_per_tuple, selectivity=selectivity, fixed_cost=40.0
            ),
        )

    def union(
        self,
        name: str,
        branches: Sequence[Operation | str],
        *,
        schema: Schema | None = None,
    ) -> Operation:
        """Add an n-ary union of branches carrying the same schema."""
        return self.add(
            OperationKind.UNION,
            name,
            schema=schema,
            after=list(branches),
            properties=OperationProperties(cost_per_tuple=0.002),
        )

    def merge(
        self,
        name: str,
        branches: Sequence[Operation | str],
        *,
        schema: Schema | None = None,
    ) -> Operation:
        """Add a merge node recombining previously split branches."""
        return self.add(
            OperationKind.MERGE,
            name,
            schema=schema,
            after=list(branches),
            properties=OperationProperties(cost_per_tuple=0.003),
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def split(
        self,
        name: str,
        *,
        outputs: int = 2,
        after: Operation | str | Sequence[Operation | str] | None = None,
    ) -> Operation:
        """Add a split node routing records to ``outputs`` downstream branches."""
        return self.add(
            OperationKind.SPLIT,
            name,
            after=after,
            config={"outputs": outputs},
            properties=OperationProperties(cost_per_tuple=0.001),
        )

    def partition(
        self,
        name: str,
        *,
        key: str,
        partitions: int = 2,
        after: Operation | str | Sequence[Operation | str] | None = None,
    ) -> Operation:
        """Add a horizontal-partition node (hash partitioning on ``key``)."""
        return self.add(
            OperationKind.PARTITION,
            name,
            after=after,
            config={"key": key, "partitions": partitions},
            properties=OperationProperties(cost_per_tuple=0.002),
        )

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def load_table(
        self,
        name: str,
        *,
        table: str = "",
        after: Operation | str | Sequence[Operation | str] | None = None,
        cost_per_tuple: float = 0.01,
    ) -> Operation:
        """Add a warehouse-table load sink."""
        return self.add(
            OperationKind.LOAD_TABLE,
            name,
            after=after,
            config={"table": table or name},
            properties=OperationProperties(cost_per_tuple=cost_per_tuple, fixed_cost=20.0),
        )

    def load_file(
        self,
        name: str,
        *,
        path: str = "",
        after: Operation | str | Sequence[Operation | str] | None = None,
    ) -> Operation:
        """Add a flat-file load sink."""
        return self.add(
            OperationKind.LOAD_FILE,
            name,
            after=after,
            config={"path": path or f"{name}.out"},
            properties=OperationProperties(cost_per_tuple=0.012),
        )

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------

    @property
    def flow(self) -> ETLGraph:
        """The flow under construction (live reference)."""
        return self._flow

    def build(self, validate: bool = True) -> ETLGraph:
        """Return the constructed flow, optionally validating it first."""
        if validate:
            from repro.etl.validation import validate_flow

            validate_flow(self._flow, raise_on_error=True)
        return self._flow
