"""Runtime annotations attached to ETL operations.

The paper distinguishes two families of quality measures: those that derive
from the static structure of the process model and those obtained from the
analysis of historical traces of the runtime behaviour of ETL components.
:class:`OperationProperties` carries the per-operation parameters that feed
both the static estimators and the runtime simulator that produces traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass
class OperationProperties:
    """Per-operation runtime parameters.

    Parameters
    ----------
    cost_per_tuple:
        CPU time (in milliseconds) spent per input tuple.
    fixed_cost:
        Fixed start-up time (in milliseconds) paid once per execution,
        regardless of the input size (e.g. connection set-up, sort buffers).
    selectivity:
        Expected ratio ``output rows / input rows`` (``1.0`` for
        row-preserving operations, ``< 1`` for filters, ``> 1`` for
        row-generating operations).
    error_rate:
        Probability that a processed tuple carries a data error introduced
        or left uncorrected by this operation.
    null_rate:
        Fraction of produced tuples with NULLs in nullable fields (sources
        and lookups mainly).
    duplicate_rate:
        Fraction of produced tuples that duplicate another tuple's key.
    failure_rate:
        Probability that the operation fails during one process execution
        (feeds the reliability measures and the checkpoint pattern).
    memory_per_tuple:
        Memory footprint per buffered tuple in KiB (blocking operations).
    freshness_lag:
        Lag, in minutes, between the source system update and the moment
        this operation can observe the change (sources only).
    update_frequency:
        How many times per day the underlying source is refreshed
        (sources only); feeds the data-quality "age" measure of Fig. 1.
    monetary_cost:
        Monetary cost per execution attributed to this operation
        (licences, cloud resources), in abstract cost units.
    extra:
        Free-form additional annotations preserved by serialisation.
    """

    cost_per_tuple: float = 0.01
    fixed_cost: float = 0.0
    selectivity: float = 1.0
    error_rate: float = 0.0
    null_rate: float = 0.0
    duplicate_rate: float = 0.0
    failure_rate: float = 0.0
    memory_per_tuple: float = 0.1
    freshness_lag: float = 0.0
    update_frequency: float = 24.0
    monetary_cost: float = 0.0
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.cost_per_tuple < 0:
            raise ValueError("cost_per_tuple must be non-negative")
        if self.fixed_cost < 0:
            raise ValueError("fixed_cost must be non-negative")
        if self.selectivity < 0:
            raise ValueError("selectivity must be non-negative")
        for name in ("error_rate", "null_rate", "duplicate_rate", "failure_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {value}")

    def copy(self) -> "OperationProperties":
        """Return an independent copy of these properties."""
        return OperationProperties(
            cost_per_tuple=self.cost_per_tuple,
            fixed_cost=self.fixed_cost,
            selectivity=self.selectivity,
            error_rate=self.error_rate,
            null_rate=self.null_rate,
            duplicate_rate=self.duplicate_rate,
            failure_rate=self.failure_rate,
            memory_per_tuple=self.memory_per_tuple,
            freshness_lag=self.freshness_lag,
            update_frequency=self.update_frequency,
            monetary_cost=self.monetary_cost,
            extra=dict(self.extra),
        )

    def to_dict(self) -> dict[str, Any]:
        """Serialise to a JSON-friendly mapping (only non-default values kept compactly)."""
        return {
            "cost_per_tuple": self.cost_per_tuple,
            "fixed_cost": self.fixed_cost,
            "selectivity": self.selectivity,
            "error_rate": self.error_rate,
            "null_rate": self.null_rate,
            "duplicate_rate": self.duplicate_rate,
            "failure_rate": self.failure_rate,
            "memory_per_tuple": self.memory_per_tuple,
            "freshness_lag": self.freshness_lag,
            "update_frequency": self.update_frequency,
            "monetary_cost": self.monetary_cost,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "OperationProperties":
        """Deserialise properties produced by :meth:`to_dict`."""
        known = {
            "cost_per_tuple",
            "fixed_cost",
            "selectivity",
            "error_rate",
            "null_rate",
            "duplicate_rate",
            "failure_rate",
            "memory_per_tuple",
            "freshness_lag",
            "update_frequency",
            "monetary_cost",
        }
        kwargs = {key: float(data[key]) for key in known if key in data}
        extra = dict(data.get("extra", {}))
        return cls(extra=extra, **kwargs)
