"""Reliability Flow Component Patterns.

Fig. 2b of the paper shows the reliability construct: a *savepoint* that
persists intermediary data so that, if an error occurs downstream, the
process resumes from the savepoint instead of re-running the whole flow.
``AddCheckpoint`` implements it as an edge pattern inserting a
``CHECKPOINT`` operation; the simulator's failure injector then charges
only the work performed since the checkpoint when a protected operation
fails.
"""

from __future__ import annotations

from repro.etl.graph import ETLGraph
from repro.etl.operations import Operation, OperationKind
from repro.etl.properties import OperationProperties
from repro.etl.schema import Schema
from repro.etl.subflow import insert_on_edge
from repro.patterns.base import (
    ApplicationPoint,
    ApplicationPointType,
    FlowComponentPattern,
    Prerequisite,
)
from repro.quality.framework import QualityCharacteristic


class AddCheckpoint(FlowComponentPattern):
    """Persist intermediary data at a savepoint for failure recovery.

    Heuristic: "the addition of a checkpoint is encouraged after the
    execution of the most complex operations of the ETL flow, in order to
    avoid the repetition of process-intensive tasks in case of a
    recovery" (Section 3).  The fitness of an edge therefore grows with
    the processing cost accumulated upstream of it.
    """

    name = "AddCheckpoint"
    description = "Persist intermediary data to a savepoint for recovery"
    improves = (QualityCharacteristic.RELIABILITY,)
    point_type = ApplicationPointType.EDGE

    def __init__(self, io_cost_per_tuple: float = 0.006, fixed_io_cost: float = 15.0):
        self.io_cost_per_tuple = io_cost_per_tuple
        self.fixed_io_cost = fixed_io_cost

    # -- prerequisites ---------------------------------------------------

    def _carries_data(self, flow: ETLGraph, point: ApplicationPoint) -> bool:
        return len(self._edge_of(flow, point).schema) > 0

    def _not_adjacent_to_checkpoint(self, flow: ETLGraph, point: ApplicationPoint) -> bool:
        source, target = point.edge
        kinds = {flow.operation(source).kind, flow.operation(target).kind}
        return OperationKind.CHECKPOINT not in kinds

    def _not_adjacent_to_boundary(self, flow: ETLGraph, point: ApplicationPoint) -> bool:
        # Persisting immediately after extraction or immediately before the
        # final load protects (almost) nothing; such points are excluded.
        source, target = point.edge
        return not (
            flow.operation(source).kind.is_source or flow.operation(target).kind.is_sink
        )

    def prerequisites(self) -> tuple[Prerequisite, ...]:
        return (
            Prerequisite(
                "data_edge",
                self._carries_data,
                "the transition carries a non-empty record schema",
            ),
            Prerequisite(
                "no_adjacent_checkpoint",
                self._not_adjacent_to_checkpoint,
                "no checkpoint already adjacent to the transition",
            ),
            Prerequisite(
                "inside_the_flow",
                self._not_adjacent_to_boundary,
                "the transition is neither right after a source nor right before a sink",
            ),
        )

    # -- heuristics -------------------------------------------------------

    def fitness(self, flow: ETLGraph, point: ApplicationPoint) -> float:
        source_id = point.edge[0]
        upstream = flow.upstream_of(source_id) | {source_id}
        upstream_cost = sum(
            flow.operation(op_id).properties.cost_per_tuple
            + flow.operation(op_id).properties.fixed_cost / 1000.0
            for op_id in upstream
        )
        total_cost = sum(
            op.properties.cost_per_tuple + op.properties.fixed_cost / 1000.0
            for op in flow.operations()
        )
        if total_cost <= 0:
            return 0.0
        return min(1.0, upstream_cost / total_cost)

    # -- deployment -------------------------------------------------------

    def apply(self, flow: ETLGraph, point: ApplicationPoint) -> ETLGraph:
        edge = self._edge_of(flow, point)
        schema = edge.schema
        subflow = self._memoized_subflow(schema, lambda: self._build_subflow(schema))
        new_flow, _ = insert_on_edge(
            flow,
            *point.edge,
            subflow,
            description=f"{self.name} @ {point.describe()}",
        )
        return new_flow

    def _build_subflow(self, schema: Schema) -> ETLGraph:
        subflow = ETLGraph(name="fcp_add_checkpoint")
        checkpoint = Operation(
            kind=OperationKind.CHECKPOINT,
            name="persist_intermediary_data",
            op_id="persist_intermediary_data",
            output_schema=schema,
            config={"savepoint": "savepoint"},
            properties=OperationProperties(
                cost_per_tuple=self.io_cost_per_tuple,
                fixed_cost=self.fixed_io_cost,
            ),
        )
        subflow.add_operation(checkpoint)
        return subflow
