"""Flow Component Patterns (FCP).

A Flow Component Pattern is a predefined construct that improves certain
quality characteristics of an ETL flow without altering its main
functionality (Section 2.2 of the paper).  Internally a pattern is itself
an ETL (sub-)flow; deploying it grafts that sub-flow onto the host flow at
a valid *application point*, which can be a node, an edge, or the entire
graph.

This package contains the pattern framework (:mod:`repro.patterns.base`),
the built-in palette listed in Fig. 6 of the paper plus graph-level
configuration patterns (:mod:`repro.patterns.data_quality`,
:mod:`repro.patterns.performance`, :mod:`repro.patterns.reliability`,
:mod:`repro.patterns.graph_level`), support for user-defined patterns
(:mod:`repro.patterns.custom`) and the pattern registry / palette
(:mod:`repro.patterns.registry`).
"""

from repro.patterns.base import (
    ApplicationPoint,
    ApplicationPointType,
    FlowComponentPattern,
    PatternApplication,
    Prerequisite,
)
from repro.patterns.registry import PatternRegistry, default_palette
from repro.patterns.data_quality import (
    CrosscheckSources,
    FilterNullValues,
    RemoveDuplicateEntries,
)
from repro.patterns.performance import HorizontalPartitionTask, ParallelizeTask
from repro.patterns.reliability import AddCheckpoint
from repro.patterns.graph_level import (
    AdjustScheduleFrequency,
    EncryptDataFlow,
    RoleBasedAccessControl,
    UpgradeResourceTier,
)
from repro.patterns.custom import CustomEdgePattern, CustomPatternSpec

__all__ = [
    "ApplicationPoint",
    "ApplicationPointType",
    "FlowComponentPattern",
    "PatternApplication",
    "Prerequisite",
    "PatternRegistry",
    "default_palette",
    "FilterNullValues",
    "RemoveDuplicateEntries",
    "CrosscheckSources",
    "ParallelizeTask",
    "HorizontalPartitionTask",
    "AddCheckpoint",
    "EncryptDataFlow",
    "RoleBasedAccessControl",
    "UpgradeResourceTier",
    "AdjustScheduleFrequency",
    "CustomEdgePattern",
    "CustomPatternSpec",
]
