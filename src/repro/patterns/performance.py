"""Performance Flow Component Patterns.

Fig. 2a of the paper shows the two performance constructs this module
implements: *derive values with parallelism* (the ``ParallelizeTask``
pattern -- a node is replaced by multiple copies of itself running in
parallel) and *horizontal partitioning* (the task is split into a
``HORIZONTAL PARTITION`` router, per-partition copies of the task, and a
``MERGE`` that recombines the branches).
"""

from __future__ import annotations

from repro.etl.graph import ETLGraph
from repro.etl.operations import Operation, OperationKind
from repro.etl.properties import OperationProperties
from repro.etl.subflow import replace_node
from repro.patterns.base import (
    ApplicationPoint,
    ApplicationPointType,
    FlowComponentPattern,
    Prerequisite,
)
from repro.quality.framework import QualityCharacteristic

# Per-tuple cost (milliseconds) above which a task is considered
# computation-intensive enough to be worth parallelising.
_COSTLY_TASK_THRESHOLD_MS = 0.01


def _is_parallelizable_kind(operation: Operation) -> bool:
    """Whether an operation can be replaced by multiple copies of itself."""
    kind = operation.kind
    return not (
        kind.is_source
        or kind.is_sink
        or kind.is_router
        or kind.is_merger
        or kind in (OperationKind.CHECKPOINT, OperationKind.RECOVERY_BRANCH)
    )


def _cost_rank_fitness(flow: ETLGraph, node_id: str) -> float:
    """Fitness proportional to the node's share of the flow's per-tuple cost."""
    target = flow.operation(node_id)
    costs = [op.properties.cost_per_tuple for op in flow.operations()]
    max_cost = max(costs) if costs else 0.0
    if max_cost <= 0:
        return 0.0
    return target.properties.cost_per_tuple / max_cost


class ParallelizeTask(FlowComponentPattern):
    """Replace a computation-intensive task by parallel copies of itself.

    The valid application point is a node that can be replaced by multiple
    copies of itself (the paper's example for node application points).
    Deployment keeps the flow topology and simply raises the degree of
    parallelism of the task; the simulator divides the task's variable
    cost by the effective parallelism granted by the resource model.
    """

    name = "ParallelizeTask"
    description = "Execute a computation-intensive task with parallel copies"
    improves = (QualityCharacteristic.PERFORMANCE,)
    point_type = ApplicationPointType.NODE

    def __init__(self, degree: int = 4):
        if degree < 2:
            raise ValueError("parallelism degree must be at least 2")
        self.degree = degree

    def _parallelizable(self, flow: ETLGraph, point: ApplicationPoint) -> bool:
        return _is_parallelizable_kind(self._node_of(flow, point))

    def _costly(self, flow: ETLGraph, point: ApplicationPoint) -> bool:
        return (
            self._node_of(flow, point).properties.cost_per_tuple
            >= _COSTLY_TASK_THRESHOLD_MS
        )

    def _not_already_parallel(self, flow: ETLGraph, point: ApplicationPoint) -> bool:
        return self._node_of(flow, point).parallelism == 1

    def prerequisites(self) -> tuple[Prerequisite, ...]:
        return (
            Prerequisite(
                "replaceable_by_copies",
                self._parallelizable,
                "the operation can be replaced by multiple copies of itself",
            ),
            Prerequisite(
                "computation_intensive",
                self._costly,
                "the operation's per-tuple cost is significant",
            ),
            Prerequisite(
                "not_already_parallel",
                self._not_already_parallel,
                "the operation is not already parallelised",
            ),
        )

    def fitness(self, flow: ETLGraph, point: ApplicationPoint) -> float:
        return _cost_rank_fitness(flow, point.node_id)

    def apply(self, flow: ETLGraph, point: ApplicationPoint) -> ETLGraph:
        new_flow = flow.copy()
        # mutable_operation triggers the copy-on-write fault: on a COW
        # copy the payload is still shared with the host flow.
        operation = new_flow.mutable_operation(point.node_id)
        operation.config["parallelism"] = self.degree
        operation.name = f"{operation.name} (x{self.degree} parallel)"
        new_flow.record_pattern(f"{self.name} @ {point.describe()} (degree={self.degree})")
        return new_flow


class HorizontalPartitionTask(FlowComponentPattern):
    """Split a task into per-partition copies behind a horizontal partition.

    Mirrors Fig. 2a: the ``DERIVE VALUES`` task is replaced by a
    ``HORIZONTAL PARTITION`` router, one task copy per partition (``DERIVE
    VALUES for Group_A`` / ``Group_B``), and a ``MERGE`` recombining the
    branches.  Unlike :class:`ParallelizeTask`, this changes the topology,
    so it trades manageability (more nodes, more merge elements) for
    performance.
    """

    name = "HorizontalPartitionTask"
    description = "Partition the input of a task and process partitions in parallel branches"
    improves = (QualityCharacteristic.PERFORMANCE,)
    point_type = ApplicationPointType.NODE

    def __init__(self, partitions: int = 2):
        if partitions < 2:
            raise ValueError("the pattern needs at least two partitions")
        self.partitions = partitions

    def _partitionable(self, flow: ETLGraph, point: ApplicationPoint) -> bool:
        operation = self._node_of(flow, point)
        return _is_parallelizable_kind(operation) and not operation.kind.is_blocking

    def _costly(self, flow: ETLGraph, point: ApplicationPoint) -> bool:
        return (
            self._node_of(flow, point).properties.cost_per_tuple
            >= _COSTLY_TASK_THRESHOLD_MS
        )

    def _has_partition_key(self, flow: ETLGraph, point: ApplicationPoint) -> bool:
        schema = self._node_of(flow, point).output_schema
        return len(schema) > 0

    def _single_input_output(self, flow: ETLGraph, point: ApplicationPoint) -> bool:
        node_id = point.node_id
        return flow.in_degree(node_id) == 1 and flow.out_degree(node_id) == 1

    def prerequisites(self) -> tuple[Prerequisite, ...]:
        return (
            Prerequisite(
                "partitionable_task",
                self._partitionable,
                "the operation processes rows independently (non-blocking, non-router)",
            ),
            Prerequisite(
                "computation_intensive",
                self._costly,
                "the operation's per-tuple cost is significant",
            ),
            Prerequisite(
                "partition_key_available",
                self._has_partition_key,
                "the operation schema offers a field usable as partition key",
            ),
            Prerequisite(
                "linear_neighbourhood",
                self._single_input_output,
                "the operation has exactly one input and one output transition",
            ),
        )

    def fitness(self, flow: ETLGraph, point: ApplicationPoint) -> float:
        return _cost_rank_fitness(flow, point.node_id)

    def apply(self, flow: ETLGraph, point: ApplicationPoint) -> ETLGraph:
        original = self._node_of(flow, point)
        subflow = self._memoized_subflow(original, lambda: self._build_subflow(original))
        new_flow, _ = replace_node(
            flow,
            point.node_id,
            subflow,
            description=f"{self.name} @ {point.describe()} ({self.partitions} partitions)",
        )
        return new_flow

    def _build_subflow(self, original: Operation) -> ETLGraph:
        schema = original.output_schema
        key_field = schema.names[0] if len(schema) else "key"
        subflow = ETLGraph(name=f"fcp_horizontal_partition_{original.op_id}")
        partition = Operation(
            kind=OperationKind.PARTITION,
            name=f"horizontal_partition_{original.name}",
            op_id=f"horizontal_partition_{original.op_id}",
            output_schema=schema,
            config={"key": key_field, "partitions": self.partitions},
            properties=OperationProperties(cost_per_tuple=0.002),
        )
        subflow.add_operation(partition)
        copies = []
        for index in range(self.partitions):
            group = chr(ord("A") + index) if index < 26 else str(index)
            copy = original.copy()
            copy.op_id = f"{original.op_id}_group_{group}"
            copy.name = f"{original.name} for Group_{group}"
            subflow.add_operation(copy)
            subflow.add_edge(partition, copy)
            copies.append(copy)
        merge = Operation(
            kind=OperationKind.MERGE,
            name=f"merge_{original.name}",
            op_id=f"merge_{original.op_id}",
            output_schema=schema,
            properties=OperationProperties(cost_per_tuple=0.003),
        )
        subflow.add_operation(merge)
        for copy in copies:
            subflow.add_edge(copy, merge)
        return subflow
