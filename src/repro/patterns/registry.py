"""The pattern repository / palette.

POIESIS utilises an existing repository of FCP models to generate patterns
specific to the ETL flow on which they are applied (Section 3).  The
registry holds the available patterns, lets users restrict the palette to
a subset (part P2 of the demo walkthrough), extend it with custom patterns
(part P3), and renders the Fig. 6 palette table.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.patterns.base import FlowComponentPattern
from repro.patterns.custom import CustomEdgePattern, CustomPatternSpec
from repro.quality.framework import QualityCharacteristic


class PatternRegistry:
    """A named collection of Flow Component Patterns (the palette)."""

    def __init__(self, patterns: Iterable[FlowComponentPattern] = ()) -> None:
        self._patterns: dict[str, FlowComponentPattern] = {}
        for pattern in patterns:
            self.register(pattern)

    # ------------------------------------------------------------------

    def register(self, pattern: FlowComponentPattern) -> FlowComponentPattern:
        """Add a pattern to the palette (replacing any same-named one)."""
        if not pattern.name:
            raise ValueError("patterns must define a non-empty name")
        self._patterns[pattern.name] = pattern
        return pattern

    def register_custom(self, spec: CustomPatternSpec) -> FlowComponentPattern:
        """Create a user-defined pattern from a spec and add it to the palette."""
        return self.register(CustomEdgePattern(spec))

    def unregister(self, name: str) -> None:
        """Remove a pattern from the palette."""
        del self._patterns[name]

    def get(self, name: str) -> FlowComponentPattern:
        """Return the pattern called ``name``."""
        try:
            return self._patterns[name]
        except KeyError as exc:
            raise KeyError(f"unknown pattern: {name!r}") from exc

    def __contains__(self, name: object) -> bool:
        return name in self._patterns

    def __len__(self) -> int:
        return len(self._patterns)

    def __iter__(self) -> Iterator[FlowComponentPattern]:
        return iter(self._patterns.values())

    def names(self) -> list[str]:
        """Names of every pattern in the palette."""
        return list(self._patterns)

    # ------------------------------------------------------------------

    def subset(self, names: Sequence[str]) -> "PatternRegistry":
        """A palette restricted to the given pattern names (demo part P2)."""
        missing = [name for name in names if name not in self._patterns]
        if missing:
            raise KeyError(f"unknown patterns: {missing}")
        return PatternRegistry(self._patterns[name] for name in names)

    def for_characteristic(
        self, characteristic: QualityCharacteristic
    ) -> list[FlowComponentPattern]:
        """Patterns that improve the given quality characteristic."""
        return [p for p in self._patterns.values() if characteristic in p.improves]

    def palette_table(self) -> list[dict[str, str]]:
        """Rows of the Fig. 6 palette table: pattern name and related attribute."""
        rows = []
        for pattern in self._patterns.values():
            rows.append(
                {
                    "fcp": pattern.name,
                    "related_quality_attribute": ", ".join(
                        c.label for c in pattern.improves
                    ),
                }
            )
        return rows


def default_palette(
    parallelism_degree: int = 4,
    partitions: int = 2,
    include_graph_level: bool = True,
) -> PatternRegistry:
    """The palette the paper's Fig. 6 lists, plus the graph-level patterns.

    Parameters
    ----------
    parallelism_degree:
        Degree configured on the :class:`~repro.patterns.performance.ParallelizeTask`
        pattern instances.
    partitions:
        Number of partitions configured on
        :class:`~repro.patterns.performance.HorizontalPartitionTask`.
    include_graph_level:
        Whether to include the process-wide configuration patterns
        (encryption, access control, resource tier, schedule frequency).
    """
    from repro.patterns.data_quality import (
        CrosscheckSources,
        FilterNullValues,
        RemoveDuplicateEntries,
    )
    from repro.patterns.graph_level import (
        AdjustScheduleFrequency,
        EncryptDataFlow,
        RoleBasedAccessControl,
        UpgradeResourceTier,
    )
    from repro.patterns.performance import HorizontalPartitionTask, ParallelizeTask
    from repro.patterns.reliability import AddCheckpoint

    registry = PatternRegistry(
        [
            RemoveDuplicateEntries(),
            FilterNullValues(),
            CrosscheckSources(),
            ParallelizeTask(degree=parallelism_degree),
            HorizontalPartitionTask(partitions=partitions),
            AddCheckpoint(),
        ]
    )
    if include_graph_level:
        registry.register(EncryptDataFlow())
        registry.register(RoleBasedAccessControl())
        registry.register(UpgradeResourceTier())
        registry.register(AdjustScheduleFrequency())
    return registry


def figure6_palette() -> PatternRegistry:
    """Exactly the five patterns listed in Fig. 6 of the paper."""
    palette = default_palette(include_graph_level=False)
    return palette.subset(
        [
            "RemoveDuplicateEntries",
            "FilterNullValues",
            "CrosscheckSources",
            "ParallelizeTask",
            "AddCheckpoint",
        ]
    )
