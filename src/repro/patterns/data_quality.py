"""Data-quality Flow Component Patterns.

The palette of Fig. 6 lists three data-quality patterns:
``RemoveDuplicateEntries``, ``FilterNullValues`` and ``CrosscheckSources``.
All three apply on an edge of the host flow: the pattern sub-flow (a
single cleansing operation, or a small lookup/merge construct for the
crosscheck) is interposed between two consecutive operations.  Following
the paper's heuristics, their fitness is highest close to the extraction
operations, "to prevent cumulative side-effects of reduced data quality".
"""

from __future__ import annotations

from repro.etl.builder import FlowBuilder
from repro.etl.graph import ETLGraph
from repro.etl.operations import OperationKind
from repro.etl.properties import OperationProperties
from repro.etl.schema import Schema
from repro.etl.subflow import insert_on_edge
from repro.patterns.base import (
    ApplicationPoint,
    ApplicationPointType,
    FlowComponentPattern,
    Prerequisite,
)
from repro.quality.framework import QualityCharacteristic

# Data-quality operations already present downstream make a second
# identical cleansing step useless; prerequisites below check for this.
_CLEANSING_KINDS_BY_PATTERN = {
    "FilterNullValues": OperationKind.FILTER_NULLS,
    "RemoveDuplicateEntries": OperationKind.DEDUPLICATE,
    "CrosscheckSources": OperationKind.CROSSCHECK,
}


def _source_proximity_fitness(flow: ETLGraph, point: ApplicationPoint) -> float:
    """Fitness decreasing with the distance of the edge from the sources."""
    source_id = point.edge[0]
    distance = flow.distance_from_sources(source_id)
    longest = max(flow.longest_path_length(), 1)
    return max(0.0, 1.0 - distance / (longest + 1))


class _EdgeCleansingPattern(FlowComponentPattern):
    """Shared machinery of the single-operation data-cleaning patterns."""

    point_type = ApplicationPointType.EDGE
    improves = (QualityCharacteristic.DATA_QUALITY,)
    cleansing_kind: OperationKind = OperationKind.CLEANSE

    def _not_already_cleansed(self, flow: ETLGraph, point: ApplicationPoint) -> bool:
        # The same cleansing operation immediately adjacent to the edge
        # would be redundant; elsewhere on the flow it is still allowed
        # (e.g. one null filter per source branch).
        source, target = point.edge
        adjacent = {flow.operation(source).kind, flow.operation(target).kind}
        return self.cleansing_kind not in adjacent

    def _non_empty_schema(self, flow: ETLGraph, point: ApplicationPoint) -> bool:
        return len(self._edge_of(flow, point).schema) > 0

    def prerequisites(self) -> tuple[Prerequisite, ...]:
        return (
            Prerequisite(
                "data_edge",
                self._non_empty_schema,
                "the transition carries a non-empty record schema",
            ),
            Prerequisite(
                "not_already_cleansed",
                self._not_already_cleansed,
                "no identical cleansing operation adjacent to the transition",
            ),
        )

    def fitness(self, flow: ETLGraph, point: ApplicationPoint) -> float:
        return _source_proximity_fitness(flow, point)

    def _build_subflow(self, schema: Schema) -> ETLGraph:
        raise NotImplementedError

    def apply(self, flow: ETLGraph, point: ApplicationPoint) -> ETLGraph:
        edge = self._edge_of(flow, point)
        schema = edge.schema
        subflow = self._memoized_subflow(schema, lambda: self._build_subflow(schema))
        new_flow, _ = insert_on_edge(
            flow,
            *point.edge,
            subflow,
            description=f"{self.name} @ {point.describe()}",
        )
        return new_flow


class FilterNullValues(_EdgeCleansingPattern):
    """Delete entries with NULL values from the records crossing an edge.

    The pattern is itself an ETL flow consisting of only one operation -- a
    filter that deletes entries with null values from its input (the
    paper's running example of a FCP).
    """

    name = "FilterNullValues"
    description = "Filter out records containing NULL values"
    cleansing_kind = OperationKind.FILTER_NULLS

    def _has_nullable_fields(self, flow: ETLGraph, point: ApplicationPoint) -> bool:
        return len(self._edge_of(flow, point).schema.nullable_fields) > 0

    def prerequisites(self) -> tuple[Prerequisite, ...]:
        return super().prerequisites() + (
            Prerequisite(
                "nullable_fields",
                self._has_nullable_fields,
                "the transition schema contains at least one nullable field",
            ),
        )

    def _build_subflow(self, schema: Schema) -> ETLGraph:
        subflow = ETLGraph(name="fcp_filter_null_values")
        subflow.add_operation(
            _operation(
                OperationKind.FILTER_NULLS,
                "filter_null_values",
                schema.without_nulls(),
                cost_per_tuple=0.004,
            )
        )
        return subflow


class RemoveDuplicateEntries(_EdgeCleansingPattern):
    """Remove records whose key duplicates another record on the edge."""

    name = "RemoveDuplicateEntries"
    description = "Deduplicate records crossing the transition"
    cleansing_kind = OperationKind.DEDUPLICATE

    def _build_subflow(self, schema: Schema) -> ETLGraph:
        subflow = ETLGraph(name="fcp_remove_duplicates")
        key_fields = [f.name for f in schema.key_fields] or list(schema.names[:1])
        operation = _operation(
            OperationKind.DEDUPLICATE,
            "remove_duplicate_entries",
            schema,
            cost_per_tuple=0.008,
            fixed_cost=10.0,
        )
        operation.config["keys"] = key_fields
        subflow.add_operation(operation)
        return subflow


class CrosscheckSources(_EdgeCleansingPattern):
    """Crosscheck records against an alternative data source.

    A more elaborate data-quality FCP: the sub-flow extracts reference data
    from an alternative source, and a crosscheck operation corrects records
    that disagree with it.  Requires the configuration of an additional
    data source, modelled by the ``reference`` configuration entry.
    """

    name = "CrosscheckSources"
    description = "Crosscheck values against an alternative data source"
    cleansing_kind = OperationKind.CROSSCHECK

    def __init__(self, reference_source: str = "alternative_source", reference_rows: int = 500):
        self.reference_source = reference_source
        self.reference_rows = reference_rows

    def _build_subflow(self, schema: Schema) -> ETLGraph:
        # The crosscheck construct: the interposed operation consults the
        # alternative source configured on it.  It is kept as a single
        # node so the sub-flow has one entry and one exit; the alternative
        # source access is part of the operation configuration, as the
        # paper describes for "more elaborate implementations".
        subflow = ETLGraph(name="fcp_crosscheck_sources")
        crosscheck = _operation(
            OperationKind.CROSSCHECK,
            "crosscheck_sources",
            schema,
            cost_per_tuple=0.02,
            fixed_cost=25.0,
        )
        crosscheck.config["reference"] = self.reference_source
        crosscheck.config["reference_rows"] = self.reference_rows
        subflow.add_operation(crosscheck)
        return subflow


def _operation(kind, name, schema, **properties):
    """Small helper creating an operation with fresh properties.

    The operation identifier is fixed to ``name`` so that pattern
    deployment is deterministic (grafting derives unique host identifiers
    from it); repeated planning runs on the same flow therefore produce
    identically labelled alternatives.
    """
    from repro.etl.operations import Operation

    return Operation(
        kind=kind,
        name=name,
        op_id=name,
        output_schema=schema,
        properties=OperationProperties(**properties),
    )
