"""User-defined Flow Component Patterns.

Part P3 of the paper's demo walkthrough guides users through defining
their own Flow Component Patterns by extending and pre-configuring the
existing ones, and saving them to the palette for future executions.  This
module provides a declarative way to do that without subclassing:
:class:`CustomPatternSpec` describes the operation to interpose and the
conditions under which the pattern applies, and :class:`CustomEdgePattern`
turns the spec into a fully fledged pattern object that can be registered
in the palette.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.etl.graph import ETLGraph
from repro.etl.operations import Operation, OperationKind
from repro.etl.properties import OperationProperties
from repro.etl.schema import Schema
from repro.etl.subflow import insert_on_edge
from repro.patterns.base import (
    ApplicationPoint,
    ApplicationPointType,
    FlowComponentPattern,
    Prerequisite,
)
from repro.quality.framework import QualityCharacteristic


@dataclass(frozen=True)
class CustomPatternSpec:
    """Declarative description of a custom edge pattern.

    Attributes
    ----------
    name, description:
        Pattern identity shown in the palette.
    operation_kind:
        The ETL operation the pattern interposes on the chosen edge.
    improves:
        Quality characteristics the pattern is intended to improve.
    cost_per_tuple, fixed_cost, selectivity:
        Cost model of the interposed operation.
    operation_config:
        Extra configuration copied onto the interposed operation.
    requires_numeric_field:
        Prerequisite: the edge schema must contain a numeric field.
    requires_temporal_field:
        Prerequisite: the edge schema must contain a date/timestamp field.
    requires_nullable_field:
        Prerequisite: the edge schema must contain a nullable field.
    prefer_near_sources:
        Placement heuristic: fitness decreases with distance from the
        sources when true, increases when false.
    """

    name: str
    description: str = ""
    operation_kind: OperationKind = OperationKind.CLEANSE
    improves: tuple[QualityCharacteristic, ...] = (QualityCharacteristic.DATA_QUALITY,)
    cost_per_tuple: float = 0.01
    fixed_cost: float = 0.0
    selectivity: float = 1.0
    operation_config: Mapping[str, Any] = field(default_factory=dict)
    requires_numeric_field: bool = False
    requires_temporal_field: bool = False
    requires_nullable_field: bool = False
    prefer_near_sources: bool = True

    def to_dict(self) -> dict[str, Any]:
        """Serialise the spec (used to persist custom palettes)."""
        return {
            "name": self.name,
            "description": self.description,
            "operation_kind": self.operation_kind.value,
            "improves": [c.value for c in self.improves],
            "cost_per_tuple": self.cost_per_tuple,
            "fixed_cost": self.fixed_cost,
            "selectivity": self.selectivity,
            "operation_config": dict(self.operation_config),
            "requires_numeric_field": self.requires_numeric_field,
            "requires_temporal_field": self.requires_temporal_field,
            "requires_nullable_field": self.requires_nullable_field,
            "prefer_near_sources": self.prefer_near_sources,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CustomPatternSpec":
        """Deserialise a spec produced by :meth:`to_dict`."""
        return cls(
            name=str(data["name"]),
            description=str(data.get("description", "")),
            operation_kind=OperationKind(data.get("operation_kind", "cleanse")),
            improves=tuple(
                QualityCharacteristic(value) for value in data.get("improves", ["data_quality"])
            ),
            cost_per_tuple=float(data.get("cost_per_tuple", 0.01)),
            fixed_cost=float(data.get("fixed_cost", 0.0)),
            selectivity=float(data.get("selectivity", 1.0)),
            operation_config=dict(data.get("operation_config", {})),
            requires_numeric_field=bool(data.get("requires_numeric_field", False)),
            requires_temporal_field=bool(data.get("requires_temporal_field", False)),
            requires_nullable_field=bool(data.get("requires_nullable_field", False)),
            prefer_near_sources=bool(data.get("prefer_near_sources", True)),
        )


class CustomEdgePattern(FlowComponentPattern):
    """A user-defined pattern that interposes one operation on an edge."""

    point_type = ApplicationPointType.EDGE

    def __init__(self, spec: CustomPatternSpec):
        self.spec = spec
        self.name = spec.name
        self.description = spec.description
        self.improves = spec.improves

    # -- prerequisites ---------------------------------------------------

    def _schema_requirements(self, flow: ETLGraph, point: ApplicationPoint) -> bool:
        schema = self._edge_of(flow, point).schema
        if len(schema) == 0:
            return False
        if self.spec.requires_numeric_field and not schema.numeric_fields:
            return False
        if self.spec.requires_temporal_field and not schema.temporal_fields:
            return False
        if self.spec.requires_nullable_field and not schema.nullable_fields:
            return False
        return True

    def _not_already_present(self, flow: ETLGraph, point: ApplicationPoint) -> bool:
        source, target = point.edge
        kinds = {flow.operation(source).kind, flow.operation(target).kind}
        return self.spec.operation_kind not in kinds

    def prerequisites(self) -> tuple[Prerequisite, ...]:
        return (
            Prerequisite(
                "schema_requirements",
                self._schema_requirements,
                "the transition schema satisfies the field requirements of the pattern",
            ),
            Prerequisite(
                "not_already_present",
                self._not_already_present,
                "no identical operation adjacent to the transition",
            ),
        )

    # -- heuristics -------------------------------------------------------

    def fitness(self, flow: ETLGraph, point: ApplicationPoint) -> float:
        distance = flow.distance_from_sources(point.edge[0])
        longest = max(flow.longest_path_length(), 1)
        proximity = max(0.0, 1.0 - distance / (longest + 1))
        return proximity if self.spec.prefer_near_sources else 1.0 - proximity

    # -- deployment -------------------------------------------------------

    def apply(self, flow: ETLGraph, point: ApplicationPoint) -> ETLGraph:
        edge = self._edge_of(flow, point)
        schema = edge.schema
        subflow = self._memoized_subflow(schema, lambda: self._build_subflow(schema))
        new_flow, _ = insert_on_edge(
            flow,
            *point.edge,
            subflow,
            description=f"{self.name} @ {point.describe()}",
        )
        return new_flow

    def _build_subflow(self, schema: Schema) -> ETLGraph:
        subflow = ETLGraph(name=f"fcp_custom_{self.spec.name.lower()}")
        operation = Operation(
            kind=self.spec.operation_kind,
            name=self.spec.name.lower(),
            op_id=self.spec.name.lower(),
            output_schema=schema,
            config=dict(self.spec.operation_config),
            properties=OperationProperties(
                cost_per_tuple=self.spec.cost_per_tuple,
                fixed_cost=self.spec.fixed_cost,
                selectivity=self.spec.selectivity,
            ),
        )
        subflow.add_operation(operation)
        return subflow
