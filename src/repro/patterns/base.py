"""Framework for Flow Component Patterns.

Central to the implementation is the notion of *application point* of a
FCP, which can be either a node (an ETL flow operation), an edge, or the
entire ETL flow graph (Section 2.2).  Each FCP is related to a particular
set of *applicability prerequisites* that have to be satisfied
conjunctively to determine a valid application point; apart from these
strict conditions, *heuristics* determine the fitness of the FCP for the
different parts of the flow (Section 3).
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.etl.graph import ETLGraph, Edge
from repro.etl.operations import Operation
from repro.quality.framework import QualityCharacteristic


class ApplicationPointType(enum.Enum):
    """The kind of flow element a pattern attaches to."""

    NODE = "node"
    EDGE = "edge"
    GRAPH = "graph"


@dataclass(frozen=True)
class ApplicationPoint:
    """A concrete place on a flow where a pattern may be deployed.

    Attributes
    ----------
    point_type:
        Node, edge, or whole-graph application.
    node_id:
        The target operation (node applications only).
    edge:
        The ``(source, target)`` pair of the target transition (edge
        applications only).
    fitness:
        Heuristic fitness of deploying the pattern here, in ``[0, 1]``;
        used by heuristic deployment policies to rank candidate points.
    """

    point_type: ApplicationPointType
    node_id: str = ""
    edge: tuple[str, str] = ("", "")
    fitness: float = 0.5

    def describe(self) -> str:
        """Short human-readable description of the point."""
        if self.point_type is ApplicationPointType.NODE:
            return f"node {self.node_id}"
        if self.point_type is ApplicationPointType.EDGE:
            return f"edge {self.edge[0]}->{self.edge[1]}"
        return "entire flow"

    def key(self) -> tuple:
        """A hashable identity for deduplication (ignores fitness)."""
        return (self.point_type.value, self.node_id, self.edge)


@dataclass(frozen=True)
class Prerequisite:
    """One applicability prerequisite of a pattern.

    A prerequisite is a named predicate over ``(flow, point)``.  All
    prerequisites of a pattern must hold conjunctively for the point to be
    a valid application point.
    """

    name: str
    predicate: Callable[[ETLGraph, ApplicationPoint], bool]
    description: str = ""

    def check(self, flow: ETLGraph, point: ApplicationPoint) -> bool:
        """Whether the prerequisite holds at the given point."""
        return bool(self.predicate(flow, point))


@dataclass(frozen=True)
class PatternApplication:
    """Record of one pattern deployment on a flow (kept in planner results)."""

    pattern: str
    point: ApplicationPoint

    def describe(self) -> str:
        """Human-readable record, e.g. ``FilterNullValues @ edge a->b``."""
        return f"{self.pattern} @ {self.point.describe()}"


class FlowComponentPattern(abc.ABC):
    """Base class of every Flow Component Pattern.

    Subclasses declare their metadata (name, improved characteristics,
    application point type), their applicability prerequisites and their
    placement heuristic, and implement :meth:`apply`, which grafts the
    pattern onto a copy of the host flow and returns the new flow.
    """

    #: Unique pattern name (as listed in the palette, Fig. 6).
    name: str = ""
    #: Human-readable description of what the pattern adds to a flow.
    description: str = ""
    #: Quality characteristics the pattern is intended to improve.
    improves: tuple[QualityCharacteristic, ...] = ()
    #: The kind of application point the pattern attaches to.
    point_type: ApplicationPointType = ApplicationPointType.EDGE

    # ------------------------------------------------------------------
    # Prerequisites and heuristics
    # ------------------------------------------------------------------

    def prerequisites(self) -> Sequence[Prerequisite]:
        """The conjunctive applicability prerequisites of the pattern."""
        return ()

    def fitness(self, flow: ETLGraph, point: ApplicationPoint) -> float:
        """Heuristic fitness of the pattern at a valid point (``[0, 1]``).

        The default is a neutral 0.5; concrete patterns override this with
        the heuristics the paper describes (e.g. data cleaning close to the
        sources, checkpoints after the most expensive operations).
        """
        return 0.5

    def is_applicable_at(self, flow: ETLGraph, point: ApplicationPoint) -> bool:
        """Whether every prerequisite holds at ``point``."""
        if point.point_type is not self.point_type:
            return False
        return all(prereq.check(flow, point) for prereq in self.prerequisites())

    # ------------------------------------------------------------------
    # Candidate enumeration
    # ------------------------------------------------------------------

    def candidate_points(self, flow: ETLGraph) -> Iterable[ApplicationPoint]:
        """Raw candidate points of the pattern's type, before prerequisites."""
        if self.point_type is ApplicationPointType.NODE:
            for op in flow.operations():
                yield ApplicationPoint(ApplicationPointType.NODE, node_id=op.op_id)
        elif self.point_type is ApplicationPointType.EDGE:
            for edge in flow.edges():
                yield ApplicationPoint(
                    ApplicationPointType.EDGE, edge=(edge.source, edge.target)
                )
        else:
            yield ApplicationPoint(ApplicationPointType.GRAPH)

    def find_application_points(self, flow: ETLGraph) -> list[ApplicationPoint]:
        """All valid application points on ``flow``, with heuristic fitness.

        This guarantees the paper's claim that *all* potential application
        points on the ETL flow are checked for each FCP.
        """
        points: list[ApplicationPoint] = []
        for candidate in self.candidate_points(flow):
            if not self.is_applicable_at(flow, candidate):
                continue
            fitness = max(0.0, min(1.0, self.fitness(flow, candidate)))
            points.append(
                ApplicationPoint(
                    point_type=candidate.point_type,
                    node_id=candidate.node_id,
                    edge=candidate.edge,
                    fitness=fitness,
                )
            )
        return points

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def apply(self, flow: ETLGraph, point: ApplicationPoint) -> ETLGraph:
        """Deploy the pattern at ``point`` and return the new flow.

        Implementations must not mutate ``flow``; they work on a copy (the
        grafting helpers in :mod:`repro.etl.subflow` already do).  The
        copy inherits the host's copy mode, so under the planner's
        ``copy_mode="cow"`` the returned flow shares untouched operation
        payloads with the host: any in-place write to an existing
        operation must go through ``ETLGraph.mutable_operation`` (never
        ``operation``), and annotations should be set via
        ``ETLGraph.set_annotation``, so the copy-on-write fault fires and
        the application is captured in the flow's delta.

        Two further contract points the generator's prefix cache relies
        on:

        * the same host may be passed to ``apply`` many times (a cached
          prefix flow is extended into every sibling combination), so
          leaving the host untouched is load-bearing, not just hygiene;
        * given the same host state and point, ``apply`` must be
          deterministic -- no global counters or unseeded randomness --
          so a combination produces byte-identical flows whether its
          prefix was replayed or served from the cache (grafted
          operation identifiers already derive from the host alone, see
          :func:`repro.etl.subflow._unique_id`).
        """

    def apply_checked(self, flow: ETLGraph, point: ApplicationPoint) -> ETLGraph:
        """Validate the point against the prerequisites, then apply."""
        if not self.is_applicable_at(flow, point):
            raise ValueError(
                f"pattern {self.name!r} is not applicable at {point.describe()}"
            )
        return self.apply(flow, point)

    # ------------------------------------------------------------------
    # Shared helpers for subclasses
    # ------------------------------------------------------------------

    def _memoized_subflow(self, key_obj: object, builder: Callable[[], ETLGraph]) -> ETLGraph:
        """Build a sub-flow template once per anchor object and reuse it.

        Patterns instantiate their sub-flow from the application point's
        schema (or operation); across the thousands of candidate flows of
        one planning run those anchors are the *same objects* (flow
        copies share schemas and, copy-on-write, operations), so the
        template -- and every schema object inside it -- is built once.
        Grafting copies the template's operations into the host, so the
        cached instance is never mutated.  The memo pins the anchor,
        keeping its id stable for the lifetime of the entry, and is
        bounded: node-anchored patterns in deep mode see fresh anchor
        objects on every application (no hits), so without the bound the
        cache would grow with every candidate; once full it is flushed
        wholesale, templates being cheap to rebuild.
        """
        cache: dict[int, tuple[object, ETLGraph]] = getattr(self, "_subflow_cache", None)
        if cache is None:
            cache = self._subflow_cache = {}
        key = id(key_obj)
        hit = cache.get(key)
        if hit is not None and hit[0] is key_obj:
            return hit[1]
        built = builder()
        if len(cache) >= 256:
            cache.clear()
        cache[key] = (key_obj, built)
        return built

    def _edge_of(self, flow: ETLGraph, point: ApplicationPoint) -> Edge:
        """The host-flow edge targeted by an edge application point."""
        return flow.edge(*point.edge)

    def _node_of(self, flow: ETLGraph, point: ApplicationPoint) -> Operation:
        """The host-flow operation targeted by a node application point."""
        return flow.operation(point.node_id)

    def describe(self) -> dict[str, object]:
        """Metadata summary used by the palette table (Fig. 6) and reports."""
        return {
            "name": self.name,
            "description": self.description,
            "improves": [c.label for c in self.improves],
            "application_point": self.point_type.value,
            "prerequisites": [p.name for p in self.prerequisites()],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
