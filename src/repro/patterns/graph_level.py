"""Graph-level (process-wide) Flow Component Patterns.

The entire ETL flow graph as application point serves for process-wide
configuration and management operations that are not directly related to
the functionality of specific flow components (Section 2.2): security
configurations (encryption, role-based access), management of the quality
of hardware/software resources, and adjusting the frequency of process
recurrence.  These patterns attach annotations to the flow graph that the
simulator and the measure estimators interpret.
"""

from __future__ import annotations

from repro.etl.graph import ETLGraph
from repro.etl.subflow import wrap_graph
from repro.patterns.base import (
    ApplicationPoint,
    ApplicationPointType,
    FlowComponentPattern,
    Prerequisite,
)
from repro.quality.framework import QualityCharacteristic
from repro.simulator.resources import ResourceTier


class _AnnotationPattern(FlowComponentPattern):
    """Base class for graph-level patterns implemented as flow annotations."""

    point_type = ApplicationPointType.GRAPH
    annotation_key: str = ""

    def annotation_value(self) -> object:
        raise NotImplementedError

    def _not_yet_configured(self, flow: ETLGraph, point: ApplicationPoint) -> bool:
        return self.annotation_key not in flow.annotations

    def prerequisites(self) -> tuple[Prerequisite, ...]:
        return (
            Prerequisite(
                "not_yet_configured",
                self._not_yet_configured,
                f"the flow does not already configure {self.annotation_key!r}",
            ),
        )

    def apply(self, flow: ETLGraph, point: ApplicationPoint) -> ETLGraph:
        new_flow, _ = wrap_graph(
            flow,
            self.annotation_key,
            self.annotation_value(),
            description=f"{self.name} @ entire flow",
        )
        return new_flow


class EncryptDataFlow(_AnnotationPattern):
    """Encrypt data in transit throughout the process.

    Improves security at the price of a per-tuple processing overhead
    applied by the simulator.
    """

    name = "EncryptDataFlow"
    description = "Apply encryption to data exchanged between operations"
    improves = (QualityCharacteristic.SECURITY,)
    annotation_key = "encryption"

    def annotation_value(self) -> object:
        return True


class RoleBasedAccessControl(_AnnotationPattern):
    """Enforce role-based access control on the process and its staging areas."""

    name = "RoleBasedAccessControl"
    description = "Apply role-based access control to the process resources"
    improves = (QualityCharacteristic.SECURITY,)
    annotation_key = "access_control"

    def annotation_value(self) -> object:
        return "role_based"


class UpgradeResourceTier(_AnnotationPattern):
    """Run the process on a larger (faster, more parallel, more expensive) resource tier."""

    name = "UpgradeResourceTier"
    description = "Provision a larger execution environment for the process"
    improves = (QualityCharacteristic.PERFORMANCE,)
    annotation_key = "resource_tier"

    def __init__(self, tier: ResourceTier | str = ResourceTier.LARGE):
        self.tier = ResourceTier(tier) if isinstance(tier, str) else tier

    def annotation_value(self) -> object:
        return self.tier.value


class AdjustScheduleFrequency(_AnnotationPattern):
    """Adjust the frequency of process recurrence.

    Running the process more often reduces the age of the loaded data
    (better data quality / freshness) but multiplies the daily execution
    cost; running it less often does the opposite.
    """

    name = "AdjustScheduleFrequency"
    description = "Change how many times per day the process is executed"
    improves = (QualityCharacteristic.DATA_QUALITY,)
    annotation_key = "schedule_frequency_per_day"

    def __init__(self, frequency_per_day: float = 48.0):
        if frequency_per_day <= 0:
            raise ValueError("frequency_per_day must be positive")
        self.frequency_per_day = frequency_per_day

    def annotation_value(self) -> object:
        return self.frequency_per_day
