"""The POIESIS planner.

Wires the three stages of the architecture shown in Fig. 3 -- *Pattern
Generation*, *Pattern Application* and *Measures Estimation* -- into one
planning run: given an initial ETL flow and a processing configuration,
the planner produces a set of alternative ETL flows with quality profiles,
filters them against the user's constraints, and computes the Pareto
frontier (skyline) presented to the user together with the relative-change
comparison of every alternative against the initial flow.

The stages run as a *streaming pipeline*: candidates flow out of the lazy
generator straight into the parallel evaluator with a bounded in-flight
window (``eval_batch_size``), profiles are memoized in a shared
:class:`~repro.quality.estimator.ProfileCache` (``cache_profiles``), and
an optional two-phase beam screening (``screening_beam``) scores every
candidate with cheap static-only estimation before spending simulation
time on the survivors.  With all knobs at their defaults the results are
identical to the original eager generate-then-evaluate pipeline.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence

from repro.cache import CacheBackend, build_profile_cache
from repro.obs.metrics import enabled_registry, maybe_timer
from repro.core.alternatives import AlternativeFlow, AlternativeGenerator
from repro.core.comparison import FlowComparison, compare_profiles
from repro.core.configuration import ProcessingConfiguration
from repro.core.evaluator import ParallelEvaluator
from repro.core.pareto import pareto_front_profiles
from repro.core.policies import DeploymentPolicy, policy_by_name
from repro.etl.graph import ETLGraph
from repro.etl.validation import validate_flow
from repro.patterns.registry import PatternRegistry, default_palette
from repro.quality.composite import QualityProfile
from repro.quality.estimator import EstimationSettings, QualityEstimator
from repro.quality.framework import MeasureRegistry, QualityCharacteristic, default_registry

logger = logging.getLogger("repro.core.planner")


@dataclass
class PlanningResult:
    """The outcome of one planning run.

    Attributes
    ----------
    initial_flow:
        The flow the planning run started from.
    baseline_profile:
        Quality profile of the initial flow (the Fig. 5 baseline).
    alternatives:
        Every generated alternative that satisfied the constraints, with
        its quality profile.
    skyline_indices:
        Indices (into ``alternatives``) of the Pareto-optimal designs --
        the only points the scatter plot shows.
    characteristics:
        The quality dimensions the skyline was computed on.
    discarded_by_constraints:
        Number of alternatives dropped because they violated a constraint.
    """

    initial_flow: ETLGraph
    baseline_profile: QualityProfile
    alternatives: list[AlternativeFlow] = field(default_factory=list)
    skyline_indices: list[int] = field(default_factory=list)
    characteristics: tuple[QualityCharacteristic, ...] = ()
    discarded_by_constraints: int = 0

    @property
    def skyline(self) -> list[AlternativeFlow]:
        """The Pareto-optimal alternative flows."""
        return [self.alternatives[i] for i in self.skyline_indices]

    def comparison(self, alternative: AlternativeFlow) -> FlowComparison:
        """The Fig. 5 relative-change view of one alternative vs. the initial flow."""
        if alternative.profile is None:
            raise ValueError("the alternative has not been evaluated yet")
        return compare_profiles(alternative.profile, self.baseline_profile)

    def best_for(self, characteristic: QualityCharacteristic) -> AlternativeFlow:
        """The alternative with the highest composite score on one characteristic.

        Unevaluated alternatives (``profile is None``) are skipped rather
        than silently scored as 0.0; if nothing has been evaluated the
        ranking would be meaningless, so a :class:`ValueError` is raised.
        """
        if not self.alternatives:
            raise ValueError("the planning run produced no alternatives")
        evaluated = [alt for alt in self.alternatives if alt.profile is not None]
        if not evaluated:
            raise ValueError("none of the alternatives has been evaluated yet")
        return max(evaluated, key=lambda alt: alt.profile.score(characteristic))

    def fingerprint(self) -> tuple:
        """A hashable digest of everything observable about this result.

        Baseline measure values, per-alternative flow signatures with
        their full profiles (values and composite scores), and the
        skyline -- two results compare equal iff a user could not tell
        them apart.  This is the equality the tier-equivalence and
        service-equivalence suites (and the benchmarks' ``identical``
        columns) assert on; keep it exhaustive, never approximate.
        """

        def profile_fingerprint(profile: QualityProfile | None) -> tuple | None:
            if profile is None:
                return None
            return (
                tuple(sorted((k, v.value) for k, v in profile.values.items())),
                tuple(sorted((c.value, s) for c, s in profile.scores.items())),
            )

        return (
            profile_fingerprint(self.baseline_profile),
            tuple(
                (alt.flow.signature(), profile_fingerprint(alt.profile))
                for alt in self.alternatives
            ),
            tuple(self.skyline_indices),
        )

    def summary(self) -> dict[str, object]:
        """Compact numeric summary of the planning run (used by reports/benches)."""
        return {
            "initial_flow": self.initial_flow.name,
            "alternatives": len(self.alternatives),
            "skyline_size": len(self.skyline_indices),
            "discarded_by_constraints": self.discarded_by_constraints,
            "characteristics": [c.value for c in self.characteristics],
        }


class Planner:
    """The POIESIS Planner component.

    Parameters
    ----------
    palette:
        The repository of available Flow Component Patterns; defaults to
        the full built-in palette.
    configuration:
        User-defined processing configuration; defaults to a heuristic
        policy with a pattern budget of 2.
    policy:
        Pre-built deployment policy overriding ``configuration.policy``.
    measures:
        Measure registry used for the quality estimation; defaults to the
        Fig. 1-style default registry.
    profile_cache:
        Pre-built cache backend overriding the tier the configuration
        would select -- the hook the redesign service uses to make a
        whole worker pool of concurrent sessions share one tier.
        Ignored when ``configuration.cache_profiles`` is false.
    """

    def __init__(
        self,
        palette: PatternRegistry | None = None,
        configuration: ProcessingConfiguration | None = None,
        policy: DeploymentPolicy | None = None,
        measures: MeasureRegistry | None = None,
        profile_cache: CacheBackend | None = None,
    ) -> None:
        self.palette = palette or default_palette()
        self.configuration = configuration or ProcessingConfiguration()
        self.policy = policy or policy_by_name(
            self.configuration.policy,
            priorities=dict(self.configuration.goal_priorities) or None,
            seed=self.configuration.seed,
        )
        self.measures = measures or default_registry()
        # The metrics registry every component of this planner records
        # into; ``None`` (the default) keeps all instrumentation sites on
        # their free fast path.
        self.metrics = enabled_registry(self.configuration)
        # The cache tier is selected by the configuration -- the default
        # in-process LRU, a persistent disk store, memory-over-disk, or
        # a network cache service -- unless the caller injected a shared
        # backend.  Either way one backend serves every estimator of
        # this planner, every re-plan, and -- through RedesignSession --
        # every iteration.
        if not self.configuration.cache_profiles:
            self.profile_cache: CacheBackend | None = None
        elif profile_cache is not None:
            self.profile_cache = profile_cache
        else:
            self.profile_cache = build_profile_cache(
                tier=self.configuration.cache_tier,
                cache_dir=self.configuration.cache_dir,
                max_bytes=self.configuration.cache_max_bytes,
                url=self.configuration.cache_url,
                timeout=self.configuration.cache_timeout,
                compression=self.configuration.cache_compression,
                auth_token=self.configuration.cache_auth_token,
                recovery_interval=self.configuration.cache_recovery_interval,
                max_pending=self.configuration.cache_max_pending,
                urls=self.configuration.cache_urls,
                ring_replicas=self.configuration.fleet_ring_replicas,
                registry=self.metrics,
            )
        estimator_settings = EstimationSettings(
            simulation_runs=self.configuration.simulation_runs,
            seed=self.configuration.seed,
        )
        self.estimator = QualityEstimator(
            registry=self.measures, settings=estimator_settings, cache=self.profile_cache
        )
        self.evaluator = ParallelEvaluator(
            estimator=self.estimator,
            workers=self.configuration.parallel_workers,
            backend=self.configuration.backend,
            registry=self.metrics,
        )
        # Static-only twin used by the beam-screening first phase; shares
        # the registry and the profile cache (settings fingerprints keep
        # static and simulated entries apart).
        screening_settings = EstimationSettings(
            simulation_runs=self.configuration.simulation_runs,
            seed=self.configuration.seed,
            use_simulation=False,
        )
        self.screening_estimator = QualityEstimator(
            registry=self.measures, settings=screening_settings, cache=self.profile_cache
        )
        self.screening_evaluator = ParallelEvaluator(
            estimator=self.screening_estimator,
            workers=self.configuration.parallel_workers,
            backend=self.configuration.backend,
            registry=self.metrics,
        )
        self.generator = AlternativeGenerator(
            palette=self.palette, policy=self.policy, configuration=self.configuration
        )

    # ------------------------------------------------------------------
    # Individual stages (exposed for benchmarks and fine-grained use)
    # ------------------------------------------------------------------

    def generate_alternatives(self, flow: ETLGraph) -> list[AlternativeFlow]:
        """Pattern Generation + Pattern Application: produce alternative flows."""
        validate_flow(flow, raise_on_error=True)
        return self.generator.generate(flow)

    def stream_alternatives(self, flow: ETLGraph) -> Iterator[AlternativeFlow]:
        """Lazy variant of :meth:`generate_alternatives` (streaming pipeline)."""
        validate_flow(flow, raise_on_error=True)
        return self.generator.generate_iter(flow)

    def evaluate_alternatives(
        self, alternatives: Sequence[AlternativeFlow]
    ) -> list[AlternativeFlow]:
        """Measures Estimation: fill in the quality profile of each alternative."""
        return self.evaluator.evaluate(list(alternatives))

    def evaluate_flow(self, flow: ETLGraph) -> QualityProfile:
        """Evaluate a single flow (used for the baseline profile)."""
        return self.estimator.evaluate(flow)

    # ------------------------------------------------------------------
    # Full pipeline
    # ------------------------------------------------------------------

    def plan(
        self,
        flow: ETLGraph,
        on_evaluated: Callable[[AlternativeFlow], None] | None = None,
    ) -> PlanningResult:
        """Run the full pipeline on an initial flow and return the result.

        ``on_evaluated`` is called once per alternative as its profile
        completes (in stream order, before constraint filtering) -- the
        hook live progress reporting (the redesign service's status
        endpoint) is built on.  The callback must be cheap and must not
        raise; it runs on the planning thread.

        Contract
        --------
        * ``flow`` must pass :func:`~repro.etl.validation.validate_flow`
          (a :class:`~repro.etl.validation.ValidationError` is raised
          otherwise) and is **never mutated**: alternatives are built on
          copies, and with ``copy_mode="cow"`` the generator works on a
          private snapshot so the caller's graph is never payload-aliased.
        * The call is eager (it returns a fully evaluated
          :class:`PlanningResult`) but internally *streaming*: candidates
          flow from the lazy generator into the evaluator with at most
          ``eval_batch_size`` submissions in flight, so memory stays
          proportional to the window, not to the alternative space.  Use
          :meth:`stream_alternatives` for candidate-by-candidate control.
        * Deterministic for a fixed configuration: same flow + same
          :class:`~repro.core.configuration.ProcessingConfiguration`
          (including ``seed``) produce the same alternatives, labels,
          profiles and skyline, regardless of ``copy_mode``,
          ``prefix_cache``, ``backend`` or worker count.
        * When ``screening_beam`` is set, a static-only scoring pass
          screens the stream first and only the beam survivors are
          simulated -- the single knob that deliberately changes which
          profiles get computed.
        """
        config = self.configuration
        registry = self.metrics
        campaign = maybe_timer(registry, "planner.plan_seconds")
        campaign.__enter__()
        baseline_profile = self.evaluate_flow(flow)
        candidates: Iterable[AlternativeFlow] = self.stream_alternatives(flow)
        if registry is not None:
            candidates = self._timed_generation(candidates, registry)
        if config.screening_beam is not None:
            with maybe_timer(registry, "planner.phase.screen_seconds"):
                candidates = self._screen(candidates)

        kept: list[AlternativeFlow] = []
        discarded = 0
        with maybe_timer(registry, "planner.phase.estimate_seconds"):
            for alternative in self.evaluator.evaluate_stream(
                candidates, batch_size=config.eval_batch_size
            ):
                assert alternative.profile is not None
                if on_evaluated is not None:
                    on_evaluated(alternative)
                if config.satisfies_constraints(alternative.profile):
                    kept.append(alternative)
                else:
                    discarded += 1

        with maybe_timer(registry, "planner.phase.rank_seconds"):
            characteristics = tuple(config.skyline_characteristics)
            profiles = [alt.profile for alt in kept if alt.profile is not None]
            skyline = pareto_front_profiles(profiles, characteristics) if profiles else []

        campaign.__exit__(None, None, None)
        if registry is not None:
            registry.counter("planner.plans").inc()
            registry.counter("planner.alternatives_evaluated").inc(len(kept) + discarded)
        logger.info(
            "planned %s: %d alternatives (%d skyline, %d discarded) in %.3fs",
            flow.name,
            len(kept),
            len(skyline),
            discarded,
            campaign.elapsed,
        )
        return PlanningResult(
            initial_flow=flow,
            baseline_profile=baseline_profile,
            alternatives=kept,
            skyline_indices=skyline,
            characteristics=characteristics,
            discarded_by_constraints=discarded,
        )

    def execute_top_k(
        self,
        flow: ETLGraph,
        k: int = 5,
        repeats: int = 2,
        data_seed: int = 7,
        planning_result: "PlanningResult | None" = None,
    ) -> tuple["PlanningResult", "object"]:
        """Plan a flow, then *execute* its top-k alternatives (calibration).

        Runs the ordinary planning pipeline (or reuses an existing
        ``planning_result`` for the same flow), compiles the planner's
        top-k designs for the configuration's ``executor_backend``, runs
        them on sampled workload data, and returns
        ``(planning_result, calibration_report)`` where the report
        carries measured wall times and the simulated-vs-measured
        Spearman rank correlation
        (:class:`repro.exec.measured.CalibrationReport`).

        Execution is strictly read-only with respect to planning: the
        returned planning result is byte-identical (fingerprint-equal)
        to what :meth:`plan` alone produces.
        """
        from repro.exec.measured import execute_top_k as _execute_top_k

        result = planning_result if planning_result is not None else self.plan(flow)
        report = _execute_top_k(
            result,
            backend=self.configuration.executor_backend,
            k=k,
            repeats=repeats,
            data_seed=data_seed,
        )
        return result, report

    def _timed_generation(
        self, candidates: Iterable[AlternativeFlow], registry
    ) -> Iterator[AlternativeFlow]:
        """Meter the time spent *inside* the lazy generator.

        Generation and estimation overlap in the streaming pipeline, so
        the generate phase cannot be a wall-clock bracket around the
        loop; instead the time spent pulling each candidate out of the
        generator is accumulated and observed once per campaign as
        ``planner.phase.generate_seconds``.
        """
        total = 0.0
        iterator = iter(candidates)
        while True:
            start = time.perf_counter()
            try:
                candidate = next(iterator)
            except StopIteration:
                total += time.perf_counter() - start
                break
            total += time.perf_counter() - start
            yield candidate
        registry.histogram("planner.phase.generate_seconds").observe(total)

    def _screen(self, candidates: Iterable[AlternativeFlow]) -> list[AlternativeFlow]:
        """Two-phase beam screening: keep the statically best candidates.

        Every candidate is scored with static-only estimation (no
        simulator runs), ranked by the sum of its composite scores over
        the skyline characteristics, and the top ``screening_beam``
        survivors are returned *in generation order* with their profiles
        cleared, ready for full estimation.  Ties break towards earlier
        generation, keeping the screening deterministic.
        """
        beam = self.configuration.screening_beam
        assert beam is not None
        characteristics = tuple(self.configuration.skyline_characteristics)
        scored: list[tuple[float, int, AlternativeFlow]] = []
        screened_stream = self.screening_evaluator.evaluate_stream(
            candidates, batch_size=self.configuration.eval_batch_size
        )
        for index, alternative in enumerate(screened_stream):
            assert alternative.profile is not None
            score = sum(alternative.profile.score(c) for c in characteristics)
            scored.append((score, index, alternative))
        scored.sort(key=lambda item: (-item[0], item[1]))
        survivors = sorted(scored[:beam], key=lambda item: item[1])
        kept: list[AlternativeFlow] = []
        for _, _, alternative in survivors:
            alternative.profile = None  # the full simulated profile replaces the screen score
            kept.append(alternative)
        return kept
