"""The POIESIS planner.

Wires the three stages of the architecture shown in Fig. 3 -- *Pattern
Generation*, *Pattern Application* and *Measures Estimation* -- into one
planning run: given an initial ETL flow and a processing configuration,
the planner produces a set of alternative ETL flows with quality profiles,
filters them against the user's constraints, and computes the Pareto
frontier (skyline) presented to the user together with the relative-change
comparison of every alternative against the initial flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.alternatives import AlternativeFlow, AlternativeGenerator
from repro.core.comparison import FlowComparison, compare_profiles
from repro.core.configuration import ProcessingConfiguration
from repro.core.evaluator import ParallelEvaluator
from repro.core.pareto import pareto_front_profiles
from repro.core.policies import DeploymentPolicy, policy_by_name
from repro.etl.graph import ETLGraph
from repro.etl.validation import validate_flow
from repro.patterns.registry import PatternRegistry, default_palette
from repro.quality.composite import QualityProfile
from repro.quality.estimator import EstimationSettings, QualityEstimator
from repro.quality.framework import MeasureRegistry, QualityCharacteristic


@dataclass
class PlanningResult:
    """The outcome of one planning run.

    Attributes
    ----------
    initial_flow:
        The flow the planning run started from.
    baseline_profile:
        Quality profile of the initial flow (the Fig. 5 baseline).
    alternatives:
        Every generated alternative that satisfied the constraints, with
        its quality profile.
    skyline_indices:
        Indices (into ``alternatives``) of the Pareto-optimal designs --
        the only points the scatter plot shows.
    characteristics:
        The quality dimensions the skyline was computed on.
    discarded_by_constraints:
        Number of alternatives dropped because they violated a constraint.
    """

    initial_flow: ETLGraph
    baseline_profile: QualityProfile
    alternatives: list[AlternativeFlow] = field(default_factory=list)
    skyline_indices: list[int] = field(default_factory=list)
    characteristics: tuple[QualityCharacteristic, ...] = ()
    discarded_by_constraints: int = 0

    @property
    def skyline(self) -> list[AlternativeFlow]:
        """The Pareto-optimal alternative flows."""
        return [self.alternatives[i] for i in self.skyline_indices]

    def comparison(self, alternative: AlternativeFlow) -> FlowComparison:
        """The Fig. 5 relative-change view of one alternative vs. the initial flow."""
        if alternative.profile is None:
            raise ValueError("the alternative has not been evaluated yet")
        return compare_profiles(alternative.profile, self.baseline_profile)

    def best_for(self, characteristic: QualityCharacteristic) -> AlternativeFlow:
        """The alternative with the highest composite score on one characteristic."""
        if not self.alternatives:
            raise ValueError("the planning run produced no alternatives")
        return max(
            self.alternatives,
            key=lambda alt: alt.profile.score(characteristic) if alt.profile else 0.0,
        )

    def summary(self) -> dict[str, object]:
        """Compact numeric summary of the planning run (used by reports/benches)."""
        return {
            "initial_flow": self.initial_flow.name,
            "alternatives": len(self.alternatives),
            "skyline_size": len(self.skyline_indices),
            "discarded_by_constraints": self.discarded_by_constraints,
            "characteristics": [c.value for c in self.characteristics],
        }


class Planner:
    """The POIESIS Planner component.

    Parameters
    ----------
    palette:
        The repository of available Flow Component Patterns; defaults to
        the full built-in palette.
    configuration:
        User-defined processing configuration; defaults to a heuristic
        policy with a pattern budget of 2.
    policy:
        Pre-built deployment policy overriding ``configuration.policy``.
    measures:
        Measure registry used for the quality estimation; defaults to the
        Fig. 1-style default registry.
    """

    def __init__(
        self,
        palette: PatternRegistry | None = None,
        configuration: ProcessingConfiguration | None = None,
        policy: DeploymentPolicy | None = None,
        measures: MeasureRegistry | None = None,
    ) -> None:
        self.palette = palette or default_palette()
        self.configuration = configuration or ProcessingConfiguration()
        self.policy = policy or policy_by_name(
            self.configuration.policy,
            priorities=dict(self.configuration.goal_priorities) or None,
            seed=self.configuration.seed,
        )
        estimator_settings = EstimationSettings(
            simulation_runs=self.configuration.simulation_runs,
            seed=self.configuration.seed,
        )
        self.estimator = QualityEstimator(registry=measures, settings=estimator_settings)
        self.evaluator = ParallelEvaluator(
            estimator=self.estimator, workers=self.configuration.parallel_workers
        )
        self.generator = AlternativeGenerator(
            palette=self.palette, policy=self.policy, configuration=self.configuration
        )

    # ------------------------------------------------------------------
    # Individual stages (exposed for benchmarks and fine-grained use)
    # ------------------------------------------------------------------

    def generate_alternatives(self, flow: ETLGraph) -> list[AlternativeFlow]:
        """Pattern Generation + Pattern Application: produce alternative flows."""
        validate_flow(flow, raise_on_error=True)
        return self.generator.generate(flow)

    def evaluate_alternatives(
        self, alternatives: Sequence[AlternativeFlow]
    ) -> list[AlternativeFlow]:
        """Measures Estimation: fill in the quality profile of each alternative."""
        return self.evaluator.evaluate(list(alternatives))

    def evaluate_flow(self, flow: ETLGraph) -> QualityProfile:
        """Evaluate a single flow (used for the baseline profile)."""
        return self.estimator.evaluate(flow)

    # ------------------------------------------------------------------
    # Full pipeline
    # ------------------------------------------------------------------

    def plan(self, flow: ETLGraph) -> PlanningResult:
        """Run the full pipeline on an initial flow and return the result."""
        config = self.configuration
        baseline_profile = self.evaluate_flow(flow)
        alternatives = self.generate_alternatives(flow)
        alternatives = self.evaluate_alternatives(alternatives)

        kept: list[AlternativeFlow] = []
        discarded = 0
        for alternative in alternatives:
            assert alternative.profile is not None
            if config.satisfies_constraints(alternative.profile):
                kept.append(alternative)
            else:
                discarded += 1

        characteristics = tuple(config.skyline_characteristics)
        profiles = [alt.profile for alt in kept if alt.profile is not None]
        skyline = pareto_front_profiles(profiles, characteristics) if profiles else []

        return PlanningResult(
            initial_flow=flow,
            baseline_profile=baseline_profile,
            alternatives=kept,
            skyline_indices=skyline,
            characteristics=characteristics,
            discarded_by_constraints=discarded,
        )
