"""POIESIS core: the Planner component.

POIESIS is an implementation of the *Planner* component of the
user-centred declarative ETL (re-)design architecture (Section 3 of the
paper).  The planner takes an initial ETL flow and user-defined
configurations, generates Flow Component Patterns specific to that flow,
applies them in varying positions and combinations to produce alternative
ETL designs, estimates quality measures for each alternative, and exposes
the Pareto frontier of the alternatives together with per-flow comparisons
against the initial flow.  The redesign loop is iterative: the user
selects one alternative, the corresponding patterns are merged into the
flow, and a new cycle starts.
"""

from repro.core.configuration import MeasureConstraint, ProcessingConfiguration
from repro.core.policies import (
    DeploymentPolicy,
    ExhaustivePolicy,
    GoalDrivenPolicy,
    HeuristicPolicy,
    RandomPolicy,
    policy_by_name,
)
from repro.core.alternatives import AlternativeFlow, AlternativeGenerator
from repro.core.pareto import pareto_front, pareto_front_profiles
from repro.core.comparison import FlowComparison, compare_profiles
from repro.core.evaluator import ParallelEvaluator
from repro.core.planner import Planner, PlanningResult
from repro.core.session import RedesignSession, SessionIteration

__all__ = [
    "MeasureConstraint",
    "ProcessingConfiguration",
    "DeploymentPolicy",
    "ExhaustivePolicy",
    "HeuristicPolicy",
    "RandomPolicy",
    "GoalDrivenPolicy",
    "policy_by_name",
    "AlternativeFlow",
    "AlternativeGenerator",
    "pareto_front",
    "pareto_front_profiles",
    "FlowComparison",
    "compare_profiles",
    "ParallelEvaluator",
    "Planner",
    "PlanningResult",
    "RedesignSession",
    "SessionIteration",
]
