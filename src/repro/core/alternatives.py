"""Generation of alternative ETL flows.

The Pattern Generation / Pattern Application stages of the POIESIS
architecture (Fig. 3): for every pattern of the palette the valid
application points are enumerated on the initial flow, a deployment policy
selects which points to use, and alternative flows are produced by
deploying the patterns in varying positions and combinations -- singles,
pairs, triples, ... up to the configured pattern budget.  The complexity
of the full space is factorial in the size of the graph (Section 2.2), so
generation is bounded by ``max_alternatives`` and duplicate structures are
pruned via graph signatures.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.core.configuration import ProcessingConfiguration
from repro.core.policies import DeploymentPolicy, HeuristicPolicy
from repro.etl.graph import ETLGraph
from repro.etl.validation import is_valid
from repro.patterns.base import (
    ApplicationPoint,
    ApplicationPointType,
    FlowComponentPattern,
    PatternApplication,
)
from repro.patterns.registry import PatternRegistry
from repro.quality.composite import QualityProfile


@dataclass
class AlternativeFlow:
    """One alternative ETL design produced by the planner.

    Attributes
    ----------
    flow:
        The redesigned ETL flow.
    applications:
        The pattern deployments that produced it, in application order.
    profile:
        Quality profile filled in by the Measures Estimation stage
        (``None`` until evaluated).
    label:
        Display label (``ETL Flow 1``, ``ETL Flow 2``, ... as in Fig. 3).
    """

    flow: ETLGraph
    applications: tuple[PatternApplication, ...] = ()
    profile: QualityProfile | None = None
    label: str = ""

    def describe(self) -> str:
        """Human-readable summary of the applied patterns."""
        if not self.applications:
            return "initial flow (no patterns applied)"
        return " + ".join(app.describe() for app in self.applications)

    @property
    def pattern_names(self) -> tuple[str, ...]:
        """Names of the applied patterns, in order."""
        return tuple(app.pattern for app in self.applications)


@dataclass(frozen=True)
class _Deployment:
    """One candidate (pattern, point) pair selected by the policy."""

    pattern: FlowComponentPattern
    point: ApplicationPoint


class AlternativeGenerator:
    """Generates alternative flows from an initial flow and a palette."""

    def __init__(
        self,
        palette: PatternRegistry,
        policy: DeploymentPolicy | None = None,
        configuration: ProcessingConfiguration | None = None,
    ) -> None:
        self.palette = palette
        self.policy = policy or HeuristicPolicy()
        self.configuration = configuration or ProcessingConfiguration()

    # ------------------------------------------------------------------
    # Pattern generation (candidate deployments)
    # ------------------------------------------------------------------

    def candidate_deployments(self, flow: ETLGraph) -> list[_Deployment]:
        """All (pattern, point) pairs selected by the policy on ``flow``."""
        config = self.configuration
        patterns: Sequence[FlowComponentPattern] = list(self.palette)
        if config.pattern_names:
            patterns = [self.palette.get(name) for name in config.pattern_names]
        patterns = self.policy.select_patterns(patterns)

        deployments: list[_Deployment] = []
        for pattern in patterns:
            valid_points = pattern.find_application_points(flow)
            selected = self.policy.select_points(
                pattern, valid_points, flow, config.max_points_per_pattern
            )
            deployments.extend(_Deployment(pattern, point) for point in selected)
        return deployments

    def application_point_counts(self, flow: ETLGraph) -> dict[str, int]:
        """Number of *valid* application points per pattern (before the policy).

        Used by the DEMO1 benchmark to report the raw size of the problem
        space the paper calls factorial.
        """
        counts: dict[str, int] = {}
        for pattern in self.palette:
            counts[pattern.name] = len(pattern.find_application_points(flow))
        return counts

    # ------------------------------------------------------------------
    # Pattern application (alternative flows)
    # ------------------------------------------------------------------

    def generate(self, flow: ETLGraph) -> list[AlternativeFlow]:
        """Produce every alternative flow eagerly, as a list.

        Equivalent to ``list(generate_iter(flow))``; kept for callers that
        want the full alternative space at once (reports, ablations).
        """
        return list(self.generate_iter(flow))

    def generate_iter(self, flow: ETLGraph) -> Iterator[AlternativeFlow]:
        """Lazily produce alternative flows by combining candidate deployments.

        Combinations of size 1 up to ``pattern_budget`` are enumerated in
        increasing size; each combination is applied sequentially on a copy
        of the initial flow.  Deployments whose application point
        disappeared because of an earlier deployment in the same
        combination are skipped; combinations that end up applying nothing
        new, produce an invalid flow, or duplicate an already generated
        structure are discarded.

        This is a *true* generator: each alternative is built only when
        the consumer asks for the next one, so a streaming evaluator (or a
        benchmark slicing the space) never pays for candidates it does not
        consume.  Labels (``ETL Flow 1``, ``ETL Flow 2``, ...) follow the
        enumeration order and match the eager :meth:`generate` exactly.
        """
        deployments = self.candidate_deployments(flow)
        config = self.configuration
        produced = 0
        seen_signatures = {flow.signature()}

        for combo_size in range(1, config.pattern_budget + 1):
            for combo in itertools.combinations(deployments, combo_size):
                if produced >= config.max_alternatives:
                    return
                if not self._combination_is_reasonable(combo):
                    continue
                alternative = self._apply_combination(flow, combo)
                if alternative is None:
                    continue
                signature = alternative.flow.signature()
                if signature in seen_signatures:
                    continue
                seen_signatures.add(signature)
                produced += 1
                alternative.label = f"ETL Flow {produced}"
                yield alternative

    # ------------------------------------------------------------------

    def _combination_is_reasonable(self, combo: Sequence[_Deployment]) -> bool:
        """Cheap pre-checks avoiding obviously redundant combinations."""
        seen_points: set[tuple] = set()
        seen_graph_patterns: set[str] = set()
        for deployment in combo:
            point_key = (deployment.pattern.name,) + deployment.point.key()
            if point_key in seen_points:
                return False
            seen_points.add(point_key)
            if deployment.point.point_type is ApplicationPointType.GRAPH:
                if deployment.pattern.name in seen_graph_patterns:
                    return False
                seen_graph_patterns.add(deployment.pattern.name)
        return True

    def _apply_combination(
        self, flow: ETLGraph, combo: Sequence[_Deployment]
    ) -> AlternativeFlow | None:
        current = flow
        applied: list[PatternApplication] = []
        for deployment in combo:
            point = self._refresh_point(current, deployment)
            if point is None:
                continue
            try:
                current = deployment.pattern.apply(current, point)
            except (KeyError, ValueError):
                continue
            applied.append(PatternApplication(deployment.pattern.name, point))
        if not applied:
            return None
        if not is_valid(current):
            return None
        current.name = f"{flow.name}__{'+'.join(app.pattern for app in applied)}"
        return AlternativeFlow(flow=current, applications=tuple(applied))

    def _refresh_point(
        self, current: ETLGraph, deployment: _Deployment
    ) -> ApplicationPoint | None:
        """Check that the deployment's point still exists and is still valid."""
        point = deployment.point
        if point.point_type is ApplicationPointType.NODE:
            if point.node_id not in current:
                return None
        elif point.point_type is ApplicationPointType.EDGE:
            if not current.has_edge(*point.edge):
                return None
        if not deployment.pattern.is_applicable_at(current, point):
            return None
        return point
