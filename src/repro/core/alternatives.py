"""Generation of alternative ETL flows.

The Pattern Generation / Pattern Application stages of the POIESIS
architecture (Fig. 3): for every pattern of the palette the valid
application points are enumerated on the initial flow, a deployment policy
selects which points to use, and alternative flows are produced by
deploying the patterns in varying positions and combinations -- singles,
pairs, triples, ... up to the configured pattern budget.  The complexity
of the full space is factorial in the size of the graph (Section 2.2), so
generation is bounded by ``max_alternatives`` and duplicate structures are
pruned via graph signatures.

Under ``ProcessingConfiguration.copy_mode == "cow"`` the per-candidate
cost is proportional to the *delta* a pattern introduces, not to the flow:
combinations are applied as chained copy-on-write graphs, validated with
:func:`~repro.etl.validation.validate_delta`, and deduplicated via
incrementally maintained signatures.  :class:`GenerationStats` reports the
resulting application/validation time split.

Independently of the copy mode, ``itertools.combinations`` enumerates in
lexicographic order, so consecutive combinations share long prefixes: at
``pattern_budget=3`` the chain ``(a, b, c)`` differs from its predecessor
``(a, b, c')`` only in the last deployment.  With
``ProcessingConfiguration.prefix_cache`` on (the default) the generator
keeps the last chain's intermediate flows -- and, in COW mode, their
incrementally validated issue lists -- keyed by deployment prefix, and
extends the deepest cached prefix instead of re-applying it from the base
flow.  Reuse is reported through the ``prefix_hits`` /
``prefix_steps_reused`` / ``patterns_applied`` counters of
:class:`GenerationStats`.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.core.configuration import ProcessingConfiguration
from repro.core.policies import DeploymentPolicy, HeuristicPolicy
from repro.etl.graph import ETLGraph
from repro.etl.validation import (
    ValidationIssue,
    has_errors,
    is_valid,
    validate_delta,
    validate_flow,
)
from repro.patterns.base import (
    ApplicationPoint,
    ApplicationPointType,
    FlowComponentPattern,
    PatternApplication,
)
from repro.patterns.registry import PatternRegistry
from repro.quality.composite import QualityProfile


@dataclass
class AlternativeFlow:
    """One alternative ETL design produced by the planner.

    Attributes
    ----------
    flow:
        The redesigned ETL flow.
    applications:
        The pattern deployments that produced it, in application order.
    profile:
        Quality profile filled in by the Measures Estimation stage
        (``None`` until evaluated).
    label:
        Display label (``ETL Flow 1``, ``ETL Flow 2``, ... as in Fig. 3).
    """

    flow: ETLGraph
    applications: tuple[PatternApplication, ...] = ()
    profile: QualityProfile | None = None
    label: str = ""

    def describe(self) -> str:
        """Human-readable summary of the applied patterns."""
        if not self.applications:
            return "initial flow (no patterns applied)"
        return " + ".join(app.describe() for app in self.applications)

    @property
    def pattern_names(self) -> tuple[str, ...]:
        """Names of the applied patterns, in order."""
        return tuple(app.pattern for app in self.applications)


@dataclass(frozen=True)
class _Deployment:
    """One candidate (pattern, point) pair selected by the policy."""

    pattern: FlowComponentPattern
    point: ApplicationPoint


@dataclass
class _PrefixEntry:
    """Cached state after one deployment position of the last chain.

    The prefix cache is a stack aligned with the positions of the most
    recently processed combination: entry ``i`` holds the state reached
    after processing deployments ``combo[:i + 1]`` from the base flow.
    ``flow`` is the resulting (unmutated) intermediate flow, ``applied``
    the pattern applications that actually took effect (deployments whose
    point vanished are processed but apply nothing), ``chained`` whether
    every applied step recorded a composable delta, and ``issues`` the
    flow's complete validated issue list (COW chained prefixes only,
    ``None`` otherwise).
    """

    deployment: _Deployment
    flow: ETLGraph
    applied: tuple[PatternApplication, ...]
    chained: bool
    issues: list[ValidationIssue] | None


@dataclass
class GenerationStats:
    """Cost accounting of one :meth:`AlternativeGenerator.generate_iter` run.

    Filled in as the generator is consumed and exposed as
    ``generator.last_stats``; the generation benchmark reads it to report
    the candidates/sec rate and the application/validation time split.
    """

    copy_mode: str = "deep"
    prefix_cache: bool = True
    combinations_tried: int = 0
    yielded: int = 0
    duplicates_pruned: int = 0
    invalid_discarded: int = 0
    #: Successful ``pattern.apply`` calls -- the unit of work the prefix
    #: cache saves; compare across ``prefix_cache`` on/off runs.
    patterns_applied: int = 0
    #: Combinations that reused at least one cached prefix step.
    prefix_hits: int = 0
    #: Deployment positions served from the prefix cache instead of being
    #: re-processed (refreshed, applied and, in COW mode, re-validated).
    prefix_steps_reused: int = 0
    apply_seconds: float = 0.0
    validation_seconds: float = 0.0
    wall_seconds: float = 0.0

    @property
    def candidates_per_second(self) -> float:
        """Yielded alternatives per second of generator wall-clock."""
        return self.yielded / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def as_dict(self) -> dict[str, float]:
        """JSON-friendly snapshot (used by benchmarks)."""
        return {
            "copy_mode": self.copy_mode,
            "prefix_cache": self.prefix_cache,
            "combinations_tried": self.combinations_tried,
            "yielded": self.yielded,
            "duplicates_pruned": self.duplicates_pruned,
            "invalid_discarded": self.invalid_discarded,
            "patterns_applied": self.patterns_applied,
            "prefix_hits": self.prefix_hits,
            "prefix_steps_reused": self.prefix_steps_reused,
            "apply_seconds": self.apply_seconds,
            "validation_seconds": self.validation_seconds,
            "wall_seconds": self.wall_seconds,
            "candidates_per_second": self.candidates_per_second,
        }


class AlternativeGenerator:
    """Generates alternative flows from an initial flow and a palette."""

    def __init__(
        self,
        palette: PatternRegistry,
        policy: DeploymentPolicy | None = None,
        configuration: ProcessingConfiguration | None = None,
    ) -> None:
        self.palette = palette
        self.policy = policy or HeuristicPolicy()
        self.configuration = configuration or ProcessingConfiguration()
        #: Cost accounting of the most recent ``generate_iter`` run.
        self.last_stats = GenerationStats(copy_mode=self.configuration.copy_mode)
        # Validation state of COW base flows, keyed per base object so
        # that interleaved (lazy) generate_iter runs on different flows
        # never read each other's issue list.
        self._base_issue_memo: dict[int, tuple[ETLGraph, list[ValidationIssue]]] = {}

    # ------------------------------------------------------------------
    # Pattern generation (candidate deployments)
    # ------------------------------------------------------------------

    def candidate_deployments(self, flow: ETLGraph) -> list[_Deployment]:
        """All (pattern, point) pairs selected by the policy on ``flow``."""
        config = self.configuration
        patterns: Sequence[FlowComponentPattern] = list(self.palette)
        if config.pattern_names:
            patterns = [self.palette.get(name) for name in config.pattern_names]
        patterns = self.policy.select_patterns(patterns)

        deployments: list[_Deployment] = []
        for pattern in patterns:
            valid_points = pattern.find_application_points(flow)
            selected = self.policy.select_points(
                pattern, valid_points, flow, config.max_points_per_pattern
            )
            deployments.extend(_Deployment(pattern, point) for point in selected)
        return deployments

    def application_point_counts(self, flow: ETLGraph) -> dict[str, int]:
        """Number of *valid* application points per pattern (before the policy).

        Used by the DEMO1 benchmark to report the raw size of the problem
        space the paper calls factorial.
        """
        counts: dict[str, int] = {}
        for pattern in self.palette:
            counts[pattern.name] = len(pattern.find_application_points(flow))
        return counts

    # ------------------------------------------------------------------
    # Pattern application (alternative flows)
    # ------------------------------------------------------------------

    def generate(self, flow: ETLGraph) -> list[AlternativeFlow]:
        """Produce every alternative flow eagerly, as a list.

        Equivalent to ``list(generate_iter(flow))``; kept for callers that
        want the full alternative space at once (reports, ablations).
        """
        return list(self.generate_iter(flow))

    def generate_iter(self, flow: ETLGraph) -> Iterator[AlternativeFlow]:
        """Lazily produce alternative flows by combining candidate deployments.

        Combinations of size 1 up to ``pattern_budget`` are enumerated in
        increasing size; each combination is applied sequentially on a copy
        of the initial flow.  Deployments whose application point
        disappeared because of an earlier deployment in the same
        combination are skipped; combinations that end up applying nothing
        new, produce an invalid flow, or duplicate an already generated
        structure are discarded.

        This is a *true* generator: each alternative is built only when
        the consumer asks for the next one, so a streaming evaluator (or a
        benchmark slicing the space) never pays for candidates it does not
        consume.  Labels (``ETL Flow 1``, ``ETL Flow 2``, ...) follow the
        enumeration order and match the eager :meth:`generate` exactly.

        With ``configuration.copy_mode == "cow"`` every pattern in a
        combination is applied as a chained delta: each step is a
        copy-on-write graph recording its difference from the previous
        one, validity is maintained incrementally with
        :func:`~repro.etl.validation.validate_delta`, and deduplication
        reads the incrementally maintained signatures -- the enumeration,
        the surviving alternatives and their labels are identical to
        ``"deep"`` mode.

        With ``configuration.prefix_cache`` on (the default) the
        intermediate state of the last combination's chain is kept per
        deployment prefix; because the lexicographic enumeration makes
        shared prefixes contiguous, extending ``(a, b)`` to ``(a, b, c)``
        reuses the cached ``(a, b)`` flow (and, in COW mode, its
        validated issue list) instead of re-applying from the base flow.
        This is purely a cost optimization: the alternative stream is
        byte-identical with the cache on or off, in both copy modes.
        """
        config = self.configuration
        cow = config.copy_mode == "cow"
        stats = GenerationStats(copy_mode=config.copy_mode, prefix_cache=config.prefix_cache)
        self.last_stats = stats
        started = time.perf_counter()
        # A private snapshot of the initial flow: the caller's graph is
        # never payload-aliased (mutating it directly afterwards stays
        # safe, as on the seed), while every ``flow.copy()`` inside the
        # patterns forks copy-on-write from the snapshot.
        base = flow.cow_base() if cow else flow
        deployments = self.candidate_deployments(base)
        produced = 0
        seen_signatures = {base.signature()}
        # The prefix cache is scoped to this run: interleaved lazy runs
        # on other flows keep their own stacks (and cached issue lists).
        prefix_stack: list[_PrefixEntry] | None = [] if config.prefix_cache else None

        try:
            for combo_size in range(1, config.pattern_budget + 1):
                for combo in itertools.combinations(deployments, combo_size):
                    if produced >= config.max_alternatives:
                        return
                    if not self._combination_is_reasonable(combo):
                        continue
                    stats.combinations_tried += 1
                    if prefix_stack is None:
                        alternative = self._apply_combination(base, combo)
                    else:
                        alternative = self._apply_combination_prefixed(
                            base, combo, prefix_stack
                        )
                    if alternative is None:
                        continue
                    signature = alternative.flow.signature()
                    if signature in seen_signatures:
                        stats.duplicates_pruned += 1
                        continue
                    seen_signatures.add(signature)
                    produced += 1
                    stats.yielded = produced
                    alternative.label = f"ETL Flow {produced}"
                    yield alternative
        finally:
            stats.wall_seconds = time.perf_counter() - started

    # ------------------------------------------------------------------

    def _combination_is_reasonable(self, combo: Sequence[_Deployment]) -> bool:
        """Cheap pre-checks avoiding obviously redundant combinations."""
        seen_points: set[tuple] = set()
        seen_graph_patterns: set[str] = set()
        for deployment in combo:
            point_key = (deployment.pattern.name,) + deployment.point.key()
            if point_key in seen_points:
                return False
            seen_points.add(point_key)
            if deployment.point.point_type is ApplicationPointType.GRAPH:
                if deployment.pattern.name in seen_graph_patterns:
                    return False
                seen_graph_patterns.add(deployment.pattern.name)
        return True

    def _apply_combination(
        self, flow: ETLGraph, combo: Sequence[_Deployment]
    ) -> AlternativeFlow | None:
        """Apply a combination from scratch (``prefix_cache=False`` path).

        Every deployment is re-applied on a fresh chain starting at the
        base flow -- the uncached cost model the ``prefix_cache`` knob's
        off-switch preserves for baselines and benchmarks.
        """
        stats = self.last_stats
        base_issues = self._base_issues_for(flow)
        current = flow
        # ``pending_delta`` accumulates the chain of pattern deltas (COW
        # mode only): each step's recorded delta is composed onto it, and
        # the final flow is delta-validated once against the base flow's
        # issue list.  ``chained`` degrades to False -- and the final
        # check falls back to the full oracle -- if any pattern returns a
        # flow without a delta chained onto its predecessor.
        chained = base_issues is not None
        pending_delta = None
        applied: list[PatternApplication] = []
        for deployment in combo:
            point = self._refresh_point(current, deployment)
            if point is None:
                continue
            tick = time.perf_counter()
            try:
                derived = deployment.pattern.apply(current, point)
            except (KeyError, ValueError):
                continue
            finally:
                stats.apply_seconds += time.perf_counter() - tick
            stats.patterns_applied += 1
            if chained:
                if derived.delta is not None and derived.derived_from(current):
                    pending_delta = (
                        derived.delta
                        if pending_delta is None
                        else pending_delta.compose(derived.delta)
                    )
                else:
                    chained = False
            current = derived
            applied.append(PatternApplication(deployment.pattern.name, point))
        if not applied:
            return None
        tick = time.perf_counter()
        if chained and pending_delta is not None:
            issues = validate_delta(current, pending_delta, base_issues)
            valid = not has_errors(issues)
        else:
            valid = is_valid(current)
        stats.validation_seconds += time.perf_counter() - tick
        if not valid:
            stats.invalid_discarded += 1
            return None
        current.name = f"{flow.name}__{'+'.join(app.pattern for app in applied)}"
        return AlternativeFlow(flow=current, applications=tuple(applied))

    def _apply_combination_prefixed(
        self,
        flow: ETLGraph,
        combo: Sequence[_Deployment],
        stack: list[_PrefixEntry],
    ) -> AlternativeFlow | None:
        """Apply a combination, resuming from the deepest cached prefix.

        ``stack`` holds the intermediate states of the previously
        processed chain, one entry per deployment position (the final
        position is never cached: consecutive same-size combinations
        differ in their last deployment, so a full-chain state can never
        be a prefix of the next combination).  The longest shared prefix
        with ``combo`` is kept, everything deeper is dropped, and only
        the remaining positions are processed -- refreshed, applied and,
        in COW mode, validated incrementally with their own step delta
        against the cached prefix's issue list.

        Reuse is sound because pattern application never mutates its
        host and is deterministic in the host state (see
        :meth:`~repro.patterns.base.FlowComponentPattern.apply`): the
        cached state after ``(a, b)`` is byte-identical to what
        re-processing ``(a, b)`` from the base flow would rebuild.
        """
        stats = self.last_stats
        base_issues = self._base_issues_for(flow)
        reused = 0
        limit = min(len(stack), len(combo) - 1)
        while reused < limit and stack[reused].deployment is combo[reused]:
            reused += 1
        del stack[reused:]
        if reused:
            entry = stack[-1]
            current = entry.flow
            applied = list(entry.applied)
            chained = entry.chained
            issues = entry.issues
            stats.prefix_hits += 1
            stats.prefix_steps_reused += reused
        else:
            current = flow
            applied = []
            chained = base_issues is not None
            issues = base_issues

        last = len(combo) - 1
        for index in range(reused, len(combo)):
            deployment = combo[index]
            point = self._refresh_point(current, deployment)
            if point is not None:
                tick = time.perf_counter()
                try:
                    derived = deployment.pattern.apply(current, point)
                except (KeyError, ValueError):
                    derived = None
                finally:
                    stats.apply_seconds += time.perf_counter() - tick
                if derived is not None:
                    stats.patterns_applied += 1
                    if chained:
                        if derived.delta is not None and derived.derived_from(current):
                            tick = time.perf_counter()
                            issues = validate_delta(derived, derived.delta, issues)
                            stats.validation_seconds += time.perf_counter() - tick
                        else:
                            # A step without a composable delta: from here
                            # on (and for every deeper cached prefix) the
                            # final check falls back to the full oracle.
                            chained = False
                            issues = None
                    current = derived
                    applied.append(PatternApplication(deployment.pattern.name, point))
            if index < last:
                stack.append(
                    _PrefixEntry(deployment, current, tuple(applied), chained, issues)
                )
        if not applied:
            return None
        if chained:
            valid = not has_errors(issues)
        else:
            tick = time.perf_counter()
            valid = is_valid(current)
            stats.validation_seconds += time.perf_counter() - tick
        if not valid:
            stats.invalid_discarded += 1
            return None
        current.name = f"{flow.name}__{'+'.join(app.pattern for app in applied)}"
        return AlternativeFlow(flow=current, applications=tuple(applied))

    def _base_issues_for(self, base: ETLGraph) -> list[ValidationIssue] | None:
        """The full issue list of a COW base flow, memoized per object.

        Returns ``None`` for deep-mode bases, which signals
        :meth:`_apply_combination` to validate candidates with the full
        oracle (the seed behaviour).  The memo is keyed by object
        identity with the base pinned in the value, so several lazily
        interleaved ``generate_iter`` runs keep their own state; it is
        bounded, since a generator only ever serves a handful of live
        runs at once.
        """
        if base.copy_mode != "cow":
            return None
        memo = self._base_issue_memo
        entry = memo.get(id(base))
        if entry is not None and entry[0] is base:
            return entry[1]
        issues = validate_flow(base)
        if len(memo) >= 8:
            memo.pop(next(iter(memo)))
        memo[id(base)] = (base, issues)
        return issues

    def _refresh_point(
        self, current: ETLGraph, deployment: _Deployment
    ) -> ApplicationPoint | None:
        """Check that the deployment's point still exists and is still valid."""
        point = deployment.point
        if point.point_type is ApplicationPointType.NODE:
            if point.node_id not in current:
                return None
        elif point.point_type is ApplicationPointType.EDGE:
            if not current.has_edge(*point.edge):
                return None
        if not deployment.pattern.is_applicable_at(current, point):
            return None
        return point
