"""Comparison of an alternative flow against the initial flow.

The measures view of the tool (Fig. 5) shows, on a bar graph, the relative
change of the metrics for each quality characteristic, denoting the
estimated effect of selecting each of the available flows compared with
the initial flow as a baseline; clicking a composite bar expands it into
more detailed measures.  :class:`FlowComparison` computes exactly that
data: per-characteristic relative change of the composite scores and the
per-measure drill-down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.quality.composite import QualityProfile
from repro.quality.framework import QualityCharacteristic


@dataclass(frozen=True)
class MeasureChange:
    """Relative change of one detailed measure vs. the baseline."""

    measure: str
    characteristic: QualityCharacteristic
    baseline_value: float
    new_value: float
    relative_improvement: float
    unit: str = ""
    description: str = ""


@dataclass
class FlowComparison:
    """The Fig. 5 data: composite and detailed changes of one flow vs. the baseline."""

    flow_name: str
    baseline_name: str
    characteristic_changes: dict[QualityCharacteristic, float] = field(default_factory=dict)
    measure_changes: dict[str, MeasureChange] = field(default_factory=dict)

    def change(self, characteristic: QualityCharacteristic) -> float:
        """Relative change of one characteristic's composite score."""
        return self.characteristic_changes.get(characteristic, 0.0)

    def expand(self, characteristic: QualityCharacteristic) -> list[MeasureChange]:
        """Drill-down: the detailed measure changes composing one characteristic."""
        return [
            change
            for change in self.measure_changes.values()
            if change.characteristic is characteristic
        ]

    def improved_characteristics(self) -> list[QualityCharacteristic]:
        """Characteristics whose composite score improved vs. the baseline."""
        return [c for c, delta in self.characteristic_changes.items() if delta > 0]

    def degraded_characteristics(self) -> list[QualityCharacteristic]:
        """Characteristics whose composite score degraded vs. the baseline."""
        return [c for c, delta in self.characteristic_changes.items() if delta < 0]

    def to_dict(self) -> dict[str, object]:
        """Serialise to a JSON-friendly structure (used by the viz backends)."""
        return {
            "flow": self.flow_name,
            "baseline": self.baseline_name,
            "characteristics": {
                c.value: delta for c, delta in self.characteristic_changes.items()
            },
            "measures": {
                name: {
                    "characteristic": change.characteristic.value,
                    "baseline_value": change.baseline_value,
                    "new_value": change.new_value,
                    "relative_improvement": change.relative_improvement,
                    "unit": change.unit,
                }
                for name, change in self.measure_changes.items()
            },
        }


def compare_profiles(profile: QualityProfile, baseline: QualityProfile) -> FlowComparison:
    """Compute the Fig. 5 comparison of ``profile`` against ``baseline``."""
    comparison = FlowComparison(flow_name=profile.flow_name, baseline_name=baseline.flow_name)
    comparison.characteristic_changes = profile.characteristic_changes(baseline)
    for name, value in profile.values.items():
        base = baseline.values.get(name)
        if base is None:
            continue
        comparison.measure_changes[name] = MeasureChange(
            measure=name,
            characteristic=value.characteristic,
            baseline_value=base.value,
            new_value=value.value,
            relative_improvement=value.relative_change(base),
            unit=value.unit,
            description=value.description,
        )
    return comparison
