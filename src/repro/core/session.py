"""Iterative redesign sessions.

What is unique about POIESIS is that the redesign process takes place in
an iterative, incremental and intuitive fashion (Section 3): the planner
generates and evaluates alternatives, the user selects one based on the
skyline and the measure comparison, the tool merges the corresponding
patterns into the existing process flow, and a new iteration cycle
commences until the user considers that the flow adequately satisfies the
quality goals.  :class:`RedesignSession` drives that loop programmatically
(the reproduction's stand-in for the interactive UI).

The session reuses one planner -- and therefore one shared profile
cache (any :mod:`repro.cache` tier) -- across all iterations and
re-plans: flows profiled in iteration N (including the adopted
alternative, which becomes iteration N+1's baseline) are never
re-simulated later.  With a disk-backed tier
(``cache_tier="disk"``/``"tiered"``) that sharing extends across
*sessions and processes*: parallel sessions pointed at one ``cache_dir``
serve each other's profiles, and a new run starts warm.
With the network tier (``cache_tier="http"``) the sharing spans
*machines*: every session pointed at one
:class:`repro.service.CacheServer` reads and writes the same store, and
the redesign service runs a whole worker pool of concurrent sessions on
one injected backend.  :meth:`RedesignSession.cache_stats` exposes the
accumulated hit/miss accounting (with a per-tier breakdown -- including
the network tier's client/server/fallback split) for reports and
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.cache.backend import cache_stats_dict
from repro.core.alternatives import AlternativeFlow
from repro.core.comparison import FlowComparison
from repro.core.configuration import ProcessingConfiguration
from repro.core.planner import Planner, PlanningResult
from repro.etl.graph import ETLGraph
from repro.patterns.registry import PatternRegistry
from repro.quality.composite import QualityProfile
from repro.quality.framework import QualityCharacteristic


@dataclass
class SessionIteration:
    """Record of one iteration cycle of a redesign session."""

    index: int
    result: PlanningResult
    selected: AlternativeFlow | None = None

    @property
    def selected_comparison(self) -> FlowComparison | None:
        """The Fig. 5 comparison of the selected alternative, if any."""
        if self.selected is None:
            return None
        return self.result.comparison(self.selected)


class RedesignSession:
    """Drives the iterative, incremental redesign of one ETL process.

    The session is the programmatic stand-in for the paper's interactive
    loop: :meth:`iterate` plans on the current flow, :meth:`select` (or
    :meth:`select_best`) adopts one alternative as the new current flow,
    and :meth:`run` repeats the cycle with a pluggable chooser.

    Contract
    --------
    * One planner -- and therefore one shared
      :class:`~repro.quality.estimator.ProfileCache` -- serves every
      iteration: a flow profiled in iteration N (including the adopted
      alternative, which becomes iteration N+1's baseline) is never
      re-simulated.  :meth:`cache_stats` exposes the accumulated
      accounting.
    * ``initial_flow`` is never mutated by the session; adopting an
      alternative rebinds :attr:`current_flow` to the alternative's flow
      object (it is *not* copied -- callers who keep mutating selected
      flows should copy first).
    * :meth:`select` only accepts alternatives of the **latest**
      iteration; earlier iterations are history, matching the paper's
      incremental process.
    * Sessions are deterministic under a fixed configuration: replaying
      the same choices yields the same flows and profiles, independent
      of ``copy_mode`` / ``prefix_cache`` / ``backend``.

    Parameters
    ----------
    initial_flow:
        The imported ETL process model the session starts from.
    planner:
        The planner used on every iteration; a default one is built from
        ``palette`` / ``configuration`` when omitted.
    palette, configuration:
        Forwarded to the default planner.
    """

    def __init__(
        self,
        initial_flow: ETLGraph,
        planner: Planner | None = None,
        palette: PatternRegistry | None = None,
        configuration: ProcessingConfiguration | None = None,
    ) -> None:
        self.initial_flow = initial_flow
        self.planner = planner or Planner(palette=palette, configuration=configuration)
        self.current_flow = initial_flow
        self.iterations: list[SessionIteration] = []

    # ------------------------------------------------------------------

    @property
    def iteration_count(self) -> int:
        """Number of completed planning iterations."""
        return len(self.iterations)

    @property
    def profile_cache(self):
        """The planner's shared profile cache (``None`` when caching is off)."""
        return self.planner.profile_cache

    def cache_stats(self) -> dict[str, object]:
        """Hit/miss statistics accumulated across all iterations so far.

        The top-level keys are the logical counters (one hit or miss per
        lookup regardless of tier); the ``"tiers"`` key breaks them down
        per cache tier (a single ``"memory"`` or ``"disk"`` entry,
        ``overall``/``memory``/``disk`` for the tiered backend, or
        ``http``/``server``/``fallback`` for the network tier --
        ``server`` is fetched live and omitted when unreachable).
        Returns an empty dict when profile caching is disabled
        (``cache_profiles=False`` in the configuration).
        """
        cache = self.planner.profile_cache
        if cache is None:
            return {}
        return cache_stats_dict(cache)

    @property
    def current_profile(self) -> QualityProfile:
        """Quality profile of the current flow."""
        return self.planner.evaluate_flow(self.current_flow)

    def iterate(
        self,
        on_evaluated: Callable[[AlternativeFlow], None] | None = None,
    ) -> SessionIteration:
        """Run one planning cycle on the current flow.

        ``on_evaluated`` is forwarded to :meth:`Planner.plan` -- called
        once per alternative as its profile completes, which is how the
        redesign service streams live progress for a session running
        inside its worker pool.
        """
        result = self.planner.plan(self.current_flow, on_evaluated=on_evaluated)
        iteration = SessionIteration(index=len(self.iterations) + 1, result=result)
        self.iterations.append(iteration)
        return iteration

    def execute_top_k(self, k: int = 5, repeats: int = 2, data_seed: int = 7):
        """Measured calibration on the current flow (see Planner.execute_top_k).

        Reuses the latest iteration's planning result when it was
        computed for the current flow (no re-plan, no re-simulation);
        otherwise plans first.  Returns the
        :class:`~repro.exec.measured.CalibrationReport` -- the planning
        side is recorded in :attr:`iterations` as usual.
        """
        reusable = None
        if self.iterations and self.iterations[-1].result.initial_flow is self.current_flow:
            reusable = self.iterations[-1].result
        result, report = self.planner.execute_top_k(
            self.current_flow,
            k=k,
            repeats=repeats,
            data_seed=data_seed,
            planning_result=reusable,
        )
        if reusable is None:
            self.iterations.append(
                SessionIteration(index=len(self.iterations) + 1, result=result)
            )
        return report

    def select(self, alternative: AlternativeFlow) -> ETLGraph:
        """Adopt one alternative: merge its patterns into the current flow.

        The alternative's flow already contains the grafted patterns (the
        planner "carefully merges them to the existing process"), so
        selection replaces the session's current flow with it and records
        the decision on the latest iteration.
        """
        if not self.iterations:
            raise ValueError("select() requires at least one completed iteration")
        latest = self.iterations[-1]
        if alternative not in latest.result.alternatives:
            raise ValueError("the alternative does not belong to the latest iteration")
        latest.selected = alternative
        self.current_flow = alternative.flow
        return self.current_flow

    def select_best(
        self, characteristic: QualityCharacteristic
    ) -> AlternativeFlow:
        """Select the skyline alternative maximising one characteristic."""
        if not self.iterations:
            raise ValueError("select_best() requires at least one completed iteration")
        latest = self.iterations[-1]
        pool = latest.result.skyline or latest.result.alternatives
        evaluated = [alt for alt in pool if alt.profile is not None]
        if not evaluated:
            raise ValueError("the latest iteration produced no evaluated alternatives")
        best = max(evaluated, key=lambda alt: alt.profile.score(characteristic))
        self.select(best)
        return best

    def run(
        self,
        iterations: int,
        chooser: Callable[[PlanningResult], AlternativeFlow | None] | None = None,
    ) -> ETLGraph:
        """Run several iteration cycles, selecting with ``chooser`` each time.

        ``chooser`` receives each :class:`PlanningResult` and returns the
        alternative to adopt (or ``None`` to stop early, i.e. the user
        considers the flow already satisfies the quality goals).  The
        default chooser picks the skyline flow with the best score on the
        first configured skyline characteristic.
        """
        if iterations < 1:
            raise ValueError("iterations must be at least 1")
        for _ in range(iterations):
            iteration = self.iterate()
            if chooser is not None:
                choice = chooser(iteration.result)
            else:
                pool = iteration.result.skyline or iteration.result.alternatives
                evaluated = [alt for alt in pool if alt.profile is not None]
                if not evaluated:
                    break
                primary = self.planner.configuration.skyline_characteristics[0]
                choice = max(evaluated, key=lambda alt: alt.profile.score(primary))
            if choice is None:
                break
            self.select(choice)
        return self.current_flow

    def history(self) -> list[dict[str, object]]:
        """Summaries of every completed iteration (for reports and tests)."""
        records = []
        for iteration in self.iterations:
            records.append(
                {
                    "iteration": iteration.index,
                    "alternatives": len(iteration.result.alternatives),
                    "skyline_size": len(iteration.result.skyline_indices),
                    "selected": iteration.selected.describe() if iteration.selected else None,
                }
            )
        return records
