"""Pareto frontier (skyline) of alternative designs.

The scatter-plot points presented to the user are only the Pareto frontier
(skyline) of the complete set of alternative designs, based on their
evaluation according to the examined quality dimensions, where larger
values are preferred to smaller ones (Section 3): a design is dropped when
another design is at least as good on every dimension and strictly better
on at least one.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.quality.composite import QualityProfile
from repro.quality.framework import QualityCharacteristic


def pareto_front(points: Sequence[Sequence[float]]) -> list[int]:
    """Indices of the Pareto-optimal points (larger coordinates preferred).

    A point is kept unless some other point dominates it: the other point
    is greater than or equal on every coordinate and strictly greater on
    at least one.  Duplicated coordinate vectors are all kept (none of them
    dominates the other), matching the paper's pruning rule exactly.
    """
    if not points:
        return []
    matrix = np.asarray(points, dtype=float)
    if matrix.ndim != 2:
        raise ValueError("points must be a sequence of equal-length coordinate vectors")
    count = matrix.shape[0]
    keep: list[int] = []
    for i in range(count):
        candidate = matrix[i]
        dominated = False
        for j in range(count):
            if i == j:
                continue
            other = matrix[j]
            if np.all(other >= candidate) and np.any(other > candidate):
                dominated = True
                break
        if not dominated:
            keep.append(i)
    return keep


def pareto_front_profiles(
    profiles: Sequence[QualityProfile],
    characteristics: Sequence[QualityCharacteristic],
) -> list[int]:
    """Indices of the profiles on the skyline of the given quality dimensions."""
    vectors = [profile.as_vector(characteristics) for profile in profiles]
    return pareto_front(vectors)


def dominance_counts(
    profiles: Sequence[QualityProfile],
    characteristics: Sequence[QualityCharacteristic],
) -> list[int]:
    """For each profile, the number of other profiles that dominate it.

    Zero means the profile is on the skyline; the counts are useful for
    layered ("k-skyband") visualisations and for tests.
    """
    vectors = np.asarray(
        [profile.as_vector(characteristics) for profile in profiles], dtype=float
    )
    counts: list[int] = []
    for i in range(len(profiles)):
        candidate = vectors[i]
        dominated_by = 0
        for j in range(len(profiles)):
            if i == j:
                continue
            other = vectors[j]
            if np.all(other >= candidate) and np.any(other > candidate):
                dominated_by += 1
        counts.append(dominated_by)
    return counts
