"""Concurrent, streaming evaluation of alternative flows.

The processing and analysis of the alternative process designs is a
process-intensive task, mainly due to the large number of alternative
flows that have to be concurrently evaluated; the paper offloads it to
Amazon EC2 elastic infrastructures running in the background.  This
reproduction substitutes a local worker pool (threads or processes from
:mod:`concurrent.futures`) and adds two scaling levers on top:

* **Streaming** -- :meth:`ParallelEvaluator.evaluate_stream` consumes a
  *generator* of alternatives with a bounded number of in-flight
  submissions, so Pattern Application (generation) and Measures
  Estimation overlap instead of running as two sequential barriers.
  Results are yielded in input order as soon as their turn completes.
* **Memoization** -- when the estimator carries a
  :class:`~repro.quality.estimator.ProfileCache`, the evaluator performs
  the cache lookups in the *parent* process before submitting work, and
  inserts freshly computed profiles back afterwards.  This keeps the
  cache effective even with the process backend (workers are handed an
  empty memo by design) and counts every alternative exactly once in the
  hit/miss statistics.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterable, Iterator, Literal, Sequence

from repro.core.alternatives import AlternativeFlow
from repro.quality.composite import QualityProfile
from repro.quality.estimator import QualityEstimator


def _evaluate_one(estimator: QualityEstimator, alternative: AlternativeFlow) -> QualityProfile:
    """Evaluate a single alternative (module-level so process pools can pickle it).

    Cache handling happens in the parent process (see the module
    docstring), so workers always run the raw estimation.
    """
    return estimator.evaluate_uncached(alternative.flow)


class ParallelEvaluator:
    """Evaluates batches or streams of alternative flows, optionally in parallel.

    Parameters
    ----------
    estimator:
        The quality estimator applied to every flow.
    workers:
        Number of parallel workers; ``1`` evaluates sequentially.
    backend:
        ``"thread"`` (default) or ``"process"``.  Threads are sufficient
        here because the simulation is numpy/pure-Python dominated and the
        batches are small; processes avoid the GIL for large campaigns.
    """

    def __init__(
        self,
        estimator: QualityEstimator | None = None,
        workers: int = 1,
        backend: Literal["thread", "process"] = "thread",
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if backend not in ("thread", "process"):
            raise ValueError(f"unknown evaluation backend: {backend!r}")
        self.estimator = estimator or QualityEstimator()
        self.workers = workers
        self.backend = backend

    # ------------------------------------------------------------------

    def evaluate(self, alternatives: Sequence[AlternativeFlow]) -> list[AlternativeFlow]:
        """Fill in the quality profile of every alternative, in place.

        Returns the same alternatives as a list for convenience.  Order is
        preserved regardless of the completion order of the workers.
        """
        return list(self.evaluate_stream(list(alternatives)))

    def evaluate_stream(
        self,
        alternatives: Iterable[AlternativeFlow],
        batch_size: int | None = None,
    ) -> Iterator[AlternativeFlow]:
        """Lazily evaluate a stream of alternatives, yielding in input order.

        The input iterable is consumed on demand: at most ``batch_size``
        submissions are in flight at any moment (defaulting to twice the
        worker count), so a lazy generator upstream keeps producing while
        earlier candidates are still simulating.  Each yielded alternative
        has its ``profile`` filled in.

        Cache lookups and insertions happen here, in the caller's process;
        cached alternatives are yielded without ever reaching the pool.
        """
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        return self._stream(iter(alternatives), batch_size or 2 * self.workers)

    def _stream(
        self, iterator: Iterator[AlternativeFlow], max_inflight: int
    ) -> Iterator[AlternativeFlow]:
        estimator = self.estimator

        if self.workers == 1:
            for alternative in iterator:
                alternative.profile = estimator.evaluate(alternative.flow)
                yield alternative
            return

        # Peek before spinning up a pool: an empty stream must stay free.
        try:
            first = next(iterator)
        except StopIteration:
            return

        pending: deque[tuple[AlternativeFlow, tuple | None, Future | None]] = deque()
        executor_cls = ThreadPoolExecutor if self.backend == "thread" else ProcessPoolExecutor

        with executor_cls(max_workers=self.workers) as executor:

            def submit(alternative: AlternativeFlow) -> None:
                key = estimator.cache_key(alternative.flow) if estimator.cache else None
                cached = estimator.cached_profile(alternative.flow, key)
                if cached is not None:
                    alternative.profile = cached
                    pending.append((alternative, None, None))
                else:
                    future = executor.submit(_evaluate_one, estimator, alternative)
                    pending.append((alternative, key, future))

            def refill() -> None:
                while len(pending) < max_inflight:
                    try:
                        submit(next(iterator))
                    except StopIteration:
                        return

            submit(first)
            refill()
            while pending:
                alternative, key, future = pending.popleft()
                if future is not None:
                    profile = future.result()
                    estimator.store_profile(alternative.flow, profile, key)
                    alternative.profile = profile
                refill()
                yield alternative
