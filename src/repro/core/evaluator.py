"""Concurrent, streaming evaluation of alternative flows.

The processing and analysis of the alternative process designs is a
process-intensive task, mainly due to the large number of alternative
flows that have to be concurrently evaluated; the paper offloads it to
Amazon EC2 elastic infrastructures running in the background.  This
reproduction substitutes a local worker pool (threads or processes from
:mod:`concurrent.futures`) and adds three scaling levers on top:

* **Streaming** -- :meth:`ParallelEvaluator.evaluate_stream` consumes a
  *generator* of alternatives with a bounded number of in-flight
  submissions, so Pattern Application (generation) and Measures
  Estimation overlap instead of running as two sequential barriers.
  Results are yielded in input order as soon as their turn completes.
* **Memoization** -- when the estimator carries a cache backend (any
  :mod:`repro.cache` tier), the evaluator performs the cache lookups in
  the *parent* process before submitting work, and inserts freshly
  computed profiles back afterwards.  This keeps the cache effective
  even with the process backend and counts every alternative exactly
  once in the hit/miss statistics.
* **Per-worker estimators (process backend)** -- instead of pickling the
  estimator into every task, the process pool ships it *once per worker*
  through the executor's ``initializer`` hook; tasks then carry only the
  alternative being evaluated.  See :func:`_init_worker` for the
  worker-side cache handling, and the module docstring of
  :mod:`repro.cache.disk` for the batched write-back the parent applies
  on pool teardown.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterable, Iterator, Literal, Sequence

from repro.cache import CacheBackend, DiskProfileCache, TieredProfileCache
from repro.core.alternatives import AlternativeFlow
from repro.quality.composite import QualityProfile
from repro.quality.estimator import QualityEstimator


def _disk_component(cache: CacheBackend | None) -> DiskProfileCache | None:
    """The persistent tier inside ``cache``, if it has one."""
    if isinstance(cache, DiskProfileCache):
        return cache
    if isinstance(cache, TieredProfileCache):
        return cache.disk
    return None


def _evaluate_one(estimator: QualityEstimator, alternative: AlternativeFlow) -> QualityProfile:
    """Evaluate a single alternative (thread backend / legacy process path).

    Cache handling happens in the parent process (see the module
    docstring), so workers always run the raw estimation.
    """
    return estimator.evaluate_uncached(alternative.flow)


#: Estimator of the current process-pool worker, installed once per
#: worker process by :func:`_init_worker`.
_WORKER_ESTIMATOR: QualityEstimator | None = None


def _init_worker(estimator: QualityEstimator) -> None:
    """Process-pool initializer: receive the estimator once per worker.

    Amortizes estimator pickling (registry, settings, resource model)
    over the whole campaign instead of paying it per task.  The
    worker-side cache is reduced to the *persistent* component of the
    parent's cache, if any:

    * a disk-backed tier unpickles as a fresh handle onto the same
      ``cache_dir``, giving every worker **read-through** to profiles
      persisted by earlier runs or by concurrent sessions sharing the
      directory;
    * a memory-only cache is dropped (it unpickles entry-less, so each
      lookup would be a guaranteed miss) -- parent-side lookups already
      cover the in-process memoization.

    Workers never *write* to the shared cache: the parent inserts every
    freshly computed profile exactly once (batched, flushed on pool
    teardown), which keeps the statistics single-counted and avoids N
    processes racing to publish the same entries.
    """
    global _WORKER_ESTIMATOR
    estimator.cache = _disk_component(estimator.cache)
    _WORKER_ESTIMATOR = estimator


def _evaluate_one_pooled(alternative: AlternativeFlow) -> QualityProfile:
    """Task body of the initializer-based process pool.

    Reads through the worker's persistent cache (see
    :func:`_init_worker`) before falling back to raw estimation; never
    writes back -- the parent owns cache insertion.
    """
    estimator = _WORKER_ESTIMATOR
    assert estimator is not None, "worker initializer did not run"
    cached = estimator.cached_profile(alternative.flow)
    if cached is not None:
        return cached
    return estimator.evaluate_uncached(alternative.flow)


class ParallelEvaluator:
    """Evaluates batches or streams of alternative flows, optionally in parallel.

    Parameters
    ----------
    estimator:
        The quality estimator applied to every flow.
    workers:
        Number of parallel workers; ``1`` evaluates sequentially.
    backend:
        ``"thread"`` (default) or ``"process"``.  Threads are sufficient
        here because the simulation is numpy/pure-Python dominated and the
        batches are small; processes avoid the GIL for large campaigns.
        The process pool ships the estimator once per worker via its
        initializer and batches disk-cache write-back until teardown.
    """

    def __init__(
        self,
        estimator: QualityEstimator | None = None,
        workers: int = 1,
        backend: Literal["thread", "process"] = "thread",
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if backend not in ("thread", "process"):
            raise ValueError(f"unknown evaluation backend: {backend!r}")
        self.estimator = estimator or QualityEstimator()
        self.workers = workers
        self.backend = backend

    # ------------------------------------------------------------------

    def evaluate(self, alternatives: Sequence[AlternativeFlow]) -> list[AlternativeFlow]:
        """Fill in the quality profile of every alternative, in place.

        Returns the same alternatives as a list for convenience.  Order is
        preserved regardless of the completion order of the workers.
        """
        return list(self.evaluate_stream(list(alternatives)))

    def evaluate_stream(
        self,
        alternatives: Iterable[AlternativeFlow],
        batch_size: int | None = None,
    ) -> Iterator[AlternativeFlow]:
        """Lazily evaluate a stream of alternatives, yielding in input order.

        The input iterable is consumed on demand: at most ``batch_size``
        submissions are in flight at any moment (defaulting to twice the
        worker count), so a lazy generator upstream keeps producing while
        earlier candidates are still simulating.  Each yielded alternative
        has its ``profile`` filled in.

        Cache lookups and insertions happen here, in the caller's process;
        cached alternatives are yielded without ever reaching the pool.
        With a disk-backed cache, insertions are buffered and published
        to disk in one batch at the end of the stream (pool teardown),
        so a long campaign does one eviction sweep instead of thousands
        of tiny ones.
        """
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        return self._stream(iter(alternatives), batch_size or 2 * self.workers)

    def _stream(
        self, iterator: Iterator[AlternativeFlow], max_inflight: int
    ) -> Iterator[AlternativeFlow]:
        estimator = self.estimator

        # Batched write-back: this stream is the sole cache writer, so
        # buffer disk insertions for its duration and flush them once on
        # teardown (the finally clauses below) -- one eviction sweep per
        # campaign instead of one directory scan per stored profile.
        disk = _disk_component(estimator.cache)
        batching = disk is not None and not disk.batch_writes
        if batching:
            disk.batch_writes = True

        if self.workers == 1:
            try:
                for alternative in iterator:
                    alternative.profile = estimator.evaluate(alternative.flow)
                    yield alternative
            finally:
                if batching:
                    disk.batch_writes = False
                if estimator.cache is not None:
                    estimator.cache.flush()
            return

        pending: deque[tuple[AlternativeFlow, tuple | None, Future | None]] = deque()
        pooled = self.backend == "process"

        try:
            # Peek before spinning up a pool: an empty stream must stay free.
            try:
                first = next(iterator)
            except StopIteration:
                return
            if pooled:
                executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_init_worker,
                    initargs=(estimator,),
                )
            else:
                executor = ThreadPoolExecutor(max_workers=self.workers)

            with executor:

                def submit(alternative: AlternativeFlow) -> None:
                    # `is not None`, not truthiness: bool(cache) would call
                    # __len__, which scans the directory on disk tiers.
                    key = (
                        estimator.cache_key(alternative.flow)
                        if estimator.cache is not None
                        else None
                    )
                    cached = estimator.cached_profile(alternative.flow, key)
                    if cached is not None:
                        alternative.profile = cached
                        pending.append((alternative, None, None))
                    elif pooled:
                        future = executor.submit(_evaluate_one_pooled, alternative)
                        pending.append((alternative, key, future))
                    else:
                        future = executor.submit(_evaluate_one, estimator, alternative)
                        pending.append((alternative, key, future))

                def refill() -> None:
                    while len(pending) < max_inflight:
                        try:
                            submit(next(iterator))
                        except StopIteration:
                            return

                submit(first)
                refill()
                while pending:
                    alternative, key, future = pending.popleft()
                    if future is not None:
                        profile = future.result()
                        estimator.store_profile(alternative.flow, profile, key)
                        alternative.profile = profile
                    refill()
                    yield alternative
        finally:
            if batching:
                disk.batch_writes = False
            if estimator.cache is not None:
                estimator.cache.flush()
