"""Concurrent, streaming evaluation of alternative flows.

The processing and analysis of the alternative process designs is a
process-intensive task, mainly due to the large number of alternative
flows that have to be concurrently evaluated; the paper offloads it to
Amazon EC2 elastic infrastructures running in the background.  This
reproduction substitutes a local worker pool (threads or processes from
:mod:`concurrent.futures`) and adds three scaling levers on top:

* **Streaming** -- :meth:`ParallelEvaluator.evaluate_stream` consumes a
  *generator* of alternatives with a bounded number of in-flight
  submissions, so Pattern Application (generation) and Measures
  Estimation overlap instead of running as two sequential barriers.
  Results are yielded in input order as soon as their turn completes.
* **Memoization** -- when the estimator carries a cache backend (any
  :mod:`repro.cache` tier), the evaluator performs the cache lookups in
  the *parent* process before submitting work, and inserts freshly
  computed profiles back afterwards.  This keeps the cache effective
  even with the process backend and counts every alternative exactly
  once in the hit/miss statistics.
* **Per-worker estimators (process backend)** -- instead of pickling the
  estimator into every task, the process pool ships it *once per worker*
  through the executor's ``initializer`` hook; tasks then carry only the
  alternatives being evaluated, grouped into small contiguous *chunks*
  so each worker resolves its read-through cache lookups in a single
  :meth:`~repro.cache.CacheBackend.get_many` pass (one locked directory
  pass for a disk tier, one round-trip for the network tier) instead of
  one open/``stat`` per profile.  See :func:`_init_worker` for the
  worker-side cache handling, and the module docstring of
  :mod:`repro.cache.disk` for the batched write-back the parent applies
  on pool teardown.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterable, Iterator, Literal, Sequence

from repro.cache import CacheBackend, DiskProfileCache, TieredProfileCache
from repro.cache.http import HTTPProfileCache
from repro.core.alternatives import AlternativeFlow
from repro.obs.metrics import MetricsRegistry, maybe_timer
from repro.quality.composite import QualityProfile
from repro.quality.estimator import QualityEstimator


def _persistent_component(cache: CacheBackend | None):
    """The shared *persistent* tier inside ``cache``, if it has one.

    A disk store (optionally inside the tiered composite) or the network
    cache client -- the tiers whose entries outlive this process, and
    therefore the only tiers worth shipping to pool workers or batching
    writes for.  ``None`` for memory-only caches.
    """
    if isinstance(cache, (DiskProfileCache, HTTPProfileCache)):
        return cache
    if isinstance(cache, TieredProfileCache):
        return cache.disk
    return None


def _relabel(profile: QualityProfile, flow_name: str) -> QualityProfile:
    """A shallow copy re-labelled for one flow (as ``cached_profile`` does)."""
    return QualityProfile(
        flow_name=flow_name, scores=dict(profile.scores), values=dict(profile.values)
    )


def _evaluate_one(estimator: QualityEstimator, alternative: AlternativeFlow) -> QualityProfile:
    """Evaluate a single alternative (thread backend / legacy process path).

    Cache handling happens in the parent process (see the module
    docstring), so workers always run the raw estimation.
    """
    return estimator.evaluate_uncached(alternative.flow)


def _evaluate_chunk(
    estimator: QualityEstimator,
    alternatives: Sequence[AlternativeFlow],
    registry: MetricsRegistry | None = None,
) -> list[QualityProfile]:
    """Evaluate a chunk of alternatives in one task (thread backend).

    Worker threads share the caller's registry (it is thread-safe), so
    per-profile estimation latency is observed right here.
    """
    profiles: list[QualityProfile] = []
    for alternative in alternatives:
        with maybe_timer(registry, "evaluator.estimate_seconds"):
            profiles.append(estimator.evaluate_uncached(alternative.flow))
    return profiles


#: Estimator of the current process-pool worker, installed once per
#: worker process by :func:`_init_worker`.
_WORKER_ESTIMATOR: QualityEstimator | None = None

#: Worker-local metrics registry (process backend).  Workers accumulate
#: into this private registry and each task returns the drained delta,
#: which the parent folds into its own registry -- registries cross the
#: process boundary as *handles* (see :mod:`repro.obs.metrics`), so
#: counts are never duplicated.
_WORKER_REGISTRY: MetricsRegistry | None = None


def _init_worker(estimator: QualityEstimator, metrics_enabled: bool = False) -> None:
    """Process-pool initializer: receive the estimator once per worker.

    Amortizes estimator pickling (registry, settings, resource model)
    over the whole campaign instead of paying it per task.  The
    worker-side cache is reduced to the *persistent* component of the
    parent's cache, if any:

    * a disk-backed tier unpickles as a fresh handle onto the same
      ``cache_dir``, giving every worker **read-through** to profiles
      persisted by earlier runs or by concurrent sessions sharing the
      directory;
    * a memory-only cache is dropped (it unpickles entry-less, so each
      lookup would be a guaranteed miss) -- parent-side lookups already
      cover the in-process memoization.

    Workers never *write* to the shared cache: the parent inserts every
    freshly computed profile exactly once (batched, flushed on pool
    teardown), which keeps the statistics single-counted and avoids N
    processes racing to publish the same entries.
    """
    global _WORKER_ESTIMATOR, _WORKER_REGISTRY
    estimator.cache = _persistent_component(estimator.cache)
    _WORKER_ESTIMATOR = estimator
    _WORKER_REGISTRY = MetricsRegistry() if metrics_enabled else None


def _evaluate_chunk_pooled(alternatives: Sequence[AlternativeFlow]) -> list[QualityProfile]:
    """Task body of the initializer-based process pool.

    Resolves the whole chunk against the worker's persistent cache in
    **one** :meth:`~repro.cache.CacheBackend.get_many` pass (one locked
    directory pass for a disk tier, one round-trip for the network
    tier) instead of one open/``stat`` per profile, then estimates the
    misses.  Never writes back -- the parent owns cache insertion.
    """
    estimator = _WORKER_ESTIMATOR
    assert estimator is not None, "worker initializer did not run"
    cache = estimator.cache
    if cache is not None:
        keys = [estimator.cache_key(alternative.flow) for alternative in alternatives]
        hits = cache.get_many(keys)
    else:
        keys = [None] * len(alternatives)
        hits = [None] * len(alternatives)
    profiles: list[QualityProfile] = []
    fresh: dict[tuple, QualityProfile] = {}  # chunk-local duplicate memo
    for alternative, key, hit in zip(alternatives, keys, hits):
        if hit is None and key is not None:
            hit = fresh.get(key)
        if hit is not None:
            profiles.append(_relabel(hit, alternative.flow.name))
        else:
            with maybe_timer(_WORKER_REGISTRY, "evaluator.estimate_seconds"):
                profile = estimator.evaluate_uncached(alternative.flow)
            if key is not None:
                fresh[key] = profile
            profiles.append(profile)
    return profiles


def _evaluate_chunk_pooled_metered(
    alternatives: Sequence[AlternativeFlow],
) -> tuple[list[QualityProfile], dict]:
    """Metered task body: profiles plus the worker's drained metric delta.

    Used instead of :func:`_evaluate_chunk_pooled` when the parent has
    metrics enabled; the parent merges each returned delta into its own
    registry, which is how worker-local accumulation flushes back across
    the process boundary.
    """
    profiles = _evaluate_chunk_pooled(alternatives)
    delta = _WORKER_REGISTRY.drain() if _WORKER_REGISTRY is not None else {}
    return profiles, delta


def _evaluate_one_pooled(alternative: AlternativeFlow) -> QualityProfile:
    """Single-alternative variant of :func:`_evaluate_chunk_pooled`."""
    return _evaluate_chunk_pooled([alternative])[0]


class ParallelEvaluator:
    """Evaluates batches or streams of alternative flows, optionally in parallel.

    Parameters
    ----------
    estimator:
        The quality estimator applied to every flow.
    workers:
        Number of parallel workers; ``1`` evaluates sequentially.
    backend:
        ``"thread"`` (default) or ``"process"``.  Threads are sufficient
        here because the simulation is numpy/pure-Python dominated and the
        batches are small; processes avoid the GIL for large campaigns.
        The process pool ships the estimator once per worker via its
        initializer and batches disk-cache write-back until teardown.
    registry:
        Optional :class:`repro.obs.MetricsRegistry` recording window
        fill/drain timings and per-profile estimation latency; ``None``
        (the default) disables the instrumentation.
    """

    def __init__(
        self,
        estimator: QualityEstimator | None = None,
        workers: int = 1,
        backend: Literal["thread", "process"] = "thread",
        registry: MetricsRegistry | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if backend not in ("thread", "process"):
            raise ValueError(f"unknown evaluation backend: {backend!r}")
        self.estimator = estimator or QualityEstimator()
        self.workers = workers
        self.backend = backend
        self.registry = registry

    # ------------------------------------------------------------------

    def evaluate(self, alternatives: Sequence[AlternativeFlow]) -> list[AlternativeFlow]:
        """Fill in the quality profile of every alternative, in place.

        Returns the same alternatives as a list for convenience.  Order is
        preserved regardless of the completion order of the workers.
        """
        return list(self.evaluate_stream(list(alternatives)))

    def evaluate_stream(
        self,
        alternatives: Iterable[AlternativeFlow],
        batch_size: int | None = None,
    ) -> Iterator[AlternativeFlow]:
        """Lazily evaluate a stream of alternatives, yielding in input order.

        The input iterable is consumed on demand: at most ``batch_size``
        submissions are in flight at any moment (defaulting to twice the
        worker count), so a lazy generator upstream keeps producing while
        earlier candidates are still simulating.  Each yielded alternative
        has its ``profile`` filled in.

        Cache lookups and insertions happen here, in the caller's process;
        cached alternatives are yielded without ever reaching the pool.
        With a disk-backed cache, insertions are buffered and published
        to disk in one batch at the end of the stream (pool teardown),
        so a long campaign does one eviction sweep instead of thousands
        of tiny ones.
        """
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        return self._stream(iter(alternatives), batch_size or 2 * self.workers)

    def _stream(
        self, iterator: Iterator[AlternativeFlow], max_inflight: int
    ) -> Iterator[AlternativeFlow]:
        estimator = self.estimator

        # Batched write-back: buffer persistent-tier insertions for the
        # stream's duration and flush them once on teardown (the finally
        # clauses below) -- one eviction sweep / network round-trip per
        # campaign instead of one per stored profile.  The scope is
        # refcounted on the cache (begin/end_write_batch) so concurrent
        # streams sharing one backend -- the redesign service's worker
        # pool -- compose instead of racing on a boolean.  (The HTTP
        # tier always batches and has no scopes.)
        persistent = _persistent_component(estimator.cache)
        batching = persistent is not None and hasattr(persistent, "begin_write_batch")
        if batching:
            persistent.begin_write_batch()

        def lookup_window(
            window: Sequence[AlternativeFlow],
        ) -> tuple[list[tuple | None], list[QualityProfile | None]]:
            """One batched cache pass for a window of candidates.

            `is not None`, not truthiness: bool(cache) would call
            __len__, which scans the directory (or asks the server) on
            persistent tiers.
            """
            if estimator.cache is None:
                return [None] * len(window), [None] * len(window)
            keys = [estimator.cache_key(alternative.flow) for alternative in window]
            return keys, estimator.cache.get_many(keys)

        registry = self.registry

        if self.workers == 1:
            try:
                # Windows of max_inflight keep the sequential path's
                # cache traffic batched too (one get_many per window --
                # a single round-trip on the network tier) while staying
                # within the documented in-flight bound.
                while True:
                    with maybe_timer(registry, "evaluator.window_fill_seconds"):
                        window = list(itertools.islice(iterator, max_inflight))
                        keys, hits = lookup_window(window) if window else ([], [])
                    if not window:
                        break
                    # Window-local memo: candidates sharing a fingerprint
                    # within one window (both looked up before either was
                    # computed) are still simulated only once.
                    fresh: dict[tuple, QualityProfile] = {}
                    drain_seconds = 0.0
                    for alternative, key, hit in zip(window, keys, hits):
                        if hit is None and key is not None:
                            hit = fresh.get(key)
                        if hit is not None:
                            alternative.profile = _relabel(hit, alternative.flow.name)
                        else:
                            # Timed per profile, accumulated per window;
                            # the yield below suspends the generator, so
                            # a wall-clock bracket around the loop would
                            # bill the *consumer's* time to the drain.
                            with maybe_timer(registry, "evaluator.estimate_seconds") as span:
                                profile = estimator.evaluate_uncached(alternative.flow)
                            drain_seconds += span.elapsed
                            estimator.store_profile(alternative.flow, profile, key)
                            if key is not None:
                                fresh[key] = profile
                            alternative.profile = profile
                        yield alternative
                    if registry is not None:
                        registry.histogram("evaluator.window_drain_seconds").observe(
                            drain_seconds
                        )
            finally:
                if batching:
                    persistent.end_write_batch()
                if estimator.cache is not None:
                    estimator.cache.flush()
            return

        # Groups preserve input order: each pending entry is a contiguous
        # run of alternatives sharing one future (or a single parent-side
        # cache hit with no future).  The process backend groups several
        # misses per task so each worker resolves its read-through cache
        # lookups in one get_many pass; with the default window
        # (2 * workers) the chunk size is 1, i.e. the classic
        # one-task-per-alternative behaviour.
        pending: deque[
            tuple[list[AlternativeFlow], list[tuple | None], Future | None]
        ] = deque()
        pooled = self.backend == "process"
        chunk_size = max(1, max_inflight // (2 * self.workers)) if pooled else 1
        chunk: list[AlternativeFlow] = []
        chunk_keys: list[tuple | None] = []

        def inflight() -> int:
            return sum(len(group) for group, _, _ in pending) + len(chunk)

        try:
            # Peek before spinning up a pool: an empty stream must stay free.
            try:
                first = next(iterator)
            except StopIteration:
                return
            iterator = itertools.chain([first], iterator)
            if pooled:
                executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_init_worker,
                    initargs=(estimator, registry is not None),
                )
            else:
                executor = ThreadPoolExecutor(max_workers=self.workers)

            with executor:

                def flush_chunk() -> None:
                    if not chunk:
                        return
                    group, keys = list(chunk), list(chunk_keys)
                    chunk.clear()
                    chunk_keys.clear()
                    if pooled and registry is not None:
                        future = executor.submit(_evaluate_chunk_pooled_metered, group)
                    elif pooled:
                        future = executor.submit(_evaluate_chunk_pooled, group)
                    else:
                        future = executor.submit(_evaluate_chunk, estimator, group, registry)
                    pending.append((group, keys, future))

                def refill() -> None:
                    # Top the window up in batches so the parent-side
                    # cache pass is one get_many per refill, not one
                    # lookup per candidate.  The fill span covers pulling
                    # candidates out of the generator plus the batched
                    # cache pass -- everything needed to keep the window
                    # full.
                    fill = maybe_timer(registry, "evaluator.window_fill_seconds")
                    fill.__enter__()
                    while True:
                        want = max_inflight - inflight()
                        if want <= 0:
                            break
                        window = list(itertools.islice(iterator, want))
                        if not window:
                            break
                        keys, hits = lookup_window(window)
                        for alternative, key, hit in zip(window, keys, hits):
                            if hit is not None:
                                # A hit breaks the contiguous run of
                                # misses; flush so yielding stays in
                                # input order.
                                flush_chunk()
                                alternative.profile = _relabel(hit, alternative.flow.name)
                                pending.append(([alternative], [None], None))
                            else:
                                chunk.append(alternative)
                                chunk_keys.append(key)
                                if len(chunk) >= chunk_size:
                                    flush_chunk()
                    # Whatever is buffered must make progress now; the
                    # steady-state refill is one whole chunk anyway.
                    flush_chunk()
                    fill.__exit__(None, None, None)

                refill()
                while pending:
                    group, keys, future = pending.popleft()
                    if future is not None:
                        with maybe_timer(registry, "evaluator.window_drain_seconds"):
                            result = future.result()
                        if pooled and registry is not None:
                            profiles, delta = result
                            registry.merge(delta)
                        else:
                            profiles = result
                        for alternative, key, profile in zip(group, keys, profiles):
                            estimator.store_profile(alternative.flow, profile, key)
                            alternative.profile = profile
                    refill()
                    yield from group
        finally:
            if batching:
                persistent.end_write_batch()
            if estimator.cache is not None:
                estimator.cache.flush()
