"""Concurrent evaluation of alternative flows.

The processing and analysis of the alternative process designs is a
process-intensive task, mainly due to the large number of alternative
flows that have to be concurrently evaluated; the paper offloads it to
Amazon EC2 elastic infrastructures running in the background.  This
reproduction substitutes a local worker pool (threads or processes from
:mod:`concurrent.futures`), which exercises the same code path: the
measure estimation of many alternatives dispatched to parallel workers
while the caller stays responsive.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Literal, Sequence

from repro.core.alternatives import AlternativeFlow
from repro.quality.composite import QualityProfile
from repro.quality.estimator import QualityEstimator


def _evaluate_one(estimator: QualityEstimator, alternative: AlternativeFlow) -> QualityProfile:
    """Evaluate a single alternative (module-level so process pools can pickle it)."""
    return estimator.evaluate(alternative.flow)


class ParallelEvaluator:
    """Evaluates batches of alternative flows, optionally in parallel.

    Parameters
    ----------
    estimator:
        The quality estimator applied to every flow.
    workers:
        Number of parallel workers; ``1`` evaluates sequentially.
    backend:
        ``"thread"`` (default) or ``"process"``.  Threads are sufficient
        here because the simulation is numpy/pure-Python dominated and the
        batches are small; processes avoid the GIL for large campaigns.
    """

    def __init__(
        self,
        estimator: QualityEstimator | None = None,
        workers: int = 1,
        backend: Literal["thread", "process"] = "thread",
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if backend not in ("thread", "process"):
            raise ValueError(f"unknown evaluation backend: {backend!r}")
        self.estimator = estimator or QualityEstimator()
        self.workers = workers
        self.backend = backend

    def evaluate(self, alternatives: Sequence[AlternativeFlow]) -> list[AlternativeFlow]:
        """Fill in the quality profile of every alternative, in place.

        Returns the same list for convenience.  Order is preserved
        regardless of the completion order of the workers.
        """
        if not alternatives:
            return list(alternatives)
        if self.workers == 1:
            for alternative in alternatives:
                alternative.profile = _evaluate_one(self.estimator, alternative)
            return list(alternatives)

        executor_cls = ThreadPoolExecutor if self.backend == "thread" else ProcessPoolExecutor
        with executor_cls(max_workers=self.workers) as executor:
            profiles = list(
                executor.map(
                    _evaluate_one,
                    [self.estimator] * len(alternatives),
                    alternatives,
                )
            )
        for alternative, profile in zip(alternatives, profiles):
            alternative.profile = profile
        return list(alternatives)
