"""Deployment policies for Flow Component Patterns.

As opposed to manual deployment, the tool guarantees that all of the
potential application points on the ETL flow are checked for each FCP, and
it can be customised to select the deployment of patterns based on custom
policies built on different heuristics (Section 3).  A *deployment policy*
decides, for each pattern, which of its valid application points are
actually used to generate alternatives.
"""

from __future__ import annotations

import abc
import random
from typing import Mapping, Sequence

from repro.etl.graph import ETLGraph
from repro.patterns.base import ApplicationPoint, FlowComponentPattern
from repro.quality.framework import QualityCharacteristic


class DeploymentPolicy(abc.ABC):
    """Selects the application points used for a pattern on a flow."""

    #: Registry name of the policy (used by configuration files).
    name: str = ""

    @abc.abstractmethod
    def select_points(
        self,
        pattern: FlowComponentPattern,
        points: Sequence[ApplicationPoint],
        flow: ETLGraph,
        limit: int,
    ) -> list[ApplicationPoint]:
        """Choose up to ``limit`` points among the valid ``points``."""

    def select_patterns(
        self, patterns: Sequence[FlowComponentPattern]
    ) -> list[FlowComponentPattern]:
        """Optionally restrict or reorder the palette (default: keep all)."""
        return list(patterns)


class ExhaustivePolicy(DeploymentPolicy):
    """Keep every valid application point (bounded only by ``limit``).

    Points are ordered by decreasing fitness so that, when the limit does
    cut the list, the better placements survive.
    """

    name = "exhaustive"

    def select_points(
        self,
        pattern: FlowComponentPattern,
        points: Sequence[ApplicationPoint],
        flow: ETLGraph,
        limit: int,
    ) -> list[ApplicationPoint]:
        ordered = sorted(points, key=lambda p: p.fitness, reverse=True)
        if limit <= 0:
            return ordered
        return ordered[:limit]


class HeuristicPolicy(DeploymentPolicy):
    """Keep only points whose heuristic fitness passes a threshold.

    This is the default policy: data-cleaning patterns end up close to the
    sources, checkpoints after the expensive operations, parallelisation on
    the most costly tasks -- the placements the paper's heuristics
    encourage -- while low-value placements are pruned before any
    simulation is spent on them.
    """

    name = "heuristic"

    def __init__(self, fitness_threshold: float = 0.5):
        if not 0.0 <= fitness_threshold <= 1.0:
            raise ValueError("fitness_threshold must lie in [0, 1]")
        self.fitness_threshold = fitness_threshold

    def select_points(
        self,
        pattern: FlowComponentPattern,
        points: Sequence[ApplicationPoint],
        flow: ETLGraph,
        limit: int,
    ) -> list[ApplicationPoint]:
        ordered = sorted(points, key=lambda p: p.fitness, reverse=True)
        selected = [p for p in ordered if p.fitness >= self.fitness_threshold]
        if not selected and ordered:
            # Never drop a pattern entirely: keep its single best placement.
            selected = ordered[:1]
        if limit > 0:
            selected = selected[:limit]
        return selected


class RandomPolicy(DeploymentPolicy):
    """Sample application points uniformly at random (ablation baseline)."""

    name = "random"

    def __init__(self, seed: int = 13):
        self.seed = seed

    def select_points(
        self,
        pattern: FlowComponentPattern,
        points: Sequence[ApplicationPoint],
        flow: ETLGraph,
        limit: int,
    ) -> list[ApplicationPoint]:
        if not points:
            return []
        rng = random.Random(f"{self.seed}:{pattern.name}:{flow.name}")
        pool = list(points)
        if limit <= 0 or limit >= len(pool):
            rng.shuffle(pool)
            return pool
        return rng.sample(pool, limit)


class GoalDrivenPolicy(DeploymentPolicy):
    """Prioritise patterns that improve the user's preferred characteristics.

    The policy scales the number of points granted to each pattern by the
    priority of the characteristics it improves (patterns addressing the
    top goal receive the full ``limit``, others proportionally fewer), and
    orders the palette so that goal-relevant patterns are explored first.
    """

    name = "goal_driven"

    def __init__(
        self,
        priorities: Mapping[QualityCharacteristic, float],
        fitness_threshold: float = 0.3,
    ):
        if not priorities:
            raise ValueError("goal-driven policy needs at least one priority")
        self.priorities = dict(priorities)
        self.fitness_threshold = fitness_threshold

    def _pattern_priority(self, pattern: FlowComponentPattern) -> float:
        return max((self.priorities.get(c, 0.0) for c in pattern.improves), default=0.0)

    def select_patterns(
        self, patterns: Sequence[FlowComponentPattern]
    ) -> list[FlowComponentPattern]:
        return sorted(patterns, key=self._pattern_priority, reverse=True)

    def select_points(
        self,
        pattern: FlowComponentPattern,
        points: Sequence[ApplicationPoint],
        flow: ETLGraph,
        limit: int,
    ) -> list[ApplicationPoint]:
        priority = self._pattern_priority(pattern)
        max_priority = max(self.priorities.values())
        if max_priority <= 0:
            share = 0.0
        else:
            share = priority / max_priority
        allowance = max(0, round(limit * share)) if limit > 0 else len(points)
        if allowance == 0:
            return []
        ordered = sorted(points, key=lambda p: p.fitness, reverse=True)
        selected = [p for p in ordered if p.fitness >= self.fitness_threshold]
        if not selected and ordered:
            selected = ordered[:1]
        return selected[:allowance]


def policy_by_name(
    name: str,
    *,
    priorities: Mapping[QualityCharacteristic, float] | None = None,
    seed: int = 13,
    fitness_threshold: float = 0.5,
) -> DeploymentPolicy:
    """Instantiate a deployment policy from its registry name."""
    normalized = name.strip().lower()
    if normalized == ExhaustivePolicy.name:
        return ExhaustivePolicy()
    if normalized == HeuristicPolicy.name:
        return HeuristicPolicy(fitness_threshold=fitness_threshold)
    if normalized == RandomPolicy.name:
        return RandomPolicy(seed=seed)
    if normalized == GoalDrivenPolicy.name:
        if not priorities:
            raise ValueError("the goal_driven policy requires goal priorities")
        return GoalDrivenPolicy(priorities)
    raise ValueError(f"unknown deployment policy: {name!r}")
