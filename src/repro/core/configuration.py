"""User-defined processing configurations of the planner.

POIESIS takes as input an initial ETL flow *and user-defined
configurations*: which Flow Component Patterns can be considered in the
palette, which deployment policy to follow, the prioritisation of quality
goals, and constraints based on estimated measures (Sections 3 and 4, demo
part P2).  :class:`ProcessingConfiguration` bundles those choices.

Performance tuning
------------------

The alternative space is factorial in the flow size, so the planner
exposes a set of scaling knobs.  All of them default to the conservative
seed behaviour; turning them on changes wall-clock, never results (except
``screening_beam``, which deliberately prunes):

``copy_mode``
    ``"deep"`` (default) clones every operation on each pattern
    application -- the reference implementation.  ``"cow"`` applies
    patterns on copy-on-write graphs: operation payloads are shared until
    written, every application is recorded as a structured delta,
    validation re-checks only the delta neighbourhood, and deduplication
    reuses incrementally maintained signatures.  The generated
    alternative set is identical (same signatures, same order, same
    labels); generation is several times faster and the speedup grows
    with ``pattern_budget``.  Use ``"cow"`` whenever ``pattern_budget >=
    3`` or the flow has tens of operations.
``prefix_cache``
    Pattern combinations are enumerated in lexicographic order, so
    consecutive combinations share long prefixes: at ``pattern_budget=3``
    the chain ``(a, b, c)`` shares ``(a, b)`` with its predecessor.  When
    on (the default) the generator keeps the last chain's intermediate
    flows -- and, under ``copy_mode="cow"``, their incrementally
    validated issue lists -- and extends the cached prefix instead of
    re-applying it from the base flow, cutting pattern applications per
    run by ~2.5x at budget 3.  The enumeration order, the surviving
    alternatives and their labels are identical with the cache on or
    off, in both copy modes; turn it off only to reproduce the
    uncached cost model (benchmark baselines).
``backend``
    Evaluation worker pool flavour: ``"thread"`` (default) shares memory
    and suits the numpy-light simulator at small scale; ``"process"``
    sidesteps the GIL so CPU-bound generation (the COW fast path still
    runs on the main thread) and simulation genuinely overlap.  Flows
    cross the process boundary by pickle; copy-on-write graphs
    materialize their shared payloads when pickled, so workers always
    receive self-contained flows.
``parallel_workers`` / ``eval_batch_size``
    Size of the evaluation pool and the bounded in-flight window of the
    streaming evaluator (PR 1): generation and estimation overlap within
    the window, keeping memory flat while workers stay busy.
``screening_beam``
    Two-phase planning (PR 1): score every candidate statically, simulate
    only the top ``screening_beam`` survivors.
``cache_profiles``
    Memoize quality profiles by flow fingerprint across re-plans and
    session iterations (PR 1).
``cache_tier`` / ``cache_dir`` / ``cache_max_bytes``
    Which cache backend holds those memoized profiles: the in-process
    LRU (``"memory"``, the default), a persistent directory shared
    across runs and parallel sessions (``"disk"``), memory over disk
    with promotion (``"tiered"``), or a shared network cache service
    (``"http"``).  Disk-backed tiers amortize simulation work across
    *processes*: a warm ``cache_dir`` makes a re-run mostly I/O-bound.
    See ``docs/caching.md``.
``cache_url`` / ``cache_timeout``
    Address and per-request budget of the network tier
    (``cache_tier="http"``): a :class:`repro.service.CacheServer` lets a
    fleet of machines share one profile store without a common
    filesystem.  The client degrades gracefully -- an unreachable
    server is logged once and the plan falls back to a local in-memory
    tier, never failing.  See ``docs/service.md``.
``cache_compression`` / ``cache_auth_token`` / ``cache_recovery_interval`` / ``cache_max_pending``
    Wire-path behaviour of the ``"http"`` tier: transparent gzip of
    large bodies, the shared bearer token of an authenticated server, a
    degraded client's recovery-probe cadence (exponential backoff; the
    client re-attaches and republishes its fallback writes when the
    server returns), and the auto-publish bound on the client-side
    write buffer.
``cache_urls`` / ``fleet_ring_replicas``
    The scale-out cache tier (``cache_tier="sharded"``): the shard
    server URLs of a consistent-hash ring partitioning the profile
    store, and the ring's virtual points per shard.  Each shard is a
    full ``"http"`` client, so every wire knob above applies per shard.
    See ``docs/fleet.md``.
``executor_backend``
    Which dataframe backend runs planned flows when execution is
    requested (``Planner.execute_top_k`` / measured calibration): the
    pure-Python ``"local"`` reference backend, or the optional native
    ``"pandas"`` / ``"polars"`` backends.  Execution only -- planning
    output is byte-identical across backends.  See ``docs/execution.md``.
``metrics_enabled`` / ``metrics_registry``
    Observability of one planning campaign: when on, the planner, the
    parallel evaluator and every cache tier record phase spans, latency
    histograms and hit/miss counters into a
    :class:`repro.obs.MetricsRegistry` (the process-wide default, or an
    explicit one via ``metrics_registry``).  Results are byte-identical
    with metrics on or off; the measured overhead budget is <= 3% of a
    warm campaign (``benchmarks/bench_obs.py``).  See
    ``docs/observability.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.cache import CACHE_TIERS

#: Default virtual points per shard on the ``"sharded"`` tier's hash
#: ring.  Kept in sync with :data:`repro.fleet.ring.DEFAULT_REPLICAS`
#: (not imported: ``repro.fleet`` imports the planner, which imports
#: this module -- a cycle at import time).
DEFAULT_RING_REPLICAS = 96

#: Names accepted by ``executor_backend``.  Kept in sync with
#: :data:`repro.exec.backends.EXECUTOR_BACKENDS` (not imported:
#: ``repro.exec`` is only needed when flows actually execute, and this
#: module must stay import-light).
EXECUTOR_BACKENDS = ("local", "pandas", "polars")
from repro.quality.composite import QualityProfile
from repro.quality.framework import QualityCharacteristic


@dataclass(frozen=True)
class MeasureConstraint:
    """A hard constraint on an estimated measure or characteristic score.

    Alternatives violating a constraint are discarded before the skyline
    is computed, implementing the "set of constraints based on estimated
    measures" the user can configure.

    Attributes
    ----------
    target:
        Either a measure name (e.g. ``"process_cycle_time_ms"``) or a
        characteristic name (e.g. ``"performance"``); characteristic names
        are matched against composite scores.
    min_value / max_value:
        Inclusive bounds on the raw measure value (or composite score).
        ``None`` means unbounded on that side.
    """

    target: str
    min_value: float | None = None
    max_value: float | None = None

    def is_satisfied_by(self, profile: QualityProfile) -> bool:
        """Whether a quality profile satisfies this constraint."""
        value = self._resolve(profile)
        if value is None:
            # Constraints on measures that were not evaluated do not
            # eliminate the alternative; they are simply not checkable.
            return True
        if self.min_value is not None and value < self.min_value:
            return False
        if self.max_value is not None and value > self.max_value:
            return False
        return True

    def _resolve(self, profile: QualityProfile) -> float | None:
        if self.target in profile.values:
            return profile.values[self.target].value
        try:
            characteristic = QualityCharacteristic(self.target)
        except ValueError:
            return None
        if characteristic in profile.scores:
            return profile.scores[characteristic]
        return None


@dataclass
class ProcessingConfiguration:
    """The processing parameters of one planning run.

    Attributes
    ----------
    pattern_names:
        Restriction of the palette to these patterns; ``()`` means the
        whole palette is used (demo part P2).
    policy:
        Name of the deployment policy (``"heuristic"``, ``"exhaustive"``,
        ``"random"`` or ``"goal_driven"``).
    pattern_budget:
        Maximum number of FCP applications combined in one alternative
        flow (the process "can be repeated an arbitrary number of times";
        the budget bounds the combinatorial explosion).
    max_points_per_pattern:
        Upper bound on the number of application points considered per
        pattern by non-exhaustive policies.
    max_alternatives:
        Upper bound on the number of alternative flows generated.
    goal_priorities:
        Relative priority of each quality characteristic, used by the
        goal-driven policy and reported in session summaries.
    constraints:
        Hard constraints on estimated measures.
    skyline_characteristics:
        The quality dimensions of the scatter plot / Pareto frontier.
    simulation_runs / seed:
        Passed to the quality estimator's simulator.
    parallel_workers:
        Number of workers used for concurrent measure estimation
        (the reproduction's substitute for the paper's cloud nodes).
    screening_beam:
        When set, planning runs in two phases: every generated candidate
        is first scored with cheap *static-only* estimation (no
        simulation), and only the top ``screening_beam`` survivors receive
        the full simulated profile.  ``None`` (the default) disables
        screening and reproduces the exhaustive single-phase behaviour.
    eval_batch_size:
        Upper bound on in-flight submissions while streaming candidates
        through the parallel evaluator; generation and estimation overlap
        within this window.
    cache_profiles:
        When true (the default) the planner memoizes quality profiles by
        flow fingerprint, so structurally identical flows -- within one
        run or across the iterations of a redesign session -- are
        simulated only once.
    cache_tier:
        Which cache backend holds the memoized profiles (requires
        ``cache_profiles=True`` to matter): ``"memory"`` (default, the
        in-process LRU -- dies with the process), ``"disk"`` (a
        persistent store under ``cache_dir``, shared across runs and
        concurrent sessions), ``"tiered"`` (memory in front of disk,
        promoting disk hits -- the best of both for repeated runs) or
        ``"http"`` (a client onto a shared
        :class:`repro.service.CacheServer` at ``cache_url`` -- profiles
        shared across *machines*, no common filesystem needed) or
        ``"sharded"`` (a consistent-hash ring of ``"http"`` clients
        partitioning the store across the ``cache_urls`` shard servers;
        see ``docs/fleet.md``).
    cache_dir:
        Directory of the persistent profile store; required by (and only
        meaningful for) the ``"disk"`` and ``"tiered"`` cache tiers.
        Point several planners at one directory to share profiles
        between them; entries are self-verifying, so a stale or damaged
        directory degrades to a cold cache, never to wrong results.
    cache_max_bytes:
        Optional size cap on the on-disk profile store;
        least-recently-used entries are evicted once the total entry
        size exceeds it.  ``None`` (the default) means unbounded.
        Meaningless for the ``"http"`` tier, whose *server* owns
        eviction.
    cache_url:
        Base URL of the shared cache service, required by (and only
        valid for) ``cache_tier="http"`` -- e.g.
        ``"http://cache-host:8731"``, typically a
        ``tools/serve.py cache`` process fronting one ``cache_dir`` for
        a whole fleet.  An unreachable server degrades the tier to
        local memory (logged once); it never fails a plan.
    cache_timeout:
        Per-request budget of the ``"http"`` cache client, in seconds.
        A request exceeding it counts as a server failure and triggers
        the local fallback.
    cache_compression:
        Whether the ``"http"`` client gzip-compresses large request
        bodies and accepts compressed responses (default ``True``;
        profile documents compress several-fold).  ``False`` reproduces
        the uncompressed wire protocol.
    cache_auth_token:
        Shared token of an authenticated cache server (its
        ``--auth-token``), sent as ``Authorization: Bearer <token>``.
        A rejected token raises
        :class:`repro.cache.http.CacheAuthError` instead of silently
        degrading.  Only valid with ``cache_tier="http"``.
    cache_recovery_interval:
        Seconds before a degraded ``"http"`` client's first recovery
        probe; the delay doubles per failed probe (capped at 16x).  On
        success the client re-attaches and republishes what the local
        fallback accumulated.  ``None`` disables probing (degradation
        lasts for the process).
    cache_max_pending:
        The ``"http"`` client's write buffer auto-publishes once it
        holds this many entries, bounding client memory on campaigns
        that never flush.
    cache_urls:
        The shard-server base URLs of the ``"sharded"`` tier (required
        by and only valid for it) -- one
        :class:`repro.service.CacheServer` per entry, e.g.
        ``("http://shard0:8731", "http://shard1:8731")``.  Routing is a
        pure function of this *set* (order does not matter), so every
        planner and worker configured with the same URLs agrees on
        placement with no coordination.  Wire knobs (``cache_timeout``,
        ``cache_compression``, ``cache_auth_token``,
        ``cache_recovery_interval``, ``cache_max_pending``) apply to
        each shard client; an unreachable shard degrades *alone* to a
        local fallback and recovers without touching live shards.
    fleet_ring_replicas:
        Virtual points per shard on the consistent-hash ring (the
        ``"sharded"`` tier).  More points smooth the partition; the
        default keeps the busiest of four shards well within 2x of the
        ideal quarter.  Must be identical across a fleet -- it changes
        placement.
    copy_mode:
        How pattern application copies flows: ``"deep"`` (default, the
        seed behaviour) clones every operation payload per application;
        ``"cow"`` shares payloads copy-on-write and drives delta-based
        validation and incremental signatures -- same alternatives,
        several times faster generation (see the module's Performance
        tuning section).
    prefix_cache:
        When true (the default) the alternative generator reuses the
        shared prefix of consecutive pattern combinations (intermediate
        flows, and under ``copy_mode="cow"`` their validated issue
        lists) instead of re-applying it from the base flow.  Identical
        alternative sets in both copy modes; ~2.5x fewer pattern
        applications at ``pattern_budget=3``.  ``False`` restores the
        uncached enumeration (every combination re-applied from
        scratch).
    backend:
        Worker pool flavour of the parallel evaluator: ``"thread"``
        (default) or ``"process"`` (GIL-free overlap of generation and
        simulation; flows are pickled to the workers).
    executor_backend:
        Dataframe backend used when planned flows are *executed*
        (:meth:`~repro.core.planner.Planner.execute_top_k`): the
        dependency-free ``"local"`` reference backend (default), or the
        optional native ``"pandas"`` / ``"polars"`` backends (a
        :class:`~repro.exec.backends.BackendUnavailableError` is raised
        at execution time when the library is not installed).  Planning
        itself never touches this knob -- plans are byte-identical
        whichever backend later runs them.  See ``docs/execution.md``.
    metrics_enabled:
        When true, the planner and everything it drives (evaluator,
        cache tiers, wire client) record latency histograms, phase
        spans and hit/miss counters into a metrics registry; the
        ``GET /metrics`` endpoints and ``tools/obs.py`` dashboard read
        them back.  Off by default -- the disabled path costs one
        ``None`` check per instrumentation site, and results are
        byte-identical either way.  See ``docs/observability.md``.
    metrics_registry:
        The :class:`repro.obs.MetricsRegistry` to record into when
        ``metrics_enabled`` is set; ``None`` (the default) uses the
        process-wide default registry
        (:func:`repro.obs.default_registry`).  Not part of the service
        request schema -- servers inject their own registry, a client
        cannot pick one over the wire.
    """

    pattern_names: tuple[str, ...] = ()
    policy: str = "heuristic"
    pattern_budget: int = 2
    max_points_per_pattern: int = 4
    max_alternatives: int = 2000
    goal_priorities: Mapping[QualityCharacteristic, float] = field(default_factory=dict)
    constraints: tuple[MeasureConstraint, ...] = ()
    skyline_characteristics: tuple[QualityCharacteristic, ...] = (
        QualityCharacteristic.PERFORMANCE,
        QualityCharacteristic.DATA_QUALITY,
        QualityCharacteristic.RELIABILITY,
    )
    simulation_runs: int = 3
    seed: int = 7
    parallel_workers: int = 1
    screening_beam: int | None = None
    eval_batch_size: int = 16
    cache_profiles: bool = True
    cache_tier: str = "memory"
    cache_dir: str | None = None
    cache_max_bytes: int | None = None
    cache_url: str | None = None
    cache_timeout: float = 5.0
    cache_compression: bool = True
    cache_auth_token: str | None = None
    cache_recovery_interval: float | None = 5.0
    cache_max_pending: int = 1024
    cache_urls: tuple[str, ...] | None = None
    fleet_ring_replicas: int = DEFAULT_RING_REPLICAS
    copy_mode: str = "deep"
    prefix_cache: bool = True
    backend: str = "thread"
    executor_backend: str = "local"
    metrics_enabled: bool = False
    metrics_registry: object | None = None

    def __post_init__(self) -> None:
        if self.metrics_registry is not None:
            if not self.metrics_enabled:
                raise ValueError("metrics_registry requires metrics_enabled=True")
            for required in ("counter", "histogram", "snapshot"):
                if not callable(getattr(self.metrics_registry, required, None)):
                    raise ValueError(
                        "metrics_registry must be a repro.obs.MetricsRegistry "
                        f"(missing {required!r})"
                    )
        if self.copy_mode not in ("deep", "cow"):
            raise ValueError(f"unknown copy_mode: {self.copy_mode!r} (use 'deep' or 'cow')")
        if self.backend not in ("thread", "process"):
            raise ValueError(f"unknown backend: {self.backend!r} (use 'thread' or 'process')")
        if self.executor_backend not in EXECUTOR_BACKENDS:
            raise ValueError(
                f"unknown executor_backend: {self.executor_backend!r} "
                f"(use one of {EXECUTOR_BACKENDS})"
            )
        if self.pattern_budget < 1:
            raise ValueError("pattern_budget must be at least 1")
        if self.max_points_per_pattern < 1:
            raise ValueError("max_points_per_pattern must be at least 1")
        if self.max_alternatives < 1:
            raise ValueError("max_alternatives must be at least 1")
        if self.simulation_runs < 1:
            raise ValueError("simulation_runs must be at least 1")
        if self.parallel_workers < 1:
            raise ValueError("parallel_workers must be at least 1")
        if self.screening_beam is not None and self.screening_beam < 1:
            raise ValueError("screening_beam must be at least 1 (or None to disable)")
        if self.eval_batch_size < 1:
            raise ValueError("eval_batch_size must be at least 1")
        if self.cache_tier not in CACHE_TIERS:
            raise ValueError(
                f"unknown cache_tier: {self.cache_tier!r} (use one of {CACHE_TIERS})"
            )
        if self.cache_tier in ("disk", "tiered") and self.cache_dir is None:
            raise ValueError(f"cache_tier={self.cache_tier!r} requires a cache_dir")
        if self.cache_tier == "http" and self.cache_url is None:
            raise ValueError('cache_tier="http" requires a cache_url')
        if self.cache_tier in ("http", "sharded") and self.cache_dir is not None:
            raise ValueError(
                f"cache_dir does not apply to cache_tier={self.cache_tier!r} -- the "
                "cache server owns the store; point the server at the directory instead"
            )
        if self.cache_url is not None and self.cache_tier != "http":
            raise ValueError(
                'cache_url only applies to cache_tier="http" '
                f"(got cache_tier={self.cache_tier!r}; "
                'the "sharded" tier takes cache_urls, plural)'
            )
        if self.cache_tier == "sharded":
            if not self.cache_urls:
                raise ValueError(
                    'cache_tier="sharded" requires cache_urls (the shard server URLs)'
                )
            if not all(isinstance(url, str) and url for url in self.cache_urls):
                raise ValueError("cache_urls entries must be non-empty strings")
            if len(set(self.cache_urls)) != len(tuple(self.cache_urls)):
                raise ValueError(f"cache_urls contains duplicates: {self.cache_urls!r}")
        elif self.cache_urls is not None:
            raise ValueError(
                'cache_urls only applies to cache_tier="sharded" '
                f"(got cache_tier={self.cache_tier!r})"
            )
        if self.fleet_ring_replicas < 1:
            raise ValueError("fleet_ring_replicas must be at least 1")
        if self.cache_timeout <= 0:
            raise ValueError("cache_timeout must be positive (seconds)")
        if self.cache_auth_token is not None:
            if not self.cache_auth_token:
                raise ValueError("cache_auth_token must be a non-empty string (or None)")
            if self.cache_tier not in ("http", "sharded"):
                raise ValueError(
                    "cache_auth_token only applies to the network cache tiers "
                    f"('http' or 'sharded'; got cache_tier={self.cache_tier!r})"
                )
        if self.cache_recovery_interval is not None and self.cache_recovery_interval <= 0:
            raise ValueError(
                "cache_recovery_interval must be positive seconds (or None to disable)"
            )
        if self.cache_max_pending < 1:
            raise ValueError("cache_max_pending must be at least 1")
        if self.cache_max_bytes is not None:
            if self.cache_max_bytes < 1:
                raise ValueError("cache_max_bytes must be at least 1 (or None for unbounded)")
            if self.cache_tier not in ("disk", "tiered"):
                raise ValueError(
                    "cache_max_bytes only applies to the disk-backed cache tiers "
                    "('disk' or 'tiered'); the 'http' tier's server owns eviction"
                )

    def prioritized_characteristics(self) -> list[QualityCharacteristic]:
        """Characteristics ordered by decreasing user priority."""
        if not self.goal_priorities:
            return list(self.skyline_characteristics)
        return [
            characteristic
            for characteristic, _ in sorted(
                self.goal_priorities.items(), key=lambda item: item[1], reverse=True
            )
        ]

    def satisfies_constraints(self, profile: QualityProfile) -> bool:
        """Whether a profile satisfies every configured constraint."""
        return all(constraint.is_satisfied_by(profile) for constraint in self.constraints)
