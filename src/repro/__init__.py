"""POIESIS reproduction: quality-aware ETL process redesign.

A Python reproduction of "POIESIS: a Tool for Quality-aware ETL Process
Redesign" (Theodorou, Abelló, Thiele, Lehner -- EDBT 2015).  The package
provides:

* an ETL flow-graph model and fluent builder (:mod:`repro.etl`),
* a repository of Flow Component Patterns with applicability prerequisites
  and placement heuristics (:mod:`repro.patterns`),
* the POIESIS Planner: alternative-flow generation, quality estimation,
  constraint filtering, Pareto skyline and iterative redesign sessions
  (:mod:`repro.core`),
* a quality-measure framework with static and trace-based measures
  (:mod:`repro.quality`) backed by a runtime simulator
  (:mod:`repro.simulator`),
* xLM / PDI / JSON import-export (:mod:`repro.io`),
* TPC-H / TPC-DS / Fig. 2 workloads (:mod:`repro.workloads`), and
* text-based renderings of the paper's figures (:mod:`repro.viz`).

Quickstart
----------
>>> from repro import Planner, ProcessingConfiguration
>>> from repro.workloads import purchases_flow
>>> planner = Planner(configuration=ProcessingConfiguration(pattern_budget=1))
>>> result = planner.plan(purchases_flow(rows_per_source=2_000))
>>> len(result.skyline) >= 1
True
"""

from repro.core import (
    AlternativeFlow,
    FlowComparison,
    MeasureConstraint,
    ParallelEvaluator,
    Planner,
    PlanningResult,
    ProcessingConfiguration,
    RedesignSession,
    compare_profiles,
    pareto_front,
    pareto_front_profiles,
    policy_by_name,
)
from repro.etl import ETLGraph, FlowBuilder, Operation, OperationKind, Schema, Field, DataType
from repro.patterns import PatternRegistry, default_palette
from repro.quality import (
    QualityCharacteristic,
    QualityEstimator,
    QualityProfile,
    default_registry,
)
from repro.simulator import ETLSimulator, SimulationConfig, simulate_flow

__version__ = "1.0.0"

__all__ = [
    "AlternativeFlow",
    "FlowComparison",
    "MeasureConstraint",
    "ParallelEvaluator",
    "Planner",
    "PlanningResult",
    "ProcessingConfiguration",
    "RedesignSession",
    "compare_profiles",
    "pareto_front",
    "pareto_front_profiles",
    "policy_by_name",
    "ETLGraph",
    "FlowBuilder",
    "Operation",
    "OperationKind",
    "Schema",
    "Field",
    "DataType",
    "PatternRegistry",
    "default_palette",
    "QualityCharacteristic",
    "QualityEstimator",
    "QualityProfile",
    "default_registry",
    "ETLSimulator",
    "SimulationConfig",
    "simulate_flow",
    "__version__",
]
