"""Client-side wire plumbing shared by the service-layer clients.

Both network clients of the reproduction -- the profile-cache tier
(:class:`repro.cache.http.HTTPProfileCache`) and the redesign client
(:class:`repro.service.RedesignClient`) -- talk JSON over HTTP to the
stdlib servers in :mod:`repro.service`.  This module owns the transport
they share, so the wire-level behaviour (connection reuse, compression,
authentication) is implemented exactly once:

* **Pooled keep-alive connections.**  :class:`PooledJSONClient` keeps
  one persistent :class:`http.client.HTTPConnection` *per calling
  thread* and reuses it across requests, so a planning campaign pays
  the TCP handshake once instead of once per round-trip.  A connection
  that went stale while idle (the server restarted or closed it --
  :class:`~http.client.RemoteDisconnected`, a reset, a broken pipe) is
  transparently replaced and the request retried **exactly once**, and
  only when the connection was *reused*: a failure on a fresh
  connection, or protocol garbage (a non-empty unparseable status
  line), is never retried -- it is the caller's error to handle.
* **Transparent compression.**  Request bodies at or above
  ``compress_min_bytes`` are gzip-compressed (``Content-Encoding:
  gzip``); every request advertises ``Accept-Encoding: gzip, deflate``
  and responses are decompressed according to their
  ``Content-Encoding``.  Profile documents are highly redundant JSON
  (they compress ~5-10x), so this trades cheap CPU for wire bytes.
  Disable with ``compression=False`` to reproduce the uncompressed
  protocol.
* **Token authentication.**  With ``auth_token`` set, every request
  carries ``Authorization: Bearer <token>`` -- the scheme
  :class:`repro.service.common.ServiceServer` checks when started with
  a token.  The token protects against *accidental* cross-talk and
  unauthorised writes on a trusted network; it is not a substitute for
  TLS (terminate TLS in front of the server -- see
  ``docs/service.md``).

Error contract: HTTP error responses raise :class:`WireError` (status +
server-provided message); transport and protocol failures raise the
underlying :class:`OSError` / :class:`http.client.HTTPException` /
:class:`ValueError`, letting each client apply its own policy (the
cache client degrades, the redesign client re-raises).
"""

from __future__ import annotations

import gzip
import http.client
import json
import os
import socket
import threading
import urllib.parse
import zlib
from typing import Any, Mapping

#: Bodies at or above this many bytes are compressed (requests by the
#: client, responses by the server).  Below it the gzip header overhead
#: and the extra CPU are not worth the handful of wire bytes saved.
COMPRESS_MIN_BYTES = 1024

#: Content-Encoding values the codec understands.
_CODINGS = ("gzip", "deflate", "identity")


class WireError(Exception):
    """An HTTP error response (status >= 400) with the server's message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"[{status}] {message}")
        self.status = status
        self.message = message


def compress_body(
    body: bytes, *, compress: bool, min_bytes: int = COMPRESS_MIN_BYTES
) -> tuple[bytes, str | None]:
    """Compress an already-serialised body when worthwhile.

    Returns ``(body, content_encoding)`` where ``content_encoding`` is
    ``"gzip"`` or ``None``.  ``mtime=0`` keeps the gzip output
    deterministic (byte-identical bodies for byte-identical payloads).
    """
    if compress and len(body) >= min_bytes:
        compressed = gzip.compress(body, mtime=0)
        if len(compressed) < len(body):
            return compressed, "gzip"
    return body, None


def encode_body(
    payload: Any, *, compress: bool, min_bytes: int = COMPRESS_MIN_BYTES
) -> tuple[bytes, str | None]:
    """Serialise a JSON payload, compressing it when worthwhile.

    ``json.dumps`` then :func:`compress_body` -- callers that need the
    pre-compression size (the wire byte accounting) serialise themselves
    and call :func:`compress_body` directly.
    """
    return compress_body(
        json.dumps(payload).encode("utf-8"), compress=compress, min_bytes=min_bytes
    )


class BodyTooLarge(ValueError):
    """A compressed body decompressed past the caller's ``max_bytes``."""


def decode_body(
    body: bytes, content_encoding: str | None, max_bytes: int | None = None
) -> bytes:
    """Undo a ``Content-Encoding``.

    With ``max_bytes`` set, decompression stops at the bound and raises
    :class:`BodyTooLarge` -- the server uses this so a small compressed
    request cannot expand past ``max_request_bytes`` in memory.  Raises
    ``ValueError`` for unknown codings and truncated streams,
    ``zlib.error`` for corrupt ones.
    """
    coding = (content_encoding or "identity").strip().lower()
    if coding == "identity" or not body:
        return body
    if coding == "gzip":
        wbits = 31
    elif coding == "deflate":
        wbits = 15
    else:
        raise ValueError(f"unsupported Content-Encoding: {content_encoding!r}")
    decompressor = zlib.decompressobj(wbits=wbits)
    out = decompressor.decompress(body, max_bytes + 1 if max_bytes is not None else 0)
    if max_bytes is not None and (
        len(out) > max_bytes or decompressor.unconsumed_tail
    ):
        raise BodyTooLarge(
            f"decompressed body exceeds the {max_bytes}-byte limit"
        )
    out += decompressor.flush()
    if not decompressor.eof:
        raise ValueError("truncated compressed body")
    return out


class PooledJSONClient:
    """A JSON-over-HTTP client with per-thread persistent connections.

    Parameters
    ----------
    url:
        Base URL, e.g. ``"http://127.0.0.1:8731"``.  ``https://`` URLs
        use :class:`http.client.HTTPSConnection` (for TLS-terminating
        front-ends that re-encrypt to the client).
    timeout:
        Socket timeout in seconds, applied to every connection.
    compression:
        Compress request bodies at/above :attr:`compress_min_bytes` and
        advertise ``Accept-Encoding`` (the server then compresses large
        responses).  Off = the plain PR 5 protocol.
    compress_min_bytes:
        Size threshold for request compression.
    auth_token:
        Optional shared token sent as ``Authorization: Bearer <token>``.
    keep_alive:
        When ``False``, every request sends ``Connection: close`` and
        tears the socket down afterwards -- one TCP connection per
        request, the PR 5 behaviour, kept for benchmarking the pooled
        path against.

    Attributes
    ----------
    connections_opened / reconnects / requests:
        Wire accounting: sockets ever opened, stale-socket replacements
        (each one also implies a retried request), and completed
        round-trips.  ``compressed_requests`` / ``compressed_responses``
        count bodies that actually travelled compressed.
    bytes_sent / bytes_received:
        Body bytes as they travelled (post-compression request bodies,
        pre-decompression response bodies); headers are not counted.
    raw_bytes_sent / raw_bytes_received:
        The same bodies *before* compression / *after* decompression --
        ``raw / wire`` is the effective compression ratio.
    metrics_registry:
        Optional :class:`repro.obs.MetricsRegistry`; when set, the four
        byte counters (and ``wire.requests``) are mirrored as ``wire.*``
        instruments on every round-trip.  Plain attribute, assignable
        after construction.
    """

    def __init__(
        self,
        url: str,
        timeout: float,
        *,
        compression: bool = True,
        compress_min_bytes: int = COMPRESS_MIN_BYTES,
        auth_token: str | None = None,
        keep_alive: bool = True,
    ) -> None:
        split = urllib.parse.urlsplit(url)
        if split.scheme not in ("http", "https") or not split.hostname:
            raise ValueError(f"unsupported service URL: {url!r} (use http[s]://host:port)")
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.compression = compression
        self.compress_min_bytes = compress_min_bytes
        self.auth_token = auth_token
        self.keep_alive = keep_alive
        self._scheme = split.scheme
        self._host = split.hostname
        self._port = split.port or (443 if split.scheme == "https" else 80)
        self._base_path = split.path.rstrip("/")
        self._local = threading.local()
        self._live: set[http.client.HTTPConnection] = set()
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self.connections_opened = 0
        self.reconnects = 0
        self.requests = 0
        self.compressed_requests = 0
        self.compressed_responses = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.raw_bytes_sent = 0
        self.raw_bytes_received = 0
        self.metrics_registry = None

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        cls = (
            http.client.HTTPSConnection
            if self._scheme == "https"
            else http.client.HTTPConnection
        )
        connection = cls(self._host, self._port, timeout=self.timeout)
        connection.connect()
        try:
            # A request is written as two segments (headers, then body);
            # with Nagle on, the second waits out the peer's delayed ACK
            # (~40ms) on every keep-alive round-trip -- the stall would
            # eat the entire pooling win.
            connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except (OSError, AttributeError):  # pragma: no cover - platform quirk
            pass
        with self._lock:
            self._live.add(connection)
            self.connections_opened += 1
        return connection

    def _discard(self, connection: http.client.HTTPConnection) -> None:
        with self._lock:
            self._live.discard(connection)
        try:
            connection.close()
        except OSError:  # pragma: no cover - close never matters
            pass
        if getattr(self._local, "connection", None) is connection:
            self._local.connection = None

    def close(self) -> None:
        """Close every pooled connection (all threads); safe to re-use after."""
        with self._lock:
            live, self._live = self._live, set()
        for connection in live:
            try:
                connection.close()
            except OSError:  # pragma: no cover
                pass
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def _headers(self, content_encoding: str | None) -> dict[str, str]:
        headers = {"Content-Type": "application/json"}
        if self.compression:
            headers["Accept-Encoding"] = "gzip, deflate"
        if content_encoding is not None:
            headers["Content-Encoding"] = content_encoding
        if self.auth_token is not None:
            headers["Authorization"] = f"Bearer {self.auth_token}"
        if not self.keep_alive:
            headers["Connection"] = "close"
        return headers

    def _round_trip(
        self, method: str, path: str, body: bytes | None, headers: Mapping[str, str]
    ) -> tuple[int, bytes, str | None]:
        """One request/response on the pooled connection, reconnecting once.

        Only a *reused* connection whose server went away mid-idle is
        retried (``RemoteDisconnected`` -- the empty-response subclass of
        ``BadStatusLine`` -- a reset, a broken pipe, or a connection the
        pool already knows is unusable).  A fresh connection failing, or
        a server answering actual garbage, raises straight through.
        """
        if os.getpid() != self._pid:
            # Forked child (fork inherits thread-local state, so the
            # parent's pooled socket looks like "our" connection here).
            # Two processes writing one fd interleave request bytes into
            # protocol garbage -- abandon the inherited pool and dial
            # fresh.  Closing our fd copies is safe: the parent's own
            # descriptors keep its sockets alive.
            self._local = threading.local()
            with self._lock:
                self._live = set()
            self._pid = os.getpid()
        connection = getattr(self._local, "connection", None)
        fresh = connection is None
        if fresh:
            connection = self._local.connection = self._connect()
        try:
            return self._exchange(connection, method, path, body, headers)
        except (
            http.client.RemoteDisconnected,
            http.client.CannotSendRequest,
            ConnectionResetError,
            BrokenPipeError,
        ):
            self._discard(connection)
            if fresh:
                raise
            # The keep-alive socket went stale while idle: one fresh
            # connection, one retry.  A second failure propagates.
            self.reconnects += 1
            connection = self._local.connection = self._connect()
            try:
                return self._exchange(connection, method, path, body, headers)
            except Exception:
                self._discard(connection)
                raise
        except Exception:
            # Anything else (timeout, refused, protocol garbage) poisons
            # the connection but is never retried here.
            self._discard(connection)
            raise

    def _exchange(
        self,
        connection: http.client.HTTPConnection,
        method: str,
        path: str,
        body: bytes | None,
        headers: Mapping[str, str],
    ) -> tuple[int, bytes, str | None]:
        connection.request(method, self._base_path + path, body=body, headers=dict(headers))
        response = connection.getresponse()
        # Always drain: a half-read body would desync the next request.
        payload = response.read()
        if not self.keep_alive or response.will_close:
            self._discard(connection)
        return response.status, payload, response.getheader("Content-Encoding")

    def request_json(
        self, method: str, path: str, payload: Mapping[str, Any] | None = None
    ) -> Any:
        """One JSON round-trip.

        Raises :class:`WireError` for HTTP error statuses (message taken
        from the server's JSON error document) and lets transport /
        protocol / serialisation failures propagate for the caller's
        policy.  A JSON response that does not parse raises
        ``ValueError``.
        """
        if payload is None:
            body, content_encoding = None, None
            raw_sent = 0
        else:
            raw_body = json.dumps(payload).encode("utf-8")
            raw_sent = len(raw_body)
            body, content_encoding = compress_body(
                raw_body, compress=self.compression, min_bytes=self.compress_min_bytes
            )
            if content_encoding is not None:
                self.compressed_requests += 1
        status, raw, response_encoding = self._round_trip(
            method, path, body, self._headers(content_encoding)
        )
        self.requests += 1
        if response_encoding not in (None, "identity"):
            self.compressed_responses += 1
        wire_received = len(raw)
        raw = decode_body(raw, response_encoding)
        self.bytes_sent += len(body) if body is not None else 0
        self.raw_bytes_sent += raw_sent
        self.bytes_received += wire_received
        self.raw_bytes_received += len(raw)
        registry = self.metrics_registry
        if registry is not None:
            registry.counter("wire.requests").inc()
            if body is not None:
                registry.counter("wire.bytes_sent").inc(len(body))
                registry.counter("wire.raw_bytes_sent").inc(raw_sent)
            registry.counter("wire.bytes_received").inc(wire_received)
            registry.counter("wire.raw_bytes_received").inc(len(raw))
        if status >= 400:
            try:
                message = json.loads(raw.decode("utf-8")).get("error", "")
            except (ValueError, AttributeError, UnicodeDecodeError):
                message = ""
            raise WireError(status, message or f"HTTP {status}")
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"response body is not valid JSON: {exc}") from None
