"""JSON round-trip of planning results (the ``/plans/<id>/result`` payload).

Built on the existing :mod:`repro.io.jsonflow` codecs: flows are
serialised with :meth:`~repro.etl.graph.ETLGraph.to_dict` (the same
structure ``flow_to_json`` persists) and profiles with
:func:`~repro.io.jsonflow.profile_to_dict`.  The alternatives are
returned in generation order with the skyline indices alongside, exactly
as :class:`~repro.core.planner.PlanningResult` holds them.

One deliberate loss: pattern *applications* are structured objects bound
to live pattern instances, so the wire format carries their textual
lineage (``applied`` / ``pattern_names``) instead.
:func:`result_from_dict` therefore rebuilds alternatives with an empty
``applications`` tuple -- flows, labels, profiles, skyline and baseline
round-trip exactly, which is what result comparison and downstream
reporting need.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.alternatives import AlternativeFlow
from repro.core.planner import PlanningResult
from repro.etl.graph import ETLGraph
from repro.io.jsonflow import profile_from_dict, profile_to_dict
from repro.quality.framework import QualityCharacteristic


def result_to_dict(result: PlanningResult) -> dict[str, Any]:
    """Serialise a planning result to a JSON-compatible document."""
    return {
        "initial_flow": result.initial_flow.to_dict(),
        "baseline_profile": profile_to_dict(result.baseline_profile),
        "characteristics": [c.value for c in result.characteristics],
        "discarded_by_constraints": result.discarded_by_constraints,
        "skyline_indices": list(result.skyline_indices),
        "alternatives": [
            {
                "label": alternative.label,
                "applied": alternative.describe(),
                "pattern_names": list(alternative.pattern_names),
                "flow": alternative.flow.to_dict(),
                "profile": (
                    profile_to_dict(alternative.profile)
                    if alternative.profile is not None
                    else None
                ),
            }
            for alternative in result.alternatives
        ],
    }


def result_from_dict(data: Mapping[str, Any]) -> PlanningResult:
    """Rebuild a :class:`PlanningResult` from :func:`result_to_dict` output."""
    alternatives = [
        AlternativeFlow(
            flow=ETLGraph.from_dict(entry["flow"]),
            applications=(),  # textual lineage only -- see the module docstring
            profile=(
                profile_from_dict(entry["profile"])
                if entry.get("profile") is not None
                else None
            ),
            label=entry.get("label", ""),
        )
        for entry in data["alternatives"]
    ]
    return PlanningResult(
        initial_flow=ETLGraph.from_dict(data["initial_flow"]),
        baseline_profile=profile_from_dict(data["baseline_profile"]),
        alternatives=alternatives,
        skyline_indices=list(data.get("skyline_indices", [])),
        characteristics=tuple(
            QualityCharacteristic(name) for name in data.get("characteristics", [])
        ),
        discarded_by_constraints=int(data.get("discarded_by_constraints", 0)),
    )
