"""Shared HTTP plumbing of the service layer.

Both servers (:class:`~repro.service.CacheServer` and
:class:`~repro.service.RedesignServer`) are stdlib-only: a
:class:`http.server.ThreadingHTTPServer` behind a small JSON
request/response convention implemented here.

* Requests and responses are ``application/json``; errors are JSON too
  (``{"error": "..."}``) with the appropriate status code, so clients
  never have to scrape HTML tracebacks.
* Bodies above the server's ``max_request_bytes`` are rejected with
  ``413`` *before* being read; malformed JSON gets a clean ``400``.
* Handler exceptions surface as ``500`` JSON errors; the server thread
  keeps serving.

The servers bind ``127.0.0.1`` by default and speak unauthenticated
plain HTTP -- deploy them on trusted networks only (see
``docs/service.md``).
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

logger = logging.getLogger("repro.service")

#: Default cap on request bodies (flow documents are a few hundred kB at
#: most; profiles far less).  Oversized requests are rejected with 413.
MAX_REQUEST_BYTES = 8 * 1024 * 1024


class ServiceError(Exception):
    """A request failure with an HTTP status and a JSON-safe message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class JSONRequestHandler(BaseHTTPRequestHandler):
    """Request handler base: JSON bodies in, JSON payloads out.

    Subclasses implement :meth:`route` and receive the parsed body for
    every method (``{}`` when the request carries none -- bodies are
    always drained so keep-alive connections stay in sync); whatever
    they return is serialised as the 200 response.  Raise
    :class:`ServiceError` for client errors; anything else becomes a
    500.
    """

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        logger.debug("%s - %s", self.address_string(), format % args)

    def send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # Tell keep-alive clients the truth (set when a request was
            # rejected before its body was drained -- see read_json).
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def read_json(self) -> Any:
        """Parse the request body, enforcing the size cap first.

        A request rejected *before* its body is read (oversized, bad
        Content-Length) leaves unread bytes on the socket; the
        connection is marked for closing so a keep-alive client cannot
        have its next request parsed out of the stale body.
        """
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length) if raw_length is not None else 0
        except ValueError:
            self.close_connection = True
            raise ServiceError(400, "invalid Content-Length header") from None
        limit = getattr(self.server, "max_request_bytes", MAX_REQUEST_BYTES)
        if length > limit:
            self.close_connection = True
            raise ServiceError(
                413, f"request body of {length} bytes exceeds the {limit}-byte limit"
            )
        if length <= 0:
            return {}
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(400, f"request body is not valid JSON: {exc}") from None

    # ------------------------------------------------------------------

    def route(self, method: str, path: str, body: Any) -> dict:
        """Dispatch one request; subclasses override."""
        raise ServiceError(404, f"unknown endpoint: {method} {path}")

    def _handle(self, method: str) -> None:
        try:
            # The body is parsed (and thereby drained) for every method,
            # not just POST: unread bytes would desync the next request
            # on a keep-alive connection, exactly what the 400/413 paths
            # guard against.  Bodyless requests parse as {}.
            body = self.read_json()
            payload = self.route(method, self.path.rstrip("/") or "/", body)
            self.send_json(200, payload)
        except ServiceError as exc:
            self.send_json(exc.status, {"error": exc.message})
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as exc:  # pragma: no cover - defensive
            logger.exception("unhandled error serving %s %s", method, self.path)
            try:
                self.send_json(500, {"error": f"internal error: {exc}"})
            except OSError:
                pass

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._handle("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._handle("DELETE")


class ServiceServer:
    """A threaded HTTP server running on a daemon thread.

    Subclasses provide the handler class and any service state; the
    base owns the lifecycle: :meth:`start` binds and serves in the
    background, :meth:`stop` shuts down and closes the socket, and the
    instance doubles as a context manager.  ``port=0`` (the default)
    binds an ephemeral port -- read it back from :attr:`url`.
    """

    handler_class: type[JSONRequestHandler] = JSONRequestHandler

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_request_bytes: int = MAX_REQUEST_BYTES,
    ) -> None:
        self._http = ThreadingHTTPServer((host, port), self.handler_class)
        self._http.daemon_threads = True
        # The handler reaches the service object through the server.
        self._http.service = self  # type: ignore[attr-defined]
        self._http.max_request_bytes = max_request_bytes  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------

    @property
    def host(self) -> str:
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        return self._http.server_address[1]

    @property
    def url(self) -> str:
        """Base URL clients should use (``http://host:port``)."""
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "ServiceServer":
        """Serve requests on a background daemon thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._http.serve_forever,
                name=f"{type(self).__name__}@{self.port}",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._thread is not None:
            self._http.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._http.server_close()

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (CLI entry point)."""
        try:
            self._http.serve_forever()
        finally:
            self._http.server_close()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
