"""Shared HTTP plumbing of the service layer.

Both servers (:class:`~repro.service.CacheServer` and
:class:`~repro.service.RedesignServer`) are stdlib-only: a
:class:`http.server.ThreadingHTTPServer` behind a small JSON
request/response convention implemented here.

* Requests and responses are ``application/json``; errors are JSON too
  (``{"error": "..."}``) with the appropriate status code, so clients
  never have to scrape HTML tracebacks.
* Bodies above the server's ``max_request_bytes`` are rejected with
  ``413`` *before* being read; malformed JSON gets a clean ``400``.
* Handler exceptions surface as ``500`` JSON errors; the server thread
  keeps serving.

Wire-path features shared with the clients (:mod:`repro.wire`):

* Request bodies may arrive gzip- or deflate-compressed
  (``Content-Encoding``); they are decompressed transparently, with the
  ``max_request_bytes`` cap enforced on *both* the wire size and the
  decompressed size (a compressed bomb cannot bypass the limit).
* Responses at or above :data:`repro.wire.COMPRESS_MIN_BYTES` are
  gzip-compressed when the client advertised ``Accept-Encoding: gzip``.
* With ``auth_token`` set on the server, every request (except ``GET
  /health``, the conventional load-balancer liveness probe, and ``GET
  /metrics``, the read-only monitoring scrape) must carry
  ``Authorization: Bearer <token>`` or is rejected with a ``401`` JSON
  error.  Tokens are compared in constant time.

Observability: every :class:`ServiceServer` owns a
:class:`repro.obs.MetricsRegistry` and answers ``GET /metrics`` with the
JSON payload of :meth:`ServiceServer.metrics_payload` (snapshot plus
derived golden metrics); ``GET /metrics?format=prom`` renders the
Prometheus text exposition instead.  Every routed request is timed into
the ``service.request_seconds`` histogram (``/metrics`` scrapes
excluded, so monitoring never skews the latency it reads).  See
``docs/observability.md``.

The servers bind ``127.0.0.1`` by default and speak plain HTTP -- the
shared token authenticates, but does not encrypt; deploy across trust
boundaries only behind a TLS terminator (see ``docs/service.md``).
"""

from __future__ import annotations

import gzip
import hmac
import json
import logging
import socket
import threading
import time
import urllib.parse
import zlib
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.obs.golden import golden_metrics
from repro.obs.metrics import MetricsRegistry, render_prometheus
from repro.wire import COMPRESS_MIN_BYTES, BodyTooLarge, decode_body

logger = logging.getLogger("repro.service")

#: Default cap on request bodies (flow documents are a few hundred kB at
#: most; profiles far less).  Oversized requests are rejected with 413.
MAX_REQUEST_BYTES = 8 * 1024 * 1024


class ServiceError(Exception):
    """A request failure with an HTTP status and a JSON-safe message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class JSONRequestHandler(BaseHTTPRequestHandler):
    """Request handler base: JSON bodies in, JSON payloads out.

    Subclasses implement :meth:`route` and receive the parsed body for
    every method (``{}`` when the request carries none -- bodies are
    always drained so keep-alive connections stay in sync); whatever
    they return is serialised as the 200 response.  Raise
    :class:`ServiceError` for client errors; anything else becomes a
    500.
    """

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"
    # Responses also go out as two segments (headers, body); without
    # this, Nagle holds the second back for the client's delayed ACK on
    # every keep-alive round-trip.
    disable_nagle_algorithm = True

    # ------------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        logger.debug("%s - %s", self.address_string(), format % args)

    def send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        content_encoding = None
        if len(body) >= COMPRESS_MIN_BYTES and "gzip" in (
            self.headers.get("Accept-Encoding") or ""
        ).lower():
            compressed = gzip.compress(body, mtime=0)
            if len(compressed) < len(body):
                body, content_encoding = compressed, "gzip"
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        if content_encoding is not None:
            self.send_header("Content-Encoding", content_encoding)
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # Tell keep-alive clients the truth (set when a request was
            # rejected before its body was drained -- see read_json).
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def send_text(self, status: int, text: str) -> None:
        """A plain-text response (the Prometheus exposition format)."""
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def read_json(self) -> Any:
        """Parse the request body, enforcing the size cap first.

        A request rejected *before* its body is read (oversized, bad
        Content-Length) leaves unread bytes on the socket; the
        connection is marked for closing so a keep-alive client cannot
        have its next request parsed out of the stale body.
        """
        raw_length = self.headers.get("Content-Length")
        try:
            length = int(raw_length) if raw_length is not None else 0
        except ValueError:
            self.close_connection = True
            raise ServiceError(400, "invalid Content-Length header") from None
        limit = getattr(self.server, "max_request_bytes", MAX_REQUEST_BYTES)
        if length > limit:
            self.close_connection = True
            raise ServiceError(
                413, f"request body of {length} bytes exceeds the {limit}-byte limit"
            )
        if length <= 0:
            return {}
        raw = self.rfile.read(length)
        content_encoding = self.headers.get("Content-Encoding")
        if content_encoding:
            try:
                raw = decode_body(raw, content_encoding, max_bytes=limit)
            except BodyTooLarge:
                # The wire size passed the cap but the decompressed body
                # does not: same 413; the body WAS drained, so the
                # keep-alive connection stays usable.
                raise ServiceError(
                    413,
                    f"request body decompresses past the {limit}-byte limit",
                ) from None
            except (OSError, EOFError, zlib.error, ValueError) as exc:
                raise ServiceError(
                    400, f"cannot decode request body ({content_encoding}): {exc}"
                ) from None
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(400, f"request body is not valid JSON: {exc}") from None

    # ------------------------------------------------------------------

    def check_auth(self, method: str) -> None:
        """Enforce the server's shared token, when one is configured.

        ``GET /health`` stays open (the conventional unauthenticated
        liveness probe for load balancers and recovery probes carries
        no data), and so does ``GET /metrics`` -- monitoring scrapes
        are read-only and must keep working when the poller has no
        token.  Everything else must present ``Authorization: Bearer
        <token>``; tokens are compared in constant time.  The 401 is
        sent *before* the body is drained, so the connection is marked
        for closing like the 413 path.
        """
        token = getattr(self.server, "auth_token", None)
        if token is None:
            return
        bare = self.path.partition("?")[0].rstrip("/") or "/"
        if method == "GET" and bare in ("/health", "/metrics"):
            return
        supplied = self.headers.get("Authorization") or ""
        if hmac.compare_digest(supplied.encode(), f"Bearer {token}".encode()):
            return
        self.close_connection = True
        raise ServiceError(401, "missing or invalid authorization token")

    def route(self, method: str, path: str, body: Any) -> dict:
        """Dispatch one request; subclasses override."""
        raise ServiceError(404, f"unknown endpoint: {method} {path}")

    def _serve_metrics(self, query: str) -> None:
        """Answer ``GET /metrics``: JSON by default, ``?format=prom`` text."""
        service = getattr(self.server, "service", None)
        payload_of = getattr(service, "metrics_payload", None)
        if payload_of is None:
            raise ServiceError(404, "metrics are not available on this server")
        payload = payload_of()
        requested = urllib.parse.parse_qs(query).get("format", [""])[0]
        if requested == "prom":
            self.send_text(200, render_prometheus(payload.get("metrics", {})))
        elif requested in ("", "json"):
            self.send_json(200, payload)
        else:
            raise ServiceError(400, f"unknown metrics format: {requested!r}")

    def _handle(self, method: str) -> None:
        try:
            self.check_auth(method)
            # The body is parsed (and thereby drained) for every method,
            # not just POST: unread bytes would desync the next request
            # on a keep-alive connection, exactly what the 400/413 paths
            # guard against.  Bodyless requests parse as {}.
            body = self.read_json()
            path, _, query = self.path.partition("?")
            path = path.rstrip("/") or "/"
            if method == "GET" and path == "/metrics":
                self._serve_metrics(query)
                return
            started = time.perf_counter()
            payload = self.route(method, path, body)
            registry = getattr(
                getattr(self.server, "service", None), "metrics", None
            )
            if registry is not None:
                registry.histogram("service.request_seconds").observe(
                    time.perf_counter() - started
                )
            self.send_json(200, payload)
        except ServiceError as exc:
            self.send_json(exc.status, {"error": exc.message})
        except BrokenPipeError:  # client went away mid-response
            pass
        except Exception as exc:  # pragma: no cover - defensive
            logger.exception("unhandled error serving %s %s", method, self.path)
            try:
                self.send_json(500, {"error": f"internal error: {exc}"})
            except OSError:
                pass

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._handle("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        self._handle("DELETE")


class _TrackingHTTPServer(ThreadingHTTPServer):
    """A threading server that can sever its live connections.

    ``ThreadingHTTPServer.shutdown()`` only stops the *accept* loop;
    handler threads serving established keep-alive connections live on,
    happily answering pooled clients of a server that is officially
    stopped.  Track every client socket so :meth:`close_all_connections`
    can shut them down -- that is what makes ``ServiceServer.stop()``
    mean *stopped* to a keep-alive client (its next request fails
    instead of reaching a zombie handler thread).
    """

    daemon_threads = True

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._client_sockets: set[socket.socket] = set()
        self._client_lock = threading.Lock()

    def process_request(self, request: socket.socket, client_address: Any) -> None:
        with self._client_lock:
            self._client_sockets.add(request)
        super().process_request(request, client_address)

    def shutdown_request(self, request: socket.socket) -> None:  # type: ignore[override]
        with self._client_lock:
            self._client_sockets.discard(request)
        super().shutdown_request(request)

    def close_all_connections(self) -> None:
        with self._client_lock:
            sockets = list(self._client_sockets)
            self._client_sockets.clear()
        for sock in sockets:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass


class ServiceServer:
    """A threaded HTTP server running on a daemon thread.

    Subclasses provide the handler class and any service state; the
    base owns the lifecycle: :meth:`start` binds and serves in the
    background, :meth:`stop` shuts down and closes the socket, and the
    instance doubles as a context manager.  ``port=0`` (the default)
    binds an ephemeral port -- read it back from :attr:`url`.

    ``auth_token`` (optional) makes every handler require
    ``Authorization: Bearer <token>`` (``GET /health`` excepted); see
    :meth:`JSONRequestHandler.check_auth`.
    """

    handler_class: type[JSONRequestHandler] = JSONRequestHandler

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_request_bytes: int = MAX_REQUEST_BYTES,
        auth_token: str | None = None,
    ) -> None:
        if auth_token is not None and not auth_token:
            raise ValueError("auth_token must be a non-empty string (or None)")
        #: The server-owned metrics registry behind ``GET /metrics``.
        #: Subclasses record into it and extend :meth:`metrics_payload`.
        self.metrics = MetricsRegistry()
        self._http = _TrackingHTTPServer((host, port), self.handler_class)
        # The handler reaches the service object through the server.
        self._http.service = self  # type: ignore[attr-defined]
        self._http.max_request_bytes = max_request_bytes  # type: ignore[attr-defined]
        self._http.auth_token = auth_token  # type: ignore[attr-defined]
        self.auth_token = auth_token
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------

    @property
    def host(self) -> str:
        """The address the listening socket is *bound* to.

        May be a wildcard (``0.0.0.0``) -- a binding, not a place
        clients can connect to; :attr:`url` resolves a connectable
        address for display.
        """
        return self._http.server_address[0]

    @property
    def port(self) -> int:
        return self._http.server_address[1]

    @staticmethod
    def _connectable_host(bound_host: str) -> str:
        """A host clients can actually dial, given the bound address.

        A server bound to the IPv4 wildcard (``0.0.0.0``, or ``""``)
        listens on every interface, but the wildcard itself is not a
        destination -- printing ``http://0.0.0.0:port`` as the
        copy-paste address hands the user an unconnectable URL.  Resolve
        the primary outbound interface's address instead (a connected
        UDP socket to a TEST-NET address -- no packet is ever sent, the
        kernel just picks the route), falling back to loopback on
        isolated hosts.
        """
        if bound_host not in ("0.0.0.0", ""):
            return bound_host
        try:
            with socket.socket(socket.AF_INET, socket.SOCK_DGRAM) as probe:
                probe.connect(("192.0.2.1", 9))  # TEST-NET-1: never routed
                return probe.getsockname()[0]
        except OSError:
            return "127.0.0.1"

    @property
    def url(self) -> str:
        """Base URL clients should use (``http://host:port``).

        For wildcard bindings this substitutes a *connectable* host
        (the primary interface's address, or loopback) -- the bound
        address itself stays available as :attr:`host`.
        """
        return f"http://{self._connectable_host(self.host)}:{self.port}"

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "ServiceServer":
        """Serve requests on a background daemon thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._http.serve_forever,
                name=f"{type(self).__name__}@{self.port}",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent).

        Live keep-alive connections are severed, not just orphaned: a
        pooled client's next request on an old socket fails fast
        instead of being answered by a leftover handler thread.
        """
        if self._thread is not None:
            self._http.shutdown()
            self._http.close_all_connections()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._http.server_close()

    #: Short payload tag identifying the server kind on ``/metrics``;
    #: subclasses override ("cache", "redesign").
    metrics_server_kind = "service"

    def metrics_payload(self) -> dict[str, Any]:
        """The ``GET /metrics`` JSON document.

        ``{"server": ..., "metrics": <registry snapshot>, "golden":
        <derived golden metrics>}``.  Subclasses extend -- refresh
        gauges before delegating, or union extra golden signals over
        the derived ones.
        """
        snapshot = self.metrics.snapshot()
        return {
            "server": self.metrics_server_kind,
            "metrics": snapshot,
            "golden": golden_metrics(snapshot),
        }

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (CLI entry point)."""
        try:
            self._http.serve_forever()
        finally:
            self._http.server_close()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
