"""Redesign-as-a-service: the network layer of the reproduction.

The paper's tool is interactive -- users submit an ETL flow and explore
quality-ranked redesign alternatives -- and its heavy processing runs on
elastic cloud infrastructure.  This package is the reproduction's
counterpart: a stdlib-only service layer (``http.server`` + JSON) with
two coordinated halves.

:class:`CacheServer` / :class:`~repro.cache.http.HTTPProfileCache`
    Any profile-cache tier served over HTTP, so a *fleet* of planners on
    different machines shares one store
    (``ProcessingConfiguration.cache_tier="http"``); unreachable servers
    degrade to a local memory tier, never failing a plan, and recovery
    probes win a restarted server its traffic back.

:class:`RedesignServer` / :class:`RedesignClient`
    ``POST /plans`` a flow document, poll live progress (streamed by the
    PR 1 pipeline), fetch the ranked alternatives; a bounded pool of
    concurrent :class:`~repro.core.session.RedesignSession` workers all
    share one injected cache tier.

Start either from the command line with ``tools/serve.py``; see
``docs/service.md`` for the wire format and deployment sketch.  Both
servers bind ``127.0.0.1`` by default and speak HTTP/1.1 with pooled
keep-alive connections, transparent gzip for large bodies, and
optional shared-token authentication (``--auth-token`` /
``auth_token=``) -- terminate TLS in a fronting proxy before a token
crosses an untrusted network.
"""

from repro.service.cache_server import CacheServer
from repro.service.client import RedesignClient, RedesignServiceError
from repro.service.common import (
    MAX_REQUEST_BYTES,
    JSONRequestHandler,
    ServiceError,
    ServiceServer,
)
from repro.service.redesign_server import (
    RedesignJob,
    RedesignServer,
    configuration_from_request,
)
from repro.service.results import result_from_dict, result_to_dict

__all__ = [
    "MAX_REQUEST_BYTES",
    "CacheServer",
    "JSONRequestHandler",
    "RedesignClient",
    "RedesignJob",
    "RedesignServer",
    "RedesignServiceError",
    "ServiceError",
    "ServiceServer",
    "configuration_from_request",
    "result_from_dict",
    "result_to_dict",
]
