"""Client for the redesign service.

:class:`RedesignClient` is the programmatic counterpart of
:class:`~repro.service.RedesignServer`: submit a flow, poll its status,
fetch the ranked alternatives back as a real
:class:`~repro.core.planner.PlanningResult`.  Unlike the *cache* client
(:class:`~repro.cache.http.HTTPProfileCache`), which degrades silently
because a cache is an optimisation, the redesign client surfaces every
failure as an exception -- a lost planning job is not something to paper
over.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Mapping

from repro.core.planner import PlanningResult
from repro.etl.graph import ETLGraph
from repro.service.results import result_from_dict

#: Job states that will never change again.
TERMINAL_STATES = ("done", "failed")


class RedesignServiceError(RuntimeError):
    """An error response (or transport failure) from the redesign service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"[{status}] {message}")
        self.status = status
        self.message = message


class RedesignClient:
    """Talks JSON to one redesign server.

    Parameters
    ----------
    url:
        Base URL of the server, e.g. ``"http://127.0.0.1:8732"``.
    timeout:
        Per-request timeout in seconds.
    """

    def __init__(self, url: str, timeout: float = 30.0) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive (seconds)")
        self.url = url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------

    def _request(
        self,
        path: str,
        payload: Mapping[str, Any] | None = None,
        method: str | None = None,
    ) -> dict:
        if payload is None:
            request = urllib.request.Request(self.url + path, method=method or "GET")
        else:
            request = urllib.request.Request(
                self.url + path,
                data=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
                method=method or "POST",
            )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8")).get("error", str(exc))
            except Exception:
                message = str(exc)
            raise RedesignServiceError(exc.code, message) from None
        except (urllib.error.URLError, OSError, ValueError) as exc:
            raise RedesignServiceError(0, f"redesign service unreachable: {exc}") from None

    # ------------------------------------------------------------------

    def health(self) -> dict:
        """The server's liveness document."""
        return self._request("/health")

    def submit(
        self, flow: ETLGraph, configuration: Mapping[str, Any] | None = None
    ) -> str:
        """Submit one plan; returns the job id immediately."""
        payload: dict[str, Any] = {"flow": flow.to_dict()}
        if configuration is not None:
            payload["configuration"] = dict(configuration)
        return self._request("/plans", payload)["id"]

    def status(self, job_id: str) -> dict:
        """Live status/progress of one job."""
        return self._request(f"/plans/{job_id}")

    def wait(self, job_id: str, timeout: float = 120.0, poll: float = 0.05) -> dict:
        """Poll until the job reaches a terminal state; returns its status.

        Raises :class:`TimeoutError` if the deadline passes first.  A
        *failed* job is returned, not raised -- callers decide (fetching
        its result will raise).
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["status"] in TERMINAL_STATES:
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"plan {job_id} still {status['status']} after {timeout:.1f}s"
                )
            time.sleep(poll)

    def delete(self, job_id: str) -> dict:
        """Forget a finished job server-side, freeing its result document."""
        return self._request(f"/plans/{job_id}", method="DELETE")

    def result_raw(self, job_id: str) -> dict:
        """The ranked alternatives as the raw JSON document."""
        return self._request(f"/plans/{job_id}/result")["result"]

    def result(self, job_id: str) -> PlanningResult:
        """The ranked alternatives decoded back into a :class:`PlanningResult`."""
        return result_from_dict(self.result_raw(job_id))

    def plan(
        self,
        flow: ETLGraph,
        configuration: Mapping[str, Any] | None = None,
        timeout: float = 120.0,
    ) -> PlanningResult:
        """Submit, wait and decode in one call (the one-liner for scripts)."""
        job_id = self.submit(flow, configuration)
        status = self.wait(job_id, timeout=timeout)
        if status["status"] == "failed":
            raise RedesignServiceError(500, status.get("error", "plan failed"))
        return self.result(job_id)
