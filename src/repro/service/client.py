"""Client for the redesign service.

:class:`RedesignClient` is the programmatic counterpart of
:class:`~repro.service.RedesignServer`: submit a flow, poll its status,
fetch the ranked alternatives back as a real
:class:`~repro.core.planner.PlanningResult`.  Unlike the *cache* client
(:class:`~repro.cache.http.HTTPProfileCache`), which degrades silently
because a cache is an optimisation, the redesign client surfaces every
failure as an exception -- a lost planning job is not something to paper
over.

Transport: requests ride the shared wire client
(:class:`repro.wire.PooledJSONClient`) -- one persistent keep-alive
connection per calling thread, transparent compression of large bodies,
and optional bearer-token authentication, matching the cache tier.
"""

from __future__ import annotations

import http.client
import time
from typing import Any, Mapping

from repro.core.planner import PlanningResult
from repro.etl.graph import ETLGraph
from repro.service.results import result_from_dict
from repro.wire import PooledJSONClient, WireError

#: Job states that will never change again.
TERMINAL_STATES = ("done", "failed")


class RedesignServiceError(RuntimeError):
    """An error response (or transport failure) from the redesign service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"[{status}] {message}")
        self.status = status
        self.message = message


class RedesignClient:
    """Talks JSON to one redesign server.

    Parameters
    ----------
    url:
        Base URL of the server, e.g. ``"http://127.0.0.1:8732"``.
    timeout:
        Per-request timeout in seconds.
    compression:
        Compress large request bodies and accept compressed responses
        (on by default; flows serialise to highly redundant JSON).
    auth_token:
        Shared token for servers started with ``auth_token``; sent as
        ``Authorization: Bearer <token>``.  A wrong or missing token
        surfaces as a ``RedesignServiceError`` with status 401.
    poll_max:
        Cap for the exponential status-poll backoff used by
        :meth:`wait` (the floor is ``wait``'s ``poll`` argument).
    """

    def __init__(
        self,
        url: str,
        timeout: float = 30.0,
        *,
        compression: bool = True,
        auth_token: str | None = None,
        poll_max: float = 1.0,
    ) -> None:
        if timeout <= 0:
            raise ValueError("timeout must be positive (seconds)")
        if poll_max <= 0:
            raise ValueError("poll_max must be positive (seconds)")
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.poll_max = poll_max
        self._client = PooledJSONClient(
            self.url,
            timeout,
            compression=compression,
            auth_token=auth_token,
        )

    # ------------------------------------------------------------------

    def _request(
        self,
        path: str,
        payload: Mapping[str, Any] | None = None,
        method: str | None = None,
    ) -> dict:
        if method is None:
            method = "GET" if payload is None else "POST"
        try:
            return self._client.request_json(method, path, payload)
        except WireError as exc:
            raise RedesignServiceError(exc.status, exc.message) from None
        except (OSError, http.client.HTTPException, ValueError) as exc:
            raise RedesignServiceError(
                0, f"redesign service unreachable: {exc}"
            ) from None

    def close(self) -> None:
        """Close the pooled connections (the client stays usable)."""
        self._client.close()

    def __enter__(self) -> "RedesignClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------

    def health(self) -> dict:
        """The server's liveness document."""
        return self._request("/health")

    def submit(
        self, flow: ETLGraph, configuration: Mapping[str, Any] | None = None
    ) -> str:
        """Submit one plan; returns the job id immediately."""
        payload: dict[str, Any] = {"flow": flow.to_dict()}
        if configuration is not None:
            payload["configuration"] = dict(configuration)
        return self._request("/plans", payload)["id"]

    def status(self, job_id: str) -> dict:
        """Live status/progress of one job."""
        return self._request(f"/plans/{job_id}")

    def wait(self, job_id: str, timeout: float = 120.0, poll: float = 0.05) -> dict:
        """Poll until the job reaches a terminal state; returns its status.

        ``poll`` is the *floor* of the polling interval, not a fixed
        period: the delay doubles after every non-terminal status, up to
        the client's ``poll_max``, so a long-running plan is not
        hammered with status requests while a short one is still picked
        up within ``poll`` seconds.  The final sleep is clipped to the
        deadline.

        Raises :class:`TimeoutError` if the deadline passes first.  A
        *failed* job is returned, not raised -- callers decide (fetching
        its result will raise).
        """
        if poll <= 0:
            raise ValueError("poll must be positive (seconds)")
        deadline = time.monotonic() + timeout
        delay = poll
        while True:
            status = self.status(job_id)
            if status["status"] in TERMINAL_STATES:
                return status
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"plan {job_id} still {status['status']} after {timeout:.1f}s"
                )
            time.sleep(min(delay, min(self.poll_max, remaining)))
            delay = min(delay * 2, self.poll_max)

    def delete(self, job_id: str) -> dict:
        """Forget a finished job server-side, freeing its result document."""
        return self._request(f"/plans/{job_id}", method="DELETE")

    def result_raw(self, job_id: str) -> dict:
        """The ranked alternatives as the raw JSON document."""
        return self._request(f"/plans/{job_id}/result")["result"]

    def result(self, job_id: str) -> PlanningResult:
        """The ranked alternatives decoded back into a :class:`PlanningResult`."""
        return result_from_dict(self.result_raw(job_id))

    def plan(
        self,
        flow: ETLGraph,
        configuration: Mapping[str, Any] | None = None,
        timeout: float = 120.0,
    ) -> PlanningResult:
        """Submit, wait and decode in one call (the one-liner for scripts)."""
        job_id = self.submit(flow, configuration)
        status = self.wait(job_id, timeout=timeout)
        if status["status"] == "failed":
            raise RedesignServiceError(500, status.get("error", "plan failed"))
        return self.result(job_id)
