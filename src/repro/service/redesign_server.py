"""The redesign service: POIESIS planning as a network endpoint.

:class:`RedesignServer` turns the in-process redesign loop into a
service: clients ``POST /plans`` a flow document (the
:mod:`repro.io.jsonflow` structure) plus a processing configuration and
get a job id back immediately; a bounded worker pool runs one
:class:`~repro.core.session.RedesignSession` per job, **all sharing one
profile-cache tier** injected into their planners, so concurrent clients
redesigning similar flows warm each other up.  ``GET /plans/<id>``
reports live progress -- the evaluated-alternatives counter advances as
the PR 1 streaming pipeline yields, and the incremental
:class:`~repro.core.alternatives.GenerationStats` / cache statistics come
along -- and ``GET /plans/<id>/result`` returns the ranked alternatives
as JSON (:func:`~repro.service.results.result_to_dict`).

Endpoints (see ``docs/service.md``):

========  ====================  =========================================
method    path                  meaning
========  ====================  =========================================
POST      ``/plans``            submit ``{"flow": ..., "configuration": ...}`` -> ``{"id": ...}``
GET       ``/plans/<id>``       status + live progress / stats
GET       ``/plans/<id>/result``  ranked alternatives (409 until done)
GET       ``/plans``            all job summaries
GET       ``/stats``            shared cache tier statistics
GET       ``/health``           liveness + worker-pool shape
========  ====================  =========================================
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.cache import CacheBackend, ProfileCache
from repro.core.configuration import MeasureConstraint, ProcessingConfiguration
from repro.core.planner import Planner, PlanningResult
from repro.core.session import RedesignSession
from repro.etl.graph import ETLGraph
from repro.etl.validation import validate_flow
from repro.patterns.registry import PatternRegistry
from repro.quality.framework import QualityCharacteristic
from repro.service.common import (
    MAX_REQUEST_BYTES,
    JSONRequestHandler,
    ServiceError,
    ServiceServer,
)
from repro.service.results import result_to_dict

#: Configuration fields a request may NOT set: the service owns the
#: cache tier (one shared backend for the whole worker pool).
_RESERVED_FIELDS = frozenset(
    {"cache_tier", "cache_dir", "cache_max_bytes", "cache_url", "cache_timeout"}
)

#: Scalar/sequence fields accepted verbatim from the request document.
_SIMPLE_FIELDS = frozenset(
    {
        "policy",
        "pattern_budget",
        "max_points_per_pattern",
        "max_alternatives",
        "simulation_runs",
        "seed",
        "parallel_workers",
        "screening_beam",
        "eval_batch_size",
        "cache_profiles",
        "copy_mode",
        "prefix_cache",
        "backend",
    }
)


def configuration_from_request(data: Mapping[str, Any] | None) -> ProcessingConfiguration:
    """Build a :class:`ProcessingConfiguration` from a request document.

    Accepts the scalar knobs verbatim, ``pattern_names`` as an array,
    ``goal_priorities`` as a ``{characteristic: weight}`` object,
    ``skyline_characteristics`` as an array of characteristic names and
    ``constraints`` as an array of ``{target, min_value, max_value}``
    objects.  Unknown or reserved (cache-tier) fields are rejected with
    a 400 -- the service owns the cache configuration.
    """
    if data is None:
        data = {}
    if not isinstance(data, Mapping):
        raise ServiceError(400, '"configuration" must be a JSON object')
    kwargs: dict[str, Any] = {}
    for name, value in data.items():
        if name in _RESERVED_FIELDS:
            raise ServiceError(
                400,
                f"configuration field {name!r} is owned by the service "
                "(one shared cache tier per server); remove it from the request",
            )
        if name in _SIMPLE_FIELDS:
            kwargs[name] = value
        elif name == "pattern_names":
            kwargs[name] = tuple(value)
        elif name == "goal_priorities":
            try:
                kwargs[name] = {
                    QualityCharacteristic(characteristic): float(weight)
                    for characteristic, weight in value.items()
                }
            except (AttributeError, TypeError, ValueError) as exc:
                raise ServiceError(400, f"malformed goal_priorities: {exc}") from None
        elif name == "skyline_characteristics":
            try:
                kwargs[name] = tuple(QualityCharacteristic(entry) for entry in value)
            except (TypeError, ValueError) as exc:
                raise ServiceError(400, f"malformed skyline_characteristics: {exc}") from None
        elif name == "constraints":
            try:
                kwargs[name] = tuple(
                    MeasureConstraint(
                        target=entry["target"],
                        min_value=entry.get("min_value"),
                        max_value=entry.get("max_value"),
                    )
                    for entry in value
                )
            except (KeyError, TypeError) as exc:
                raise ServiceError(400, f"malformed constraints: {exc}") from None
        else:
            raise ServiceError(400, f"unknown configuration field: {name!r}")
    try:
        return ProcessingConfiguration(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ServiceError(400, f"invalid configuration: {exc}") from None


@dataclass
class RedesignJob:
    """One submitted planning job and its lifecycle state."""

    job_id: str
    status: str = "queued"  # queued -> running -> done | failed
    evaluated: int = 0
    error: str | None = None
    planner: Planner | None = None
    session: RedesignSession | None = None
    result: PlanningResult | None = None
    result_doc: dict | None = None
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def status_payload(self) -> dict[str, Any]:
        """The ``GET /plans/<id>`` document (safe to read while running)."""
        payload: dict[str, Any] = {
            "id": self.job_id,
            "status": self.status,
            "evaluated": self.evaluated,
        }
        if self.error is not None:
            payload["error"] = self.error
        planner = self.planner
        if planner is not None:
            stats = getattr(planner.generator, "last_stats", None)
            if stats is not None:
                payload["generation"] = stats.as_dict()
        session = self.session
        if session is not None:
            payload["cache"] = session.cache_stats()
        if self.result is not None:
            payload["alternatives"] = len(self.result.alternatives)
            payload["skyline_size"] = len(self.result.skyline_indices)
        return payload


class _RedesignHandler(JSONRequestHandler):
    def route(self, method: str, path: str, body: Any) -> dict:
        service: RedesignServer = self.server.service  # type: ignore[attr-defined]
        if method == "POST" and path == "/plans":
            return service.submit(body)
        if method == "GET":
            if path == "/health":
                return {
                    "status": "ok",
                    "workers": service.workers,
                    "jobs": len(service.jobs),
                }
            if path == "/stats":
                return {"cache": service.cache.tier_stats()}
            if path == "/plans":
                return {"plans": [job.status_payload() for job in service.jobs_snapshot()]}
            if path.startswith("/plans/"):
                remainder = path[len("/plans/"):]
                if remainder.endswith("/result"):
                    return service.result(remainder[: -len("/result")])
                return service.status(remainder)
        raise ServiceError(404, f"unknown endpoint: {method} {path}")


class RedesignServer(ServiceServer):
    """Redesign-as-a-service on a bounded worker pool with one shared cache.

    Parameters
    ----------
    cache:
        The profile-cache tier every worker session shares; defaults to
        an in-process :class:`~repro.cache.ProfileCache`.  Hand it a
        disk or tiered backend to make the service survive restarts
        warm.
    workers:
        Size of the planning pool: at most this many submitted plans run
        concurrently, the rest queue in submission order.
    palette:
        Optional pattern palette forwarded to every planner.
    host / port / max_request_bytes:
        As in :class:`~repro.service.common.ServiceServer`.
    """

    handler_class = _RedesignHandler

    def __init__(
        self,
        cache: CacheBackend | None = None,
        workers: int = 2,
        palette: PatternRegistry | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        max_request_bytes: int = MAX_REQUEST_BYTES,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        super().__init__(host=host, port=port, max_request_bytes=max_request_bytes)
        self.cache: CacheBackend = cache if cache is not None else ProfileCache()
        self.workers = workers
        self.palette = palette
        self.jobs: dict[str, RedesignJob] = {}
        self._jobs_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="redesign-worker"
        )

    # ------------------------------------------------------------------
    # Job API (also usable in-process, without HTTP)
    # ------------------------------------------------------------------

    def submit(self, body: Any) -> dict:
        """Validate one ``POST /plans`` document and enqueue the job."""
        if not isinstance(body, dict):
            raise ServiceError(400, "request body must be a JSON object")
        flow_doc = body.get("flow")
        if not isinstance(flow_doc, dict):
            raise ServiceError(400, 'the request must carry a "flow" document object')
        try:
            flow = ETLGraph.from_dict(flow_doc)
            validate_flow(flow, raise_on_error=True)
        except ServiceError:
            raise
        except Exception as exc:
            raise ServiceError(400, f"malformed flow document: {exc}") from None
        configuration = configuration_from_request(body.get("configuration"))
        with self._jobs_lock:
            job = RedesignJob(job_id=f"plan-{next(self._ids)}")
            self.jobs[job.job_id] = job
        self._pool.submit(self._run, job, flow, configuration)
        return {"id": job.job_id, "status": job.status}

    def _run(self, job: RedesignJob, flow: ETLGraph, configuration: ProcessingConfiguration) -> None:
        job.status = "running"
        try:
            planner = Planner(
                palette=self.palette,
                configuration=configuration,
                profile_cache=self.cache,
            )
            session = RedesignSession(flow, planner=planner)
            job.planner = planner
            job.session = session

            def on_evaluated(_alternative) -> None:
                with job._lock:
                    job.evaluated += 1

            iteration = session.iterate(on_evaluated=on_evaluated)
            job.result = iteration.result
            job.result_doc = result_to_dict(iteration.result)
            job.status = "done"
        except Exception as exc:
            job.error = f"{type(exc).__name__}: {exc}"
            job.status = "failed"

    def _job(self, job_id: str) -> RedesignJob:
        with self._jobs_lock:
            job = self.jobs.get(job_id)
        if job is None:
            raise ServiceError(404, f"unknown plan id: {job_id!r}")
        return job

    def jobs_snapshot(self) -> list[RedesignJob]:
        with self._jobs_lock:
            return list(self.jobs.values())

    def status(self, job_id: str) -> dict:
        """The ``GET /plans/<id>`` payload."""
        return self._job(job_id).status_payload()

    def result(self, job_id: str) -> dict:
        """The ``GET /plans/<id>/result`` payload (409 until the job is done)."""
        job = self._job(job_id)
        if job.status == "failed":
            raise ServiceError(409, f"plan {job_id} failed: {job.error}")
        if job.status != "done" or job.result_doc is None:
            raise ServiceError(409, f"plan {job_id} is still {job.status}")
        return {"id": job.job_id, "result": job.result_doc}

    # ------------------------------------------------------------------

    def stop(self) -> None:
        """Stop accepting requests and wait for running jobs to finish."""
        super().stop()
        self._pool.shutdown(wait=True)
        if self.cache is not None:
            self.cache.flush()
