"""The redesign service: POIESIS planning as a network endpoint.

:class:`RedesignServer` turns the in-process redesign loop into a
service: clients ``POST /plans`` a flow document (the
:mod:`repro.io.jsonflow` structure) plus a processing configuration and
get a job id back immediately; a bounded worker pool runs one
:class:`~repro.core.session.RedesignSession` per job, **all sharing one
profile-cache tier** injected into their planners, so concurrent clients
redesigning similar flows warm each other up.  ``GET /plans/<id>``
reports live progress -- the evaluated-alternatives counter advances as
the PR 1 streaming pipeline yields, and the incremental
:class:`~repro.core.alternatives.GenerationStats` / cache statistics come
along -- and ``GET /plans/<id>/result`` returns the ranked alternatives
as JSON (:func:`~repro.service.results.result_to_dict`).

Endpoints (see ``docs/service.md``):

========  ====================  =========================================
method    path                  meaning
========  ====================  =========================================
POST      ``/plans``            submit ``{"flow": ..., "configuration": ...}`` -> ``{"id": ...}``
GET       ``/plans/<id>``       status + live progress / stats
GET       ``/plans/<id>/result``  ranked alternatives (409 until done)
DELETE    ``/plans/<id>``       forget a finished job (409 while running)
GET       ``/plans``            all job summaries
GET       ``/stats``            shared cache tier statistics
GET       ``/health``           liveness + worker-pool shape
========  ====================  =========================================

Finished jobs are retained in compacted form (status counters plus the
result document; the planning graph is dropped at completion) and only
up to ``max_retained_jobs`` of them -- older ones are evicted as new
plans arrive, so memory does not grow with the submission history.
"""

from __future__ import annotations

import itertools
import logging
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # repro.fleet imports this module; annotation only
    from repro.fleet.queue import JobQueue

from repro.cache import CacheBackend, ProfileCache, cache_stats_dict
from repro.core.configuration import MeasureConstraint, ProcessingConfiguration
from repro.core.planner import Planner, PlanningResult
from repro.core.session import RedesignSession
from repro.etl.graph import ETLGraph
from repro.etl.validation import validate_flow
from repro.patterns.registry import PatternRegistry
from repro.quality.framework import QualityCharacteristic
from repro.service.common import (
    MAX_REQUEST_BYTES,
    JSONRequestHandler,
    ServiceError,
    ServiceServer,
)
from repro.service.results import result_to_dict

logger = logging.getLogger("repro.service.redesign")

#: Configuration fields a request may NOT set: the service owns the
#: cache tier (one shared backend for the whole worker pool) and the
#: metrics registry (servers inject their own -- a registry is not a
#: JSON value anyway).
_RESERVED_FIELDS = frozenset(
    {
        "cache_tier",
        "cache_dir",
        "cache_max_bytes",
        "cache_url",
        "cache_timeout",
        "cache_compression",
        "cache_auth_token",
        "cache_recovery_interval",
        "cache_max_pending",
        "cache_urls",
        "fleet_ring_replicas",
        "metrics_registry",
    }
)

#: Scalar/sequence fields accepted verbatim from the request document.
_SIMPLE_FIELDS = frozenset(
    {
        "policy",
        "pattern_budget",
        "max_points_per_pattern",
        "max_alternatives",
        "simulation_runs",
        "seed",
        "parallel_workers",
        "screening_beam",
        "eval_batch_size",
        "cache_profiles",
        "copy_mode",
        "prefix_cache",
        "backend",
        "metrics_enabled",
    }
)


def configuration_from_request(data: Mapping[str, Any] | None) -> ProcessingConfiguration:
    """Build a :class:`ProcessingConfiguration` from a request document.

    Accepts the scalar knobs verbatim, ``pattern_names`` as an array,
    ``goal_priorities`` as a ``{characteristic: weight}`` object,
    ``skyline_characteristics`` as an array of characteristic names and
    ``constraints`` as an array of ``{target, min_value, max_value}``
    objects.  Unknown or reserved (cache-tier) fields are rejected with
    a 400 -- the service owns the cache configuration.
    """
    if data is None:
        data = {}
    if not isinstance(data, Mapping):
        raise ServiceError(400, '"configuration" must be a JSON object')
    kwargs: dict[str, Any] = {}
    for name, value in data.items():
        if name in _RESERVED_FIELDS:
            raise ServiceError(
                400,
                f"configuration field {name!r} is owned by the service "
                "(one shared cache tier per server); remove it from the request",
            )
        if name in _SIMPLE_FIELDS:
            kwargs[name] = value
        elif name == "pattern_names":
            kwargs[name] = tuple(value)
        elif name == "goal_priorities":
            try:
                kwargs[name] = {
                    QualityCharacteristic(characteristic): float(weight)
                    for characteristic, weight in value.items()
                }
            except (AttributeError, TypeError, ValueError) as exc:
                raise ServiceError(400, f"malformed goal_priorities: {exc}") from None
        elif name == "skyline_characteristics":
            try:
                kwargs[name] = tuple(QualityCharacteristic(entry) for entry in value)
            except (TypeError, ValueError) as exc:
                raise ServiceError(400, f"malformed skyline_characteristics: {exc}") from None
        elif name == "constraints":
            try:
                kwargs[name] = tuple(
                    MeasureConstraint(
                        target=entry["target"],
                        min_value=entry.get("min_value"),
                        max_value=entry.get("max_value"),
                    )
                    for entry in value
                )
            except (KeyError, TypeError) as exc:
                raise ServiceError(400, f"malformed constraints: {exc}") from None
        else:
            raise ServiceError(400, f"unknown configuration field: {name!r}")
    try:
        return ProcessingConfiguration(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ServiceError(400, f"invalid configuration: {exc}") from None


@dataclass
class RedesignJob:
    """One submitted planning job and its lifecycle state.

    While a job runs, progress is read live off its planner/session;
    once it reaches a terminal state those references are dropped (the
    planning graph of a finished job is pure memory overhead on a
    long-running server) and the status payload is served from the
    compact fields captured at completion.
    """

    job_id: str
    status: str = "queued"  # queued -> running -> done | failed
    evaluated: int = 0
    error: str | None = None
    planner: Planner | None = None
    session: RedesignSession | None = None
    result: PlanningResult | None = None
    result_doc: dict | None = None
    generation: dict | None = None
    cache: dict | None = None
    alternatives: int | None = None
    skyline_size: int | None = None
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def finish(self) -> None:
        """Capture the terminal status fields and release the planning state.

        Must never raise: it runs in the worker's exception handler too,
        and a failure here (e.g. an injected cache backend whose stats
        calls are as broken as whatever failed the plan) would strand
        the job in ``running`` forever.  Stats are best-effort.
        """
        planner, session, result = self.planner, self.session, self.result
        try:
            if planner is not None and self.generation is None:
                stats = getattr(planner.generator, "last_stats", None)
                if stats is not None:
                    self.generation = stats.as_dict()
            if session is not None and self.cache is None:
                self.cache = session.cache_stats()
        except Exception:
            pass
        if result is not None:
            self.alternatives = len(result.alternatives)
            self.skyline_size = len(result.skyline_indices)
        self.planner = None
        self.session = None
        self.result = None

    def status_payload(self) -> dict[str, Any]:
        """The ``GET /plans/<id>`` document (safe to read while running)."""
        payload: dict[str, Any] = {
            "id": self.job_id,
            "status": self.status,
            "evaluated": self.evaluated,
        }
        if self.error is not None:
            payload["error"] = self.error
        generation = self.generation
        planner = self.planner
        if generation is None and planner is not None:
            stats = getattr(planner.generator, "last_stats", None)
            if stats is not None:
                generation = stats.as_dict()
        if generation is not None:
            payload["generation"] = generation
        cache = self.cache
        session = self.session
        if cache is None and session is not None:
            try:
                cache = session.cache_stats()
            except Exception:
                # Live stats are best-effort: a cache tier broken enough
                # to raise here must not turn a status poll into a 500.
                cache = None
        if cache is not None:
            payload["cache"] = cache
        if self.alternatives is not None:
            payload["alternatives"] = self.alternatives
            payload["skyline_size"] = self.skyline_size
        return payload


class _RedesignHandler(JSONRequestHandler):
    def route(self, method: str, path: str, body: Any) -> dict:
        service: RedesignServer = self.server.service  # type: ignore[attr-defined]
        if method == "POST" and path == "/plans":
            return service.submit(body)
        if method == "GET":
            if path == "/health":
                return service.health_payload()
            if path == "/stats":
                return {"cache": cache_stats_dict(service.cache)}
            if path == "/plans":
                return {"plans": service.plans_payload()}
            if path.startswith("/plans/"):
                remainder = path[len("/plans/"):]
                if remainder.endswith("/result"):
                    return service.result(remainder[: -len("/result")])
                return service.status(remainder)
        if method == "DELETE" and path.startswith("/plans/"):
            return service.delete(path[len("/plans/"):])
        raise ServiceError(404, f"unknown endpoint: {method} {path}")


class RedesignServer(ServiceServer):
    """Redesign-as-a-service on a bounded worker pool with one shared cache.

    Parameters
    ----------
    cache:
        The profile-cache tier every worker session shares; defaults to
        an in-process :class:`~repro.cache.ProfileCache`.  Hand it a
        disk or tiered backend to make the service survive restarts
        warm.
    workers:
        Size of the planning pool: at most this many submitted plans run
        concurrently, the rest queue in submission order.
    palette:
        Optional pattern palette forwarded to every planner.
    max_retained_jobs:
        Bound on the job table: when a new submission would exceed it,
        the oldest *finished* (done/failed) jobs -- and their result
        documents -- are forgotten, so a long-running server's memory
        does not grow with every plan ever submitted.  Queued and
        running jobs are never evicted.  ``None`` retains everything;
        clients can also free a finished job eagerly with
        ``DELETE /plans/<id>``.
    queue:
        A :class:`repro.fleet.JobQueue` turning this server into the
        *front-end of a worker fleet*: submissions are validated here
        exactly as in-process (malformed flows and reserved
        configuration fields still fail fast with a 400) but then
        enqueued durably instead of run on the local pool, to be
        drained by :class:`repro.fleet.FleetWorker` processes
        (``tools/worker.py``).  Status/result/delete are served from
        the queue; the HTTP API is unchanged, so
        :class:`~repro.service.client.RedesignClient` works against
        either mode.  The caller owns the queue's lifetime (it is not
        closed by :meth:`stop`).  See ``docs/fleet.md``.
    host / port / max_request_bytes / auth_token:
        As in :class:`~repro.service.common.ServiceServer` (with
        ``auth_token`` set, clients authenticate with
        ``RedesignClient(..., auth_token=...)``).
    """

    handler_class = _RedesignHandler

    def __init__(
        self,
        cache: CacheBackend | None = None,
        workers: int = 2,
        palette: PatternRegistry | None = None,
        max_retained_jobs: int | None = 256,
        host: str = "127.0.0.1",
        port: int = 0,
        max_request_bytes: int = MAX_REQUEST_BYTES,
        auth_token: str | None = None,
        queue: "JobQueue | None" = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if max_retained_jobs is not None and max_retained_jobs < 1:
            raise ValueError("max_retained_jobs must be at least 1 (or None)")
        super().__init__(
            host=host,
            port=port,
            max_request_bytes=max_request_bytes,
            auth_token=auth_token,
        )
        self.cache: CacheBackend = cache if cache is not None else ProfileCache()
        # Server-side observability: the shared tier (and, in fleet
        # mode, the queue) report into the server's registry unless the
        # caller wired their own.
        if getattr(self.cache, "metrics_registry", False) is None:
            self.cache.metrics_registry = self.metrics  # type: ignore[attr-defined]
        if queue is not None and getattr(queue, "metrics_registry", False) is None:
            queue.metrics_registry = self.metrics
        self.workers = workers
        self.palette = palette
        self.max_retained_jobs = max_retained_jobs
        self.queue = queue
        self.jobs: dict[str, RedesignJob] = {}
        self._jobs_lock = threading.Lock()
        self._ids = itertools.count(1)
        # In queue mode the fleet plans; no local pool is started.
        self._pool = (
            None
            if queue is not None
            else ThreadPoolExecutor(max_workers=workers, thread_name_prefix="redesign-worker")
        )

    # ------------------------------------------------------------------
    # Job API (also usable in-process, without HTTP)
    # ------------------------------------------------------------------

    def submit(self, body: Any) -> dict:
        """Validate one ``POST /plans`` document and enqueue the job."""
        if not isinstance(body, dict):
            raise ServiceError(400, "request body must be a JSON object")
        flow_doc = body.get("flow")
        if not isinstance(flow_doc, dict):
            raise ServiceError(400, 'the request must carry a "flow" document object')
        try:
            flow = ETLGraph.from_dict(flow_doc)
            validate_flow(flow, raise_on_error=True)
        except ServiceError:
            raise
        except Exception as exc:
            raise ServiceError(400, f"malformed flow document: {exc}") from None
        configuration = configuration_from_request(body.get("configuration"))
        if self.queue is not None:
            # Fleet mode: validated above exactly as in-process (a bad
            # request must fail the submitter, not a worker later), then
            # persisted as the raw documents the workers re-decode.
            job_id = self.queue.enqueue(
                {"flow": flow_doc, "configuration": body.get("configuration") or {}}
            )
            return {"id": job_id, "status": "queued"}
        with self._jobs_lock:
            job = RedesignJob(job_id=f"plan-{next(self._ids)}")
            self.jobs[job.job_id] = job
            self._evict_finished_jobs()
        self._pool.submit(self._run, job, flow, configuration)
        return {"id": job.job_id, "status": job.status}

    def _evict_finished_jobs(self) -> None:
        """Forget the oldest terminal jobs beyond the retention cap.

        Caller holds ``_jobs_lock``.  ``jobs`` is insertion-ordered, so
        the first terminal entries are the oldest submissions.
        """
        if self.max_retained_jobs is None:
            return
        excess = len(self.jobs) - self.max_retained_jobs
        if excess <= 0:
            return
        stale = [
            job_id
            for job_id, job in self.jobs.items()
            if job.status in ("done", "failed")
        ]
        for job_id in stale[:excess]:
            del self.jobs[job_id]

    def _run(self, job: RedesignJob, flow: ETLGraph, configuration: ProcessingConfiguration) -> None:
        job.status = "running"
        if configuration.metrics_enabled and configuration.metrics_registry is None:
            # Requests may turn metrics on but cannot carry a registry
            # (it is not a JSON value): plan-internal instruments land
            # in the server's registry, behind GET /metrics.
            configuration = replace(configuration, metrics_registry=self.metrics)
        try:
            with self.metrics.timer("service.plan_seconds"):
                planner = Planner(
                    palette=self.palette,
                    configuration=configuration,
                    profile_cache=self.cache,
                )
                session = RedesignSession(flow, planner=planner)
                job.planner = planner
                job.session = session

                def on_evaluated(_alternative) -> None:
                    with job._lock:
                        job.evaluated += 1

                iteration = session.iterate(on_evaluated=on_evaluated)
            job.result = iteration.result
            job.result_doc = result_to_dict(iteration.result)
            job.finish()
            job.status = "done"
            self.metrics.counter("service.plans_done").inc()
        except Exception as exc:
            job.error = f"{type(exc).__name__}: {exc}"
            job.finish()
            job.status = "failed"
            self.metrics.counter("service.plans_failed").inc()
            logger.warning("plan %s failed: %s", job.job_id, job.error)

    def _job(self, job_id: str) -> RedesignJob:
        with self._jobs_lock:
            job = self.jobs.get(job_id)
        if job is None:
            raise ServiceError(404, f"unknown plan id: {job_id!r}")
        return job

    def jobs_snapshot(self) -> list[RedesignJob]:
        with self._jobs_lock:
            return list(self.jobs.values())

    def plans_payload(self) -> list[dict]:
        """The ``GET /plans`` listing, from whichever job store is live."""
        if self.queue is not None:
            return [self._queue_payload(entry) for entry in self.queue.jobs()]
        return [job.status_payload() for job in self.jobs_snapshot()]

    def health_payload(self) -> dict:
        """The ``GET /health`` document (adds fleet shape in queue mode)."""
        payload: dict[str, Any] = {"status": "ok", "workers": self.workers}
        if self.queue is not None:
            payload["mode"] = "fleet"
            payload["queue"] = self.queue.stats()
            payload["fleet_workers"] = self.queue.workers()
        else:
            payload["jobs"] = len(self.jobs)
        return payload

    metrics_server_kind = "redesign"

    def metrics_payload(self) -> dict:
        """The base payload plus fleet gauges and queue-derived latency.

        In fleet mode the front-end never plans (and acks happen in
        worker processes), so queue depth, worker liveness and the
        end-to-end plan-latency percentiles are refreshed from the
        durable queue at scrape time; in-process mode reads plan
        latency straight from the ``service.plan_seconds`` histogram.
        """
        queue_stats = workers_alive = latency = None
        if self.queue is not None:
            queue_stats = self.queue.stats()
            workers_alive = len(
                self.queue.workers(active_within=self.queue.lease_timeout * 2)
            )
            latency = self.queue.job_latency()
            # Refresh the gauges before the snapshot below captures them.
            self.metrics.gauge("queue.depth").set(queue_stats["depth"])
            self.metrics.gauge("queue.expired_leases").set(queue_stats["expired"])
            self.metrics.gauge("fleet.workers_alive").set(workers_alive)
        payload = super().metrics_payload()
        if self.queue is not None:
            payload["queue"] = queue_stats
            golden = payload["golden"]
            golden["queue_depth"] = float(queue_stats["depth"])
            golden["workers_alive"] = float(workers_alive)
            if latency and latency.get("count"):
                golden["plan_count"] = latency["count"]
                golden["plan_p50_seconds"] = latency["p50"]
                golden["plan_p99_seconds"] = latency["p99"]
        else:
            payload["jobs"] = len(self.jobs)
        return payload

    @staticmethod
    def _queue_payload(entry: dict) -> dict:
        """A queue row as a status document API-compatible with in-process.

        The queue's ``leased`` state is this API's ``running``; the
        lease-protocol fields (attempts, worker, stalled) ride along for
        observability.
        """
        payload = dict(entry)
        if payload.get("status") == "leased":
            payload["status"] = "running"
        return payload

    def status(self, job_id: str) -> dict:
        """The ``GET /plans/<id>`` payload."""
        if self.queue is not None:
            entry = self.queue.status(job_id)
            if entry is None:
                raise ServiceError(404, f"unknown plan id: {job_id!r}")
            return self._queue_payload(entry)
        return self._job(job_id).status_payload()

    def result(self, job_id: str) -> dict:
        """The ``GET /plans/<id>/result`` payload (409 until the job is done)."""
        if self.queue is not None:
            entry = self.queue.status(job_id)
            if entry is None:
                raise ServiceError(404, f"unknown plan id: {job_id!r}")
            if entry["status"] == "failed":
                raise ServiceError(409, f"plan {job_id} failed: {entry.get('error')}")
            result_doc = self.queue.result(job_id) if entry["status"] == "done" else None
            if result_doc is None:
                status = self._queue_payload(entry)["status"]
                raise ServiceError(409, f"plan {job_id} is still {status}")
            return {"id": job_id, "result": result_doc}
        job = self._job(job_id)
        if job.status == "failed":
            raise ServiceError(409, f"plan {job_id} failed: {job.error}")
        if job.status != "done" or job.result_doc is None:
            raise ServiceError(409, f"plan {job_id} is still {job.status}")
        return {"id": job.job_id, "result": job.result_doc}

    def delete(self, job_id: str) -> dict:
        """Forget a finished job (``DELETE /plans/<id>``; 409 while it runs)."""
        if self.queue is not None:
            entry = self.queue.status(job_id)
            if entry is None:
                raise ServiceError(404, f"unknown plan id: {job_id!r}")
            if not self.queue.delete(job_id):
                status = self._queue_payload(entry)["status"]
                raise ServiceError(409, f"plan {job_id} is still {status}")
            return {"id": job_id, "deleted": True}
        with self._jobs_lock:
            job = self.jobs.get(job_id)
            if job is None:
                raise ServiceError(404, f"unknown plan id: {job_id!r}")
            if job.status not in ("done", "failed"):
                raise ServiceError(409, f"plan {job_id} is still {job.status}")
            del self.jobs[job_id]
        return {"id": job_id, "deleted": True}

    # ------------------------------------------------------------------

    def stop(self) -> None:
        """Stop accepting requests and wait for running jobs to finish.

        In queue mode there is no local pool, and the queue itself is
        caller-owned -- workers drain it independently of this front-end.
        """
        super().stop()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        if self.cache is not None:
            self.cache.flush()
