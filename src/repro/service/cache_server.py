"""The profile-cache service: any :class:`CacheBackend` over HTTP.

:class:`CacheServer` fronts an existing cache tier -- typically a
:class:`~repro.cache.DiskProfileCache` rooted at a shared ``cache_dir``
-- so that a fleet of planners on *different machines* reads and writes
one profile store through
:class:`~repro.cache.http.HTTPProfileCache` clients
(``ProcessingConfiguration.cache_tier="http"``).

Wire format (JSON throughout; see ``docs/service.md``):

* **Lookups travel as digests.**  A cache key is a multi-kilobyte flow
  fingerprint; clients hash it locally with
  :func:`repro.cache.key_digest` -- the exact digest the disk tier uses
  for its file names -- and send only the 64-hex-char digest, so the
  hot lookup path moves a few bytes per profile, not kilobytes, and the
  server never re-hashes giant tuples.
* **Writes travel as full keys** (restored server-side with
  :func:`repro.io.jsonflow.cache_key_from_jsonable`), because on-disk
  entries are self-verifying: the stored payload records the key it was
  written under.
* **Profiles travel as** :func:`repro.io.jsonflow.profile_to_dict`
  documents; the server keeps the documents of recently served entries
  in a digest-keyed *hot map*, so repeat lookups skip the backend, the
  unpickling and the re-encoding entirely.

With ``eviction_interval`` set (and a size-capped disk backend), the
server moves the LRU sweep off the write path onto the backend's
background sweeper thread
(:meth:`~repro.cache.DiskProfileCache.start_background_eviction`), so
large stores don't pay a directory scan per publish.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from repro.cache import (
    CacheBackend,
    CacheStats,
    DiskProfileCache,
    TieredProfileCache,
    key_digest,
)
from repro.cache.disk import _DIGEST_RE, _ENTRY_SUFFIX
from repro.io.jsonflow import cache_key_from_jsonable, profile_from_dict, profile_to_dict
from repro.service.common import (
    MAX_REQUEST_BYTES,
    JSONRequestHandler,
    ServiceError,
    ServiceServer,
)


def _decode_key(data: Any) -> tuple:
    """Decode and sanity-check one wire key."""
    key = cache_key_from_jsonable(data)
    try:
        hash(key)
    except TypeError:
        raise ServiceError(400, "cache keys must be JSON arrays of scalars") from None
    if not isinstance(key, tuple):
        raise ServiceError(400, "cache keys must be JSON arrays (tuples), not scalars")
    return key


def _decode_digest(data: Any) -> str:
    """Accept exactly what :func:`repro.cache.key_digest` produces.

    Anything else -- in particular strings containing ``/`` or ``..`` --
    must never reach the digest-addressed file paths of the disk tier
    (the shape regex is the disk tier's own, one source of truth).
    """
    if not isinstance(data, str) or _DIGEST_RE.fullmatch(data) is None:
        raise ServiceError(400, "digests must be 64-character lowercase hex strings")
    return data


class _CacheHandler(JSONRequestHandler):
    """Routes of the cache service (see ``docs/service.md`` for the table)."""

    def route(self, method: str, path: str, body: Any) -> dict:
        service: CacheServer = self.server.service  # type: ignore[attr-defined]
        if method == "GET" and path in ("/stats", "/health"):
            payload: dict[str, Any] = {
                "entries": len(service.backend),
                "stats": service.stats.as_dict(),
            }
            if path == "/health":
                payload["status"] = "ok"
            else:
                payload["tiers"] = service.backend.tier_stats()
            return payload
        if method != "POST":
            raise ServiceError(404, f"unknown endpoint: {method} {path}")
        if not isinstance(body, dict):
            raise ServiceError(400, "request body must be a JSON object")
        if path == "/get_many":
            digests = body.get("digests")
            if not isinstance(digests, list):
                raise ServiceError(400, '"digests" must be a JSON array')
            return {
                "profiles": service.get_documents([_decode_digest(d) for d in digests])
            }
        if path == "/get":
            docs = service.get_documents([_decode_digest(body.get("digest"))])
            if docs[0] is None:
                return {"hit": False}
            return {"hit": True, "profile": docs[0]}
        if path == "/put":
            entries = body.get("entries")
            if not isinstance(entries, list):
                raise ServiceError(400, '"entries" must be a JSON array')
            decoded = []
            for entry in entries:
                if not isinstance(entry, dict) or "key" not in entry or "profile" not in entry:
                    raise ServiceError(
                        400, 'every entry must be an object with "key" and "profile"'
                    )
                try:
                    profile = profile_from_dict(entry["profile"])
                except (KeyError, TypeError, ValueError, AttributeError) as exc:
                    raise ServiceError(400, f"malformed profile document: {exc}") from None
                decoded.append((_decode_key(entry["key"]), entry["profile"], profile))
            service.store_entries(decoded)
            return {"stored": len(decoded)}
        if path == "/contains":
            return {"contains": service.contains(_decode_digest(body.get("digest")))}
        if path == "/flush":
            service.backend.flush()
            return {"ok": True}
        if path == "/clear":
            service.clear()
            return {"ok": True}
        raise ServiceError(404, f"unknown endpoint: {method} {path}")


class CacheServer(ServiceServer):
    """Serve one :class:`~repro.cache.CacheBackend` to the network.

    Parameters
    ----------
    backend:
        The tier to front -- typically a
        :class:`~repro.cache.DiskProfileCache` (persistent, so the fleet
        survives server restarts warm), but any backend works (an
        in-memory ``ProfileCache`` makes a fast shared scratch cache).
    host, port:
        Bind address; ``port=0`` (default) picks an ephemeral port, read
        back from :attr:`url`.
    max_request_bytes:
        Reject request bodies above this size with ``413``.
    auth_token:
        Optional shared token: requests (``GET /health`` excepted) must
        carry ``Authorization: Bearer <token>`` or get a ``401``.
        Clients configure it as ``cache_auth_token``.
    max_hot_entries:
        LRU bound on the digest-keyed hot map of ready-to-send profile
        documents (default 8192 -- tens of MB at typical profile sizes,
        so a long-running server's memory stays bounded even when the
        disk store is huge).  Evicted documents are re-read from the
        backend on demand; ``None`` keeps every served document.
    eviction_interval:
        When set (seconds), and the backend has a persistent size-capped
        component, run its LRU sweep on a background thread at this
        interval instead of on every publish
        (:meth:`~repro.cache.DiskProfileCache.start_background_eviction`);
        stopped -- with a final sweep -- by :meth:`stop`.

    Attributes
    ----------
    stats:
        The server's own lookup accounting (one hit or miss per served
        digest, whichever layer -- hot map, backend or disk -- answered).
        This is what clients report as the ``"server"`` tier.
    """

    handler_class = _CacheHandler

    def __init__(
        self,
        backend: CacheBackend,
        host: str = "127.0.0.1",
        port: int = 0,
        max_request_bytes: int = MAX_REQUEST_BYTES,
        auth_token: str | None = None,
        max_hot_entries: int | None = 8192,
        eviction_interval: float | None = None,
    ) -> None:
        super().__init__(
            host=host,
            port=port,
            max_request_bytes=max_request_bytes,
            auth_token=auth_token,
        )
        self.backend = backend
        self.stats = CacheStats()
        # Server-side observability: the backend reports its batched
        # lookups (cache.<tier>.*) into the server's registry, alongside
        # the cache.hits/cache.misses the served digests count below.
        if getattr(backend, "metrics_registry", False) is None:
            backend.metrics_registry = self.metrics  # type: ignore[attr-defined]
        self.max_hot_entries = max_hot_entries
        #: digest -> ready-to-send profile document (JSON-able dict).
        self._hot: OrderedDict[str, dict] = OrderedDict()
        #: digest -> full key.  Only populated for backends *without*
        #: digest addressing (no disk component).  Kept in LRU order and
        #: trimmed to the backend's own entry count on every insert (plus
        #: pruned when a lookup through it misses), so it is bounded by
        #: the same thing that bounds the backend.  Disk-backed servers
        #: skip it -- entries are re-resolved by file-name digest instead.
        self._keys: OrderedDict[str, tuple] = OrderedDict()
        self._lock = threading.Lock()
        self._disk = self._disk_component(backend)
        self._sweeping: DiskProfileCache | None = None
        if eviction_interval is not None:
            if self._disk is None:
                raise ValueError(
                    "eviction_interval requires a disk-backed backend "
                    "(DiskProfileCache or TieredProfileCache)"
                )
            self._disk.start_background_eviction(eviction_interval)
            self._sweeping = self._disk

    @staticmethod
    def _disk_component(backend: CacheBackend) -> DiskProfileCache | None:
        if isinstance(backend, DiskProfileCache):
            return backend
        if isinstance(backend, TieredProfileCache):
            return backend.disk
        return None

    # ------------------------------------------------------------------
    # Lookup / store (shared by the HTTP routes and in-process callers)
    # ------------------------------------------------------------------

    def _hot_get(self, digest: str) -> dict | None:
        with self._lock:
            document = self._hot.get(digest)
            if document is not None:
                self._hot.move_to_end(digest)
            return document

    def _hot_put(self, digest: str, document: dict, key: tuple | None = None) -> None:
        with self._lock:
            self._hot[digest] = document
            self._hot.move_to_end(digest)
            if key is not None and self._disk is None:
                # Only keyed backends need the index (see its comment);
                # it survives hot-map eviction so backend entries whose
                # document was dropped remain reachable -- but it is
                # trimmed to the backend's entry count, so a bounded
                # backend can never leave the index growing with the
                # full history of distinct keys ever stored.
                self._keys[digest] = key
                self._keys.move_to_end(digest)
                backend_entries = len(self.backend)
                while len(self._keys) > backend_entries:
                    self._keys.popitem(last=False)
            if self.max_hot_entries is not None:
                while len(self._hot) > self.max_hot_entries:
                    self._hot.popitem(last=False)

    def get_documents(self, digests: list[str]) -> list[dict | None]:
        """Resolve digests to profile documents (hot map, then backend)."""
        disk = self._disk
        results: list[dict | None] = []
        hits = 0
        for digest in digests:
            document = self._hot_get(digest)
            if document is None:
                if disk is not None:
                    entry = disk.get_by_digest(digest)
                    if entry is not None:
                        stored_key, profile = entry
                        if isinstance(self.backend, TieredProfileCache):
                            self.backend.memory.put(stored_key, profile)
                        document = profile_to_dict(profile)
                        self._hot_put(digest, document)
                else:
                    # Backends without digest addressing (the in-memory
                    # scratch tier) are reached through the key index;
                    # touching it keeps its LRU order tracking the
                    # backend's.
                    with self._lock:
                        key = self._keys.get(digest)
                        if key is not None:
                            self._keys.move_to_end(digest)
                    profile = self.backend.get(key) if key is not None else None
                    if profile is not None:
                        document = profile_to_dict(profile)
                        self._hot_put(digest, document)
                    elif key is not None:
                        # The backend evicted the entry under its own
                        # bound: prune the now-dangling index entry so
                        # the index stays bounded by the backend's
                        # content.  Conditional on identity: a
                        # concurrent store_entries may have re-indexed
                        # the digest (with a freshly decoded tuple)
                        # after our backend miss.
                        with self._lock:
                            if self._keys.get(digest) is key:
                                del self._keys[digest]
            if document is not None:
                hits += 1
            results.append(document)
        with self._lock:
            self.stats.hits += hits
            self.stats.misses += len(digests) - hits
        if hits:
            self.metrics.counter("cache.hits").inc(hits)
        if len(digests) - hits:
            self.metrics.counter("cache.misses").inc(len(digests) - hits)
        return results

    def store_entries(self, entries: list[tuple[tuple, dict, object]]) -> None:
        """Store ``(key, document, profile)`` triples and publish them."""
        for key, document, profile in entries:
            self.backend.put(key, profile)  # type: ignore[arg-type]
            self._hot_put(key_digest(key), document, key=key)
        self.backend.flush()

    def contains(self, digest: str) -> bool:
        with self._lock:
            if digest in self._hot:
                return True
            key = self._keys.get(digest)
        if key is not None:
            if key in self.backend:
                return True
            # The backend dropped the entry (eviction/clear): prune the
            # index so it stays bounded by the backend's content.  Only
            # if it is still *our* entry -- a concurrent store_entries
            # may have re-indexed the digest since the backend miss.
            with self._lock:
                if self._keys.get(digest) is key:
                    del self._keys[digest]
            return False
        if self._disk is not None and _DIGEST_RE.fullmatch(digest) is not None:
            return (self._disk.cache_dir / f"{digest}{_ENTRY_SUFFIX}").exists()
        return False

    def clear(self) -> None:
        """Drop the hot map, the key index and every backend entry."""
        with self._lock:
            self._hot.clear()
            self._keys.clear()
            self.stats = CacheStats()
        self.backend.clear()

    # ------------------------------------------------------------------

    metrics_server_kind = "cache"

    def metrics_payload(self) -> dict[str, Any]:
        """The base payload plus the authoritative server-side hit rate."""
        payload = super().metrics_payload()
        with self._lock:
            hit_rate = self.stats.hit_rate
            lookups = self.stats.lookups
        if lookups:
            payload["golden"]["cache_hit_rate"] = hit_rate
        payload["entries"] = len(self.backend)
        return payload

    def stop(self) -> None:
        """Stop serving; also stops the background sweeper (final sweep)."""
        if self._sweeping is not None:
            self._sweeping.stop_background_eviction()
            self._sweeping = None
        super().stop()
