"""Text-based visualisation backends.

The paper's tool is a GUI with an interactive multidimensional
scatter-plot (Fig. 4), a relative-change bar graph with drill-down
(Fig. 5) and tabular views of the measures (Fig. 1) and the pattern
palette (Fig. 6).  This reproduction renders the same data as plain text
(ASCII plots and tables) and as CSV/JSON records that external plotting
tools can consume.
"""

from repro.viz.scatter import ScatterPoint, build_scatter_data, render_ascii_scatter, scatter_to_csv
from repro.viz.bars import build_bar_data, render_bar_chart, render_drilldown
from repro.viz.tables import measures_table, palette_table, render_table
from repro.viz.report import planning_report, session_report

__all__ = [
    "ScatterPoint",
    "build_scatter_data",
    "render_ascii_scatter",
    "scatter_to_csv",
    "build_bar_data",
    "render_bar_chart",
    "render_drilldown",
    "measures_table",
    "palette_table",
    "render_table",
    "planning_report",
    "session_report",
]
